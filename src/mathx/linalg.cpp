#include "mathx/linalg.hpp"

#include <cmath>
#include <cstdlib>

namespace csdac::mathx {
namespace {

inline double magnitude(double v) { return std::abs(v); }
inline double magnitude(const std::complex<double>& v) { return std::abs(v); }

}  // namespace

template <typename T>
void LuSolver<T>::factorize(const Matrix<T>& a) {
  if (a.rows() != a.cols()) {
    throw std::invalid_argument("LuSolver: matrix must be square");
  }
  n_ = a.rows();
  lu_ = a;
  perm_.resize(n_);
  for (std::size_t i = 0; i < n_; ++i) perm_[i] = i;

  for (std::size_t k = 0; k < n_; ++k) {
    // Partial pivoting: pick the largest magnitude in column k.
    std::size_t pivot = k;
    double best = magnitude(lu_(k, k));
    for (std::size_t r = k + 1; r < n_; ++r) {
      const double m = magnitude(lu_(r, k));
      if (m > best) {
        best = m;
        pivot = r;
      }
    }
    if (best == 0.0 || !std::isfinite(best)) {
      throw SingularMatrixError(k);
    }
    if (pivot != k) {
      for (std::size_t c = 0; c < n_; ++c) std::swap(lu_(k, c), lu_(pivot, c));
      std::swap(perm_[k], perm_[pivot]);
    }
    const T inv_pivot = T(1) / lu_(k, k);
    for (std::size_t r = k + 1; r < n_; ++r) {
      const T f = lu_(r, k) * inv_pivot;
      lu_(r, k) = f;
      if (f == T{}) continue;
      for (std::size_t c = k + 1; c < n_; ++c) {
        lu_(r, c) -= f * lu_(k, c);
      }
    }
  }
}

template <typename T>
std::vector<T> LuSolver<T>::solve(const std::vector<T>& b) const {
  if (b.size() != n_) {
    throw std::invalid_argument("LuSolver::solve: size mismatch");
  }
  std::vector<T> x(n_);
  // Apply permutation, then forward substitution (L has unit diagonal).
  for (std::size_t i = 0; i < n_; ++i) {
    T sum = b[perm_[i]];
    for (std::size_t j = 0; j < i; ++j) sum -= lu_(i, j) * x[j];
    x[i] = sum;
  }
  // Backward substitution with U.
  for (std::size_t ii = n_; ii-- > 0;) {
    T sum = x[ii];
    for (std::size_t j = ii + 1; j < n_; ++j) sum -= lu_(ii, j) * x[j];
    x[ii] = sum / lu_(ii, ii);
  }
  return x;
}

template class LuSolver<double>;
template class LuSolver<std::complex<double>>;

}  // namespace csdac::mathx
