// FFT and window functions for spectral analysis of DAC output waveforms.
// Radix-2 iterative Cooley–Tukey for power-of-two lengths, Bluestein's
// chirp-z algorithm for arbitrary lengths (needed for coherent captures of
// "50 periods" style records whose length is not a power of two).
#pragma once

#include <complex>
#include <cstddef>
#include <vector>

namespace csdac::mathx {

using Cplx = std::complex<double>;

/// In-place forward FFT; n must be a power of two.
void fft_pow2(std::vector<Cplx>& x, bool inverse = false);

/// Forward DFT of arbitrary length (Bluestein when n is not a power of two).
std::vector<Cplx> dft(const std::vector<Cplx>& x, bool inverse = false);

/// DFT of a real sequence; returns the full complex spectrum (length n).
std::vector<Cplx> dft_real(const std::vector<double>& x);

/// Single-sided magnitude spectrum in dB relative to full scale `fs_ref`
/// (i.e. 20*log10(2*|X[k]|/(n*fs_ref)) for 0<k<n/2; DC uses |X[0]|/n).
std::vector<double> magnitude_db(const std::vector<Cplx>& spectrum,
                                 double fs_ref);

/// Window functions (length n, applied multiplicatively).
enum class Window { kRect, kHann, kBlackmanHarris4 };

/// Returns the window coefficients.
std::vector<double> make_window(Window w, std::size_t n);

/// Coherent-processing gain of the window (mean of coefficients).
double window_coherent_gain(Window w, std::size_t n);

/// True if n is a power of two (n >= 1).
bool is_pow2(std::size_t n);

}  // namespace csdac::mathx
