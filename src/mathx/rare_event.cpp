#include "mathx/rare_event.hpp"

#include <algorithm>
#include <cmath>

#include "mathx/stats.hpp"

namespace csdac::mathx {

namespace {

constexpr double kZ95 = 1.959963984540054;

/// Series crossover: both expansions converge geometrically here, the
/// alternating tail series needs ~4 terms, the theta-transformed series ~2.
constexpr double kSeriesSplit = 1.18;

}  // namespace

double kolmogorov_cdf(double x) {
  if (!(x > 0.0)) return 0.0;
  if (x >= kSeriesSplit) {
    // K(x) = 1 - 2 sum_{k>=1} (-1)^{k-1} exp(-2 k^2 x^2)
    double sum = 0.0;
    double sign = 1.0;
    for (int k = 1; k <= 32; ++k) {
      const double term = std::exp(-2.0 * k * k * x * x);
      sum += sign * term;
      sign = -sign;
      if (term < 1e-18) break;
    }
    return 1.0 - 2.0 * sum;
  }
  // Functional-equation form for small x (dominant near the origin where
  // the tail series loses all precision to cancellation):
  // K(x) = (sqrt(2 pi) / x) sum_{k>=1} exp(-(2k-1)^2 pi^2 / (8 x^2))
  const double inv = 1.0 / (8.0 * x * x);
  double sum = 0.0;
  for (int k = 1; k <= 16; ++k) {
    const double a = (2.0 * k - 1.0) * M_PI;
    const double term = std::exp(-a * a * inv);
    sum += term;
    if (term < 1e-300) break;
  }
  return std::sqrt(2.0 * M_PI) / x * sum;
}

double kolmogorov_quantile(double p) {
  double lo = 1e-8;
  double hi = 10.0;
  for (int it = 0; it < 200; ++it) {
    const double mid = 0.5 * (lo + hi);
    if (kolmogorov_cdf(mid) < p) {
      lo = mid;
    } else {
      hi = mid;
    }
    if (hi - lo < 1e-13) break;
  }
  return 0.5 * (lo + hi);
}

IsReduction reduce_is_weights(std::span<const double> log_w,
                              std::span<const unsigned char> fail) {
  IsReduction r;
  r.n = static_cast<std::int64_t>(log_w.size());
  if (r.n == 0) return r;
  r.log_w_max = log_w[0];
  r.log_w_min = log_w[0];
  for (std::size_t i = 1; i < log_w.size(); ++i) {
    r.log_w_max = std::max(r.log_w_max, log_w[i]);
    r.log_w_min = std::min(r.log_w_min, log_w[i]);
  }
  // One sequential pass in index order: the scaled weights are pure
  // functions of their slot, so the reduction is thread-count invariant.
  for (std::size_t i = 0; i < log_w.size(); ++i) {
    const double w = std::exp(log_w[i] - r.log_w_max);
    const double w2 = w * w;
    r.sum_w += w;
    r.sum_w2 += w2;
    if (fail[i]) {
      ++r.fails;
      r.sum_wf += w;
      r.sum_w2f += w2;
    }
  }
  return r;
}

IsEstimate is_estimate(const IsReduction& r) {
  IsEstimate e;
  if (r.n <= 0 || !(r.sum_w > 0.0)) return e;
  const double p = r.sum_wf / r.sum_w;
  e.fail_probability = p;
  // Delta-method variance of the ratio estimator p_hat = sum(w f)/sum(w):
  //   Var ~= sum_i w_i^2 (f_i - p_hat)^2 / (sum_i w_i)^2
  // expanded over the pass/fail split so it reduces to the stored sums.
  // Scale-invariant: numerator and denominator both carry exp(-2 max).
  const double num =
      r.sum_w2f * (1.0 - p) * (1.0 - p) + (r.sum_w2 - r.sum_w2f) * p * p;
  e.ci95 = kZ95 * std::sqrt(std::max(num, 0.0)) / r.sum_w;
  e.ess = r.sum_w2 > 0.0 ? r.sum_w * r.sum_w / r.sum_w2 : 0.0;
  e.ess_fraction = e.ess / static_cast<double>(r.n);
  return e;
}

StratEstimate stratified_estimate(std::span<const StratumMoments> strata) {
  StratEstimate e;
  if (strata.empty()) return e;
  const double s = static_cast<double>(strata.size());
  double mean_sum = 0.0;
  double var_sum = 0.0;
  for (const StratumMoments& m : strata) {
    if (m.pairs <= 0) continue;
    const double n = static_cast<double>(m.pairs);
    const double mu = m.sum_y / n;
    mean_sum += mu;
    e.pairs += m.pairs;
    if (m.pairs >= 2) {
      const double ss = std::max(m.sum_y2 - n * mu * mu, 0.0);
      const double var = ss / (n - 1.0);
      var_sum += var / n;
    }
  }
  e.mean = mean_sum / s;
  e.ci95 = kZ95 * std::sqrt(var_sum) / s;
  return e;
}

double half_normal_inv(double u) {
  u = std::clamp(u, 0.0, 1.0 - 1e-16);
  return normal_inv_cdf(0.5 * (1.0 + u));
}

}  // namespace csdac::mathx
