// Estimator mathematics for rare-event (deep-tail) yield estimation:
// the Kolmogorov distribution of the Brownian-bridge maximum excursion
// (the asymptotic law of thermometer-array INL, Heydenreich-van der
// Hofstad-Radulov, arXiv math/0606584), the deterministic reduction of
// importance-sampling log-weights with effective-sample-size and
// delta-method confidence diagnostics, and the combiner for
// stratified/antithetic pair samples. Everything here is plain
// sequential arithmetic over caller-provided per-item slot arrays: the
// parallel engine fills the slots (one slot per chip index), this layer
// reduces them in index order, so every estimate is bit-identical for
// any thread count.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace csdac::mathx {

/// Kolmogorov distribution function K(x) = P(sup_t |B(t)| <= x) for a
/// standard Brownian bridge B on [0, 1]. Two complementary series are
/// used (Jacobi theta identity): the alternating tail series for large x
/// and the functional-equation form for small x, switching where both
/// converge fast, so the result is accurate to ~1e-15 everywhere.
/// Returns 0 for x <= 0.
double kolmogorov_cdf(double x);

/// Smallest x with kolmogorov_cdf(x) >= p (bisection to ~1e-12); the
/// bridge-excursion quantile. p in (0, 1).
double kolmogorov_quantile(double p);

/// Deterministic sequential reduction of per-item importance weights.
/// `log_w[i]` is the log likelihood ratio log(p(z_i)/q(z_i)) of item i and
/// `fail[i]` is nonzero when the item realized the rare event. Weights are
/// rescaled by exp(-max log_w) during the pass (log-sum-exp guard), so the
/// sums are finite even when individual weights overflow; every returned
/// ratio (estimate, ESS) is invariant to that rescaling.
struct IsReduction {
  std::int64_t n = 0;          ///< items reduced
  std::int64_t fails = 0;      ///< raw failures under the proposal
  double log_w_max = 0.0;      ///< largest log weight seen
  double log_w_min = 0.0;      ///< smallest log weight seen
  double sum_w = 0.0;          ///< sum of w_i / exp(log_w_max)
  double sum_w2 = 0.0;         ///< sum of (w_i / exp(log_w_max))^2
  double sum_wf = 0.0;         ///< sum over failures of w_i / exp(log_w_max)
  double sum_w2f = 0.0;        ///< sum over failures of the squared scaled w
};

IsReduction reduce_is_weights(std::span<const double> log_w,
                              std::span<const unsigned char> fail);

/// Self-normalized importance-sampling estimate of the failure
/// probability p = E_p[fail] from a weight reduction:
///   p_hat = sum(w_i f_i) / sum(w_i)
/// with the delta-method (linearization) standard error of the ratio
/// estimator and the effective sample size ESS = (sum w)^2 / sum w^2.
struct IsEstimate {
  double fail_probability = 0.0;  ///< self-normalized p_hat
  double ci95 = 0.0;              ///< 1.96 * delta-method standard error
  double ess = 0.0;               ///< effective sample size
  double ess_fraction = 0.0;      ///< ess / n
};

IsEstimate is_estimate(const IsReduction& r);

/// Per-stratum pair-sample moments for the stratified/antithetic
/// estimator: y_j is the mean of an antithetic PAIR (0, 1/2 or 1 for a
/// pass/fail indicator), accumulated per stratum in pair-index order.
struct StratumMoments {
  std::int64_t pairs = 0;
  double sum_y = 0.0;
  double sum_y2 = 0.0;
};

/// Equal-weight stratified estimate over S strata:
///   p_hat = (1/S) * sum_s mean_s
/// with Var(p_hat) = (1/S^2) * sum_s var_s / n_s (var_s the unbiased
/// within-stratum sample variance of the pair means; a stratum with
/// fewer than 2 pairs contributes 0 variance). ci95 = 1.96 * sqrt(Var).
struct StratEstimate {
  double mean = 0.0;
  double ci95 = 0.0;
  std::int64_t pairs = 0;  ///< total pairs across strata
};

StratEstimate stratified_estimate(std::span<const StratumMoments> strata);

/// Inverse CDF of the standard half-normal distribution |Z|, Z ~ N(0,1):
/// the magnitude with P(|Z| <= result) = u. Used to stratify the dominant
/// bridge-mode amplitude. u in [0, 1).
double half_normal_inv(double u);

}  // namespace csdac::mathx
