// SSE2 Ops policy (2 chips per vector) for the chip-per-lane kernels.
// SSE2 is part of the x86-64 baseline, so the TU that includes this header
// needs no special compile flags on 64-bit builds; the include is still
// guarded so non-x86 builds fall back to scalar-only dispatch.
#pragma once

#if defined(__SSE2__)

#include <emmintrin.h>

#include <cstdint>

namespace csdac::mathx {

struct Sse2Ops {
  static constexpr int kLanes = 2;
  using F64 = __m128d;
  using U64 = __m128i;
  using Mask = __m128d;  // all-ones / all-zeros lanes from cmppd

  static F64 fset1(double v) { return _mm_set1_pd(v); }
  static F64 floadu(const double* p) { return _mm_loadu_pd(p); }
  static void fstoreu(double* p, F64 v) { _mm_storeu_pd(p, v); }
  static F64 fadd(F64 a, F64 b) { return _mm_add_pd(a, b); }
  static F64 fsub(F64 a, F64 b) { return _mm_sub_pd(a, b); }
  static F64 fmul(F64 a, F64 b) { return _mm_mul_pd(a, b); }
  static F64 fdiv(F64 a, F64 b) { return _mm_div_pd(a, b); }
  static F64 fmin(F64 a, F64 b) { return _mm_min_pd(a, b); }
  static F64 fmax(F64 a, F64 b) { return _mm_max_pd(a, b); }
  static F64 fabs(F64 v) { return _mm_andnot_pd(_mm_set1_pd(-0.0), v); }
  static F64 fsqrt(F64 v) { return _mm_sqrt_pd(v); }

  static Mask mask_all() {
    return _mm_castsi128_pd(_mm_set1_epi64x(-1));
  }
  static Mask cmp_gt(F64 a, F64 b) { return _mm_cmpgt_pd(a, b); }
  static Mask cmp_lt(F64 a, F64 b) { return _mm_cmplt_pd(a, b); }
  static Mask cmp_eq(F64 a, F64 b) { return _mm_cmpeq_pd(a, b); }
  static Mask mand(Mask a, Mask b) { return _mm_and_pd(a, b); }
  static Mask mandnot(Mask a, Mask b) { return _mm_andnot_pd(a, b); }
  static int movemask(Mask m) { return _mm_movemask_pd(m); }

  static U64 uset1(std::uint64_t v) {
    return _mm_set1_epi64x(static_cast<long long>(v));
  }
  static U64 uloadu(const std::uint64_t* p) {
    return _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
  }
  static void ustoreu(std::uint64_t* p, U64 v) {
    _mm_storeu_si128(reinterpret_cast<__m128i*>(p), v);
  }
  static U64 uadd(U64 a, U64 b) { return _mm_add_epi64(a, b); }
  static U64 uxor(U64 a, U64 b) { return _mm_xor_si128(a, b); }
  static U64 uor(U64 a, U64 b) { return _mm_or_si128(a, b); }
  static U64 usll(U64 x, int k) { return _mm_slli_epi64(x, k); }
  static U64 usrl(U64 x, int k) { return _mm_srli_epi64(x, k); }
  static U64 ublend(Mask m, U64 a, U64 b) {
    const __m128i mi = _mm_castpd_si128(m);
    return _mm_or_si128(_mm_and_si128(mi, a), _mm_andnot_si128(mi, b));
  }

  /// Exact u64 -> f64 for n < 2^53 (SSE2 has no cvtepu64_pd): split n into
  /// lo = n & 0xFFFFFFFF and hi = n >> 32, bit-OR each into the mantissa of
  /// the exponent constants 2^52 and 2^84 (giving exactly 2^52 + lo and
  /// 2^84 + hi*2^32), then (vhi - (2^84 + 2^52)) + vlo. Every step is
  /// exact, so the result equals the scalar static_cast<double>(n).
  static F64 u64_to_f64_53(U64 n) {
    const __m128i lo = _mm_or_si128(
        _mm_and_si128(n, _mm_set1_epi64x(0xFFFFFFFFll)),
        _mm_set1_epi64x(0x4330000000000000ll));
    const __m128i hi = _mm_or_si128(_mm_srli_epi64(n, 32),
                                    _mm_set1_epi64x(0x4530000000000000ll));
    const __m128d vhi = _mm_sub_pd(_mm_castsi128_pd(hi),
                                   _mm_set1_pd(0x1.00000001p84));
    return _mm_add_pd(vhi, _mm_castsi128_pd(lo));
  }
};

}  // namespace csdac::mathx

#endif  // __SSE2__
