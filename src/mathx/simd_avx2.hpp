// AVX2 Ops policy (4 chips per vector) for the chip-per-lane kernels.
// Only the dedicated lane_kernel_avx2.cpp translation unit (compiled with
// -mavx2, see src/dac/CMakeLists.txt) may include this header — nothing in
// it is safe to execute on a CPU without AVX2, and compiling it into a TU
// built with baseline flags would fail anyway.
#pragma once

#if defined(__AVX2__)

#include <immintrin.h>

#include <cstdint>

namespace csdac::mathx {

struct Avx2Ops {
  static constexpr int kLanes = 4;
  using F64 = __m256d;
  using U64 = __m256i;
  using Mask = __m256d;  // all-ones / all-zeros lanes from cmp_pd

  static F64 fset1(double v) { return _mm256_set1_pd(v); }
  static F64 floadu(const double* p) { return _mm256_loadu_pd(p); }
  static void fstoreu(double* p, F64 v) { _mm256_storeu_pd(p, v); }
  static F64 fadd(F64 a, F64 b) { return _mm256_add_pd(a, b); }
  static F64 fsub(F64 a, F64 b) { return _mm256_sub_pd(a, b); }
  static F64 fmul(F64 a, F64 b) { return _mm256_mul_pd(a, b); }
  static F64 fdiv(F64 a, F64 b) { return _mm256_div_pd(a, b); }
  static F64 fmin(F64 a, F64 b) { return _mm256_min_pd(a, b); }
  static F64 fmax(F64 a, F64 b) { return _mm256_max_pd(a, b); }
  static F64 fabs(F64 v) {
    return _mm256_andnot_pd(_mm256_set1_pd(-0.0), v);
  }
  static F64 fsqrt(F64 v) { return _mm256_sqrt_pd(v); }

  static Mask mask_all() {
    return _mm256_castsi256_pd(_mm256_set1_epi64x(-1));
  }
  static Mask cmp_gt(F64 a, F64 b) { return _mm256_cmp_pd(a, b, _CMP_GT_OQ); }
  static Mask cmp_lt(F64 a, F64 b) { return _mm256_cmp_pd(a, b, _CMP_LT_OQ); }
  static Mask cmp_eq(F64 a, F64 b) { return _mm256_cmp_pd(a, b, _CMP_EQ_OQ); }
  static Mask mand(Mask a, Mask b) { return _mm256_and_pd(a, b); }
  static Mask mandnot(Mask a, Mask b) { return _mm256_andnot_pd(a, b); }
  static int movemask(Mask m) { return _mm256_movemask_pd(m); }

  static U64 uset1(std::uint64_t v) {
    return _mm256_set1_epi64x(static_cast<long long>(v));
  }
  static U64 uloadu(const std::uint64_t* p) {
    return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
  }
  static void ustoreu(std::uint64_t* p, U64 v) {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), v);
  }
  static U64 uadd(U64 a, U64 b) { return _mm256_add_epi64(a, b); }
  static U64 uxor(U64 a, U64 b) { return _mm256_xor_si256(a, b); }
  static U64 uor(U64 a, U64 b) { return _mm256_or_si256(a, b); }
  static U64 usll(U64 x, int k) { return _mm256_slli_epi64(x, k); }
  static U64 usrl(U64 x, int k) { return _mm256_srli_epi64(x, k); }
  static U64 ublend(Mask m, U64 a, U64 b) {
    return _mm256_castpd_si256(
        _mm256_blendv_pd(_mm256_castsi256_pd(b), _mm256_castsi256_pd(a), m));
  }

  /// Exact u64 -> f64 for n < 2^53 (AVX2 has no cvtepu64_pd; that is
  /// AVX-512DQ): the same magic-constant split as Sse2Ops — lo 32 bits
  /// OR'd into 2^52's mantissa, high bits into 2^84's — every step exact,
  /// result bit-identical to the scalar static_cast<double>(n).
  static F64 u64_to_f64_53(U64 n) {
    const __m256i lo = _mm256_or_si256(
        _mm256_and_si256(n, _mm256_set1_epi64x(0xFFFFFFFFll)),
        _mm256_set1_epi64x(0x4330000000000000ll));
    const __m256i hi =
        _mm256_or_si256(_mm256_srli_epi64(n, 32),
                        _mm256_set1_epi64x(0x4530000000000000ll));
    const __m256d vhi = _mm256_sub_pd(_mm256_castsi256_pd(hi),
                                      _mm256_set1_pd(0x1.00000001p84));
    return _mm256_add_pd(vhi, _mm256_castsi256_pd(lo));
  }
};

}  // namespace csdac::mathx

#endif  // __AVX2__
