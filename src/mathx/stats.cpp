#include "mathx/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numbers>
#include <stdexcept>

namespace csdac::mathx {

double normal_cdf(double x) {
  return 0.5 * std::erfc(-x / std::numbers::sqrt2);
}

namespace {

// Acklam's rational approximation to the inverse normal CDF.
double acklam(double p) {
  static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                 -2.759285104469687e+02, 1.383577518672690e+02,
                                 -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                 -1.556989798598866e+02, 6.680131188771972e+01,
                                 -1.328068155288572e+01};
  static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                 -2.400758277161838e+00, -2.549732539343734e+00,
                                 4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                 2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double p_low = 0.02425;
  if (p < p_low) {
    const double q = std::sqrt(-2.0 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
            c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  if (p > 1.0 - p_low) {
    const double q = std::sqrt(-2.0 * std::log(1.0 - p));
    return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
             c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  const double q = p - 0.5;
  const double r = q * q;
  return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) *
         q /
         (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
}

}  // namespace

double normal_inv_cdf(double p) {
  if (!(p > 0.0 && p < 1.0)) {
    throw std::domain_error("normal_inv_cdf: p must be in (0,1)");
  }
  double x = acklam(p);
  // One Halley refinement step: solve Phi(x) - p = 0.
  const double e = normal_cdf(x) - p;
  const double u = e * std::sqrt(2.0 * std::numbers::pi) * std::exp(x * x / 2.0);
  x -= u / (1.0 + x * u / 2.0);
  return x;
}

double yield_coefficient_two_sided(double yield) {
  if (!(yield > 0.0 && yield < 1.0)) {
    throw std::domain_error("yield must be in (0,1)");
  }
  return normal_inv_cdf(0.5 * (1.0 + yield));
}

double yield_coefficient_one_sided(double yield_v) {
  if (!(yield_v > 0.0 && yield_v < 1.0)) {
    throw std::domain_error("yield_v must be in (0,1)");
  }
  return normal_inv_cdf(yield_v);
}

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double percentile(std::vector<double> values, double p) {
  if (values.empty()) throw std::invalid_argument("percentile: empty input");
  if (p <= 0.0) return *std::min_element(values.begin(), values.end());
  if (p >= 100.0) return *std::max_element(values.begin(), values.end());
  std::sort(values.begin(), values.end());
  const double pos = p / 100.0 * static_cast<double>(values.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= values.size()) return values.back();
  return values[lo] * (1.0 - frac) + values[lo + 1] * frac;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  if (!(hi > lo) || bins == 0) {
    throw std::invalid_argument("Histogram: bad range or bin count");
  }
}

void Histogram::add(double x) {
  const double t = (x - lo_) / (hi_ - lo_);
  auto idx = static_cast<long long>(t * static_cast<double>(counts_.size()));
  idx = std::clamp<long long>(idx, 0,
                              static_cast<long long>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

double Histogram::bin_center(std::size_t i) const {
  const double w = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + (static_cast<double>(i) + 0.5) * w;
}

}  // namespace csdac::mathx
