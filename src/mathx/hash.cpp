#include "mathx/hash.hpp"

#include <cstdio>

namespace csdac::mathx {

namespace {

/// splitmix64 finalizer: full-avalanche 64-bit mix.
std::uint64_t mix64(std::uint64_t z) {
  z ^= z >> 30;
  z *= 0xbf58476d1ce4e5b9ull;
  z ^= z >> 27;
  z *= 0x94d049bb133111ebull;
  z ^= z >> 31;
  return z;
}

}  // namespace

std::string HashKey128::hex() const {
  char buf[33];
  std::snprintf(buf, sizeof(buf), "%016llx%016llx",
                static_cast<unsigned long long>(hi),
                static_cast<unsigned long long>(lo));
  return buf;
}

HashKey128 hash128(const void* data, std::size_t size) {
  HashKey128 k;
  k.hi = mix64(fnv1a64(data, size, kFnvOffsetBasis));
  // Second lane: same stream, decorrelated basis (offset basis mixed).
  k.lo = mix64(fnv1a64(data, size, mix64(kFnvOffsetBasis) | 1ull));
  return k;
}

}  // namespace csdac::mathx
