#include "mathx/parallel.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <stdexcept>

#include "mathx/alloc_counter.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"

namespace csdac::mathx {

namespace {

/// Engine instruments in the process-wide registry, resolved once. The
/// per-item cost stays on RunStats' plain per-thread vector; the registry
/// sees whole-run aggregates (a few adds per run/wave, never per item).
struct EngineMetrics {
  obs::Counter& runs;
  obs::Counter& items;
  obs::Counter& waves;
  obs::Counter& early_stops;
  obs::Histogram& run_us;
  obs::Histogram& wave_us;

  static EngineMetrics& get() {
    static EngineMetrics m{
        obs::Registry::global().counter(
            "engine.runs", "parallel engine runs (for_each dispatches)"),
        obs::Registry::global().counter(
            "engine.items", "items evaluated by the parallel engine"),
        obs::Registry::global().counter(
            "engine.waves", "adaptive-MC waves (CI-checked batches)"),
        obs::Registry::global().counter(
            "engine.early_stops", "adaptive runs stopped before the cap"),
        obs::Registry::global().histogram(
            "engine.run_us", "parallel engine run wall time [us]"),
        obs::Registry::global().histogram(
            "engine.wave_us", "adaptive-MC wave wall time [us]"),
    };
    return m;
  }
};

}  // namespace

int resolve_threads(int threads) {
  if (threads == 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
  }
  return std::max(threads, 1);
}

ThreadPool::ThreadPool(int threads) {
  const int n = resolve_threads(threads);
  workers_.reserve(static_cast<std::size_t>(n - 1));
  for (int t = 0; t + 1 < n; ++t) {
    workers_.emplace_back([this, t] { worker_loop(t + 1); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_start_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop(int worker) {
  std::uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_start_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
    }
    {
      // Per-worker span, nested under whatever span the dispatching
      // thread had open (no-op when no sink is registered).
      obs::ScopedSpan span("engine.worker", span_parent_);
      span.attr("worker", worker);
      work(worker);
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --busy_;
    }
    cv_done_.notify_one();
  }
}

void ThreadPool::work(int worker) {
  for (;;) {
    const std::int64_t lo = next_.fetch_add(chunk_);
    if (lo >= end_) return;
    const std::int64_t hi = std::min(lo + chunk_, end_);
    for (std::int64_t i = lo; i < hi; ++i) (*fn_)(worker, i);
  }
}

void ThreadPool::for_each(std::int64_t begin, std::int64_t end,
                          const std::function<void(std::int64_t)>& fn,
                          std::int64_t chunk) {
  const std::function<void(int, std::int64_t)> wrapped =
      [&fn](int, std::int64_t i) { fn(i); };
  for_each_indexed(begin, end, wrapped, chunk);
}

void ThreadPool::for_each_indexed(
    std::int64_t begin, std::int64_t end,
    const std::function<void(int, std::int64_t)>& fn, std::int64_t chunk) {
  if (begin >= end) return;
  if (chunk < 1) throw std::invalid_argument("ThreadPool: chunk < 1");
  if (workers_.empty()) {
    obs::ScopedSpan span("engine.worker");
    span.attr("worker", 0);
    for (std::int64_t i = begin; i < end; ++i) fn(0, i);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    next_.store(begin);
    end_ = end;
    chunk_ = chunk;
    fn_ = &fn;
    busy_ = static_cast<int>(workers_.size());
    span_parent_ = obs::Tracer::current_span_id();
    ++generation_;
  }
  cv_start_.notify_all();
  {
    obs::ScopedSpan span("engine.worker");  // calling thread is worker 0
    span.attr("worker", 0);
    work(0);
  }
  std::unique_lock<std::mutex> lock(mutex_);
  cv_done_.wait(lock, [&] { return busy_ == 0; });
  fn_ = nullptr;
}

namespace {

void finish_stats(RunStats& s, std::chrono::steady_clock::time_point t0) {
  s.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  s.items_per_second = s.wall_seconds > 0.0
                           ? static_cast<double>(s.evaluated) / s.wall_seconds
                           : 0.0;
}

void fill_utilization(RunStats& s) {
  std::int64_t max_items = 0;
  for (const std::int64_t c : s.per_thread_items) {
    max_items = std::max(max_items, c);
  }
  if (max_items > 0 && !s.per_thread_items.empty()) {
    const double mean = static_cast<double>(s.evaluated) /
                        static_cast<double>(s.per_thread_items.size());
    s.utilization = mean / static_cast<double>(max_items);
  }
}

}  // namespace

RunStats parallel_for(std::int64_t n, int threads,
                      const std::function<void(std::int64_t)>& fn,
                      std::int64_t chunk) {
  // Delegate so per-thread item counts and utilization are reported
  // consistently on every path, including the single-thread one (threads=1
  // yields a one-entry per_thread_items vector, never an empty one).
  const std::function<void(int, std::int64_t)> wrapped =
      [&fn](int, std::int64_t i) { fn(i); };
  return parallel_for_indexed(n, threads, wrapped, chunk);
}

RunStats parallel_for_indexed(std::int64_t n, int threads,
                              const std::function<void(int, std::int64_t)>& fn,
                              std::int64_t chunk, bool count_allocs) {
  const auto t0 = std::chrono::steady_clock::now();
  ThreadPool pool(clamp_threads_to_items(threads, n));
  obs::ScopedSpan span("engine.run");
  span.attr("items", n).attr("threads", pool.threads());
  RunStats s;
  s.threads = pool.threads();
  s.per_thread_items.assign(static_cast<std::size_t>(pool.threads()), 0);
  const std::function<void(int, std::int64_t)> counted =
      [&](int worker, std::int64_t i) {
        ++s.per_thread_items[static_cast<std::size_t>(worker)];
        fn(worker, i);
      };
  std::optional<ScopedAllocCounting> counting;
  if (count_allocs) counting.emplace();
  pool.for_each_indexed(0, n, counted, chunk);
  if (counting) {
    const AllocCounts c = counting->so_far();
    s.alloc_bytes = c.bytes;
    s.alloc_count = c.count;
  }
  s.evaluated = n;
  fill_utilization(s);
  finish_stats(s, t0);
  EngineMetrics& m = EngineMetrics::get();
  m.runs.add(1);
  m.items.add(n);
  m.run_us.observe(static_cast<std::int64_t>(s.wall_seconds * 1e6));
  return s;
}

RunStats parallel_for_blocks_indexed(
    std::int64_t n, int threads, std::int64_t block,
    const std::function<void(int, std::int64_t, std::int64_t)>& fn,
    bool count_allocs) {
  if (block < 1) {
    throw std::invalid_argument("parallel_for_blocks: block < 1");
  }
  const auto t0 = std::chrono::steady_clock::now();
  const std::int64_t nblocks = (n + block - 1) / block;
  ThreadPool pool(clamp_threads_to_items(threads, nblocks));
  obs::ScopedSpan span("engine.run");
  span.attr("items", n).attr("threads", pool.threads()).attr("block", block);
  RunStats s;
  s.threads = pool.threads();
  s.per_thread_items.assign(static_cast<std::size_t>(pool.threads()), 0);
  const std::function<void(int, std::int64_t)> counted =
      [&](int worker, std::int64_t b) {
        const std::int64_t lo = b * block;
        const std::int64_t hi = std::min(lo + block, n);
        s.per_thread_items[static_cast<std::size_t>(worker)] += hi - lo;
        fn(worker, lo, hi);
      };
  std::optional<ScopedAllocCounting> counting;
  if (count_allocs) counting.emplace();
  pool.for_each_indexed(0, nblocks, counted);
  if (counting) {
    const AllocCounts c = counting->so_far();
    s.alloc_bytes = c.bytes;
    s.alloc_count = c.count;
  }
  s.evaluated = n;
  fill_utilization(s);
  finish_stats(s, t0);
  EngineMetrics& m = EngineMetrics::get();
  m.runs.add(1);
  m.items.add(n);
  m.run_us.observe(static_cast<std::int64_t>(s.wall_seconds * 1e6));
  return s;
}

double wilson_half_width(std::int64_t pass, std::int64_t n, double z) {
  if (n <= 0) return 1.0;
  const double nn = static_cast<double>(n);
  const double p = static_cast<double>(pass) / nn;
  const double z2 = z * z;
  return z * std::sqrt(p * (1.0 - p) / nn + z2 / (4.0 * nn * nn)) /
         (1.0 + z2 / nn);
}

YieldRun adaptive_yield_run(
    const EarlyStopOptions& opts, int threads,
    const std::function<bool(std::int64_t)>& item_passes) {
  const std::function<bool(int, std::int64_t)> wrapped =
      [&item_passes](int, std::int64_t i) { return item_passes(i); };
  return adaptive_yield_run_indexed(opts, threads, wrapped);
}

YieldRun adaptive_yield_run_indexed(
    const EarlyStopOptions& opts, int threads,
    const std::function<bool(int, std::int64_t)>& item_passes,
    bool count_allocs) {
  if (opts.max_items < 1 || opts.batch < 1 || opts.min_items < 1 ||
      opts.ci_half_width < 0.0) {
    throw std::invalid_argument("adaptive_yield_run: bad options");
  }
  const auto t0 = std::chrono::steady_clock::now();
  ThreadPool pool(clamp_threads_to_items(threads, opts.max_items));
  YieldRun r;
  r.stats.threads = pool.threads();
  r.stats.per_thread_items.assign(static_cast<std::size_t>(pool.threads()),
                                  0);
  std::atomic<std::int64_t> passed{0};
  const std::function<void(int, std::int64_t)> counted =
      [&](int worker, std::int64_t i) {
        ++r.stats.per_thread_items[static_cast<std::size_t>(worker)];
        if (item_passes(worker, i)) {
          passed.fetch_add(1, std::memory_order_relaxed);
        }
      };
  std::optional<ScopedAllocCounting> counting;
  if (count_allocs) counting.emplace();
  obs::ScopedSpan run_span("mc.adaptive");
  run_span.attr("max_items", opts.max_items).attr("threads", pool.threads());
  EngineMetrics& m = EngineMetrics::get();
  std::int64_t wave = 0;
  while (r.evaluated < opts.max_items) {
    const std::int64_t batch =
        std::min(opts.batch, opts.max_items - r.evaluated);
    {
      const auto w0 = std::chrono::steady_clock::now();
      obs::ScopedSpan wave_span("mc.wave");
      wave_span.attr("wave", wave).attr("from", r.evaluated)
          .attr("items", batch);
      pool.for_each_indexed(r.evaluated, r.evaluated + batch, counted);
      m.waves.add(1);
      m.items.add(batch);
      m.wave_us.observe(static_cast<std::int64_t>(
          std::chrono::duration<double, std::micro>(
              std::chrono::steady_clock::now() - w0)
              .count()));
    }
    ++wave;
    r.evaluated += batch;
    r.passed = passed.load();
    if (opts.ci_half_width > 0.0 && r.evaluated >= opts.min_items &&
        wilson_half_width(r.passed, r.evaluated) <= opts.ci_half_width) {
      r.stats.early_stopped = true;
      m.early_stops.add(1);
      break;
    }
  }
  if (counting) {
    const AllocCounts c = counting->so_far();
    r.stats.alloc_bytes = c.bytes;
    r.stats.alloc_count = c.count;
  }
  r.yield = static_cast<double>(r.passed) / static_cast<double>(r.evaluated);
  r.ci95 = wilson_half_width(r.passed, r.evaluated);
  r.stats.evaluated = r.evaluated;
  r.stats.skipped = opts.max_items - r.evaluated;
  fill_utilization(r.stats);
  finish_stats(r.stats, t0);
  run_span.attr("evaluated", r.evaluated).attr("passed", r.passed)
      .attr("early_stopped", r.stats.early_stopped ? "true" : "false");
  return r;
}

YieldRun adaptive_yield_run_blocks_indexed(
    const EarlyStopOptions& opts, int threads, std::int64_t block,
    const std::function<std::int64_t(int, std::int64_t, std::int64_t)>&
        block_passes,
    bool count_allocs) {
  if (opts.max_items < 1 || opts.batch < 1 || opts.min_items < 1 ||
      opts.ci_half_width < 0.0) {
    throw std::invalid_argument("adaptive_yield_run: bad options");
  }
  if (block < 1) {
    throw std::invalid_argument("adaptive_yield_run: block < 1");
  }
  const auto t0 = std::chrono::steady_clock::now();
  const std::int64_t max_blocks = (opts.max_items + block - 1) / block;
  ThreadPool pool(clamp_threads_to_items(threads, max_blocks));
  YieldRun r;
  r.stats.threads = pool.threads();
  r.stats.per_thread_items.assign(static_cast<std::size_t>(pool.threads()),
                                  0);
  std::atomic<std::int64_t> passed{0};
  // Set per wave: the blocks of the current wave, relative to its start.
  std::int64_t wave_lo = 0;
  std::int64_t wave_hi = 0;
  const std::function<void(int, std::int64_t)> counted =
      [&](int worker, std::int64_t b) {
        const std::int64_t lo = wave_lo + b * block;
        const std::int64_t hi = std::min(lo + block, wave_hi);
        r.stats.per_thread_items[static_cast<std::size_t>(worker)] += hi - lo;
        passed.fetch_add(block_passes(worker, lo, hi),
                         std::memory_order_relaxed);
      };
  std::optional<ScopedAllocCounting> counting;
  if (count_allocs) counting.emplace();
  obs::ScopedSpan run_span("mc.adaptive");
  run_span.attr("max_items", opts.max_items).attr("threads", pool.threads());
  EngineMetrics& m = EngineMetrics::get();
  std::int64_t wave = 0;
  while (r.evaluated < opts.max_items) {
    const std::int64_t batch =
        std::min(opts.batch, opts.max_items - r.evaluated);
    wave_lo = r.evaluated;
    wave_hi = r.evaluated + batch;
    const std::int64_t nblocks = (batch + block - 1) / block;
    {
      const auto w0 = std::chrono::steady_clock::now();
      obs::ScopedSpan wave_span("mc.wave");
      wave_span.attr("wave", wave).attr("from", r.evaluated)
          .attr("items", batch);
      pool.for_each_indexed(0, nblocks, counted);
      m.waves.add(1);
      m.items.add(batch);
      m.wave_us.observe(static_cast<std::int64_t>(
          std::chrono::duration<double, std::micro>(
              std::chrono::steady_clock::now() - w0)
              .count()));
    }
    ++wave;
    r.evaluated += batch;
    r.passed = passed.load();
    if (opts.ci_half_width > 0.0 && r.evaluated >= opts.min_items &&
        wilson_half_width(r.passed, r.evaluated) <= opts.ci_half_width) {
      r.stats.early_stopped = true;
      m.early_stops.add(1);
      break;
    }
  }
  if (counting) {
    const AllocCounts c = counting->so_far();
    r.stats.alloc_bytes = c.bytes;
    r.stats.alloc_count = c.count;
  }
  r.yield = static_cast<double>(r.passed) / static_cast<double>(r.evaluated);
  r.ci95 = wilson_half_width(r.passed, r.evaluated);
  r.stats.evaluated = r.evaluated;
  r.stats.skipped = opts.max_items - r.evaluated;
  fill_utilization(r.stats);
  finish_stats(r.stats, t0);
  run_span.attr("evaluated", r.evaluated).attr("passed", r.passed)
      .attr("early_stopped", r.stats.early_stopped ? "true" : "false");
  return r;
}

}  // namespace csdac::mathx
