#include "mathx/parallel.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <stdexcept>

namespace csdac::mathx {

int resolve_threads(int threads) {
  if (threads == 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
  }
  return std::max(threads, 1);
}

ThreadPool::ThreadPool(int threads) {
  const int n = resolve_threads(threads);
  workers_.reserve(static_cast<std::size_t>(n - 1));
  for (int t = 0; t + 1 < n; ++t) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_start_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  std::uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_start_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
    }
    work();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --busy_;
    }
    cv_done_.notify_one();
  }
}

void ThreadPool::work() {
  for (;;) {
    const std::int64_t lo = next_.fetch_add(chunk_);
    if (lo >= end_) return;
    const std::int64_t hi = std::min(lo + chunk_, end_);
    for (std::int64_t i = lo; i < hi; ++i) (*fn_)(i);
  }
}

void ThreadPool::for_each(std::int64_t begin, std::int64_t end,
                          const std::function<void(std::int64_t)>& fn,
                          std::int64_t chunk) {
  if (begin >= end) return;
  if (chunk < 1) throw std::invalid_argument("ThreadPool: chunk < 1");
  if (workers_.empty()) {
    for (std::int64_t i = begin; i < end; ++i) fn(i);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    next_.store(begin);
    end_ = end;
    chunk_ = chunk;
    fn_ = &fn;
    busy_ = static_cast<int>(workers_.size());
    ++generation_;
  }
  cv_start_.notify_all();
  work();  // the calling thread is a worker too
  std::unique_lock<std::mutex> lock(mutex_);
  cv_done_.wait(lock, [&] { return busy_ == 0; });
  fn_ = nullptr;
}

RunStats parallel_for(std::int64_t n, int threads,
                      const std::function<void(std::int64_t)>& fn,
                      std::int64_t chunk) {
  const auto t0 = std::chrono::steady_clock::now();
  ThreadPool pool(std::min<std::int64_t>(resolve_threads(threads),
                                         std::max<std::int64_t>(n, 1)));
  pool.for_each(0, n, fn, chunk);
  RunStats s;
  s.evaluated = n;
  s.threads = pool.threads();
  s.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  s.items_per_second =
      s.wall_seconds > 0.0 ? static_cast<double>(n) / s.wall_seconds : 0.0;
  return s;
}

double wilson_half_width(std::int64_t pass, std::int64_t n, double z) {
  if (n <= 0) return 1.0;
  const double nn = static_cast<double>(n);
  const double p = static_cast<double>(pass) / nn;
  const double z2 = z * z;
  return z * std::sqrt(p * (1.0 - p) / nn + z2 / (4.0 * nn * nn)) /
         (1.0 + z2 / nn);
}

YieldRun adaptive_yield_run(
    const EarlyStopOptions& opts, int threads,
    const std::function<bool(std::int64_t)>& item_passes) {
  if (opts.max_items < 1 || opts.batch < 1 || opts.min_items < 1 ||
      opts.ci_half_width < 0.0) {
    throw std::invalid_argument("adaptive_yield_run: bad options");
  }
  const auto t0 = std::chrono::steady_clock::now();
  ThreadPool pool(std::min<std::int64_t>(resolve_threads(threads),
                                         opts.max_items));
  YieldRun r;
  std::atomic<std::int64_t> passed{0};
  while (r.evaluated < opts.max_items) {
    const std::int64_t batch =
        std::min(opts.batch, opts.max_items - r.evaluated);
    pool.for_each(r.evaluated, r.evaluated + batch, [&](std::int64_t i) {
      if (item_passes(i)) passed.fetch_add(1, std::memory_order_relaxed);
    });
    r.evaluated += batch;
    r.passed = passed.load();
    if (opts.ci_half_width > 0.0 && r.evaluated >= opts.min_items &&
        wilson_half_width(r.passed, r.evaluated) <= opts.ci_half_width) {
      r.stats.early_stopped = true;
      break;
    }
  }
  r.yield = static_cast<double>(r.passed) / static_cast<double>(r.evaluated);
  r.ci95 = wilson_half_width(r.passed, r.evaluated);
  r.stats.evaluated = r.evaluated;
  r.stats.skipped = opts.max_items - r.evaluated;
  r.stats.threads = pool.threads();
  r.stats.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  r.stats.items_per_second =
      r.stats.wall_seconds > 0.0
          ? static_cast<double>(r.evaluated) / r.stats.wall_seconds
          : 0.0;
  return r;
}

}  // namespace csdac::mathx
