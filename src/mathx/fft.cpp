#include "mathx/fft.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace csdac::mathx {
namespace {

constexpr double kPi = std::numbers::pi;

std::size_t next_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

bool is_pow2(std::size_t n) { return n >= 1 && (n & (n - 1)) == 0; }

void fft_pow2(std::vector<Cplx>& x, bool inverse) {
  const std::size_t n = x.size();
  if (!is_pow2(n)) throw std::invalid_argument("fft_pow2: n not a power of 2");
  if (n == 1) return;

  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(x[i], x[j]);
  }

  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double ang = 2.0 * kPi / static_cast<double>(len) *
                       (inverse ? 1.0 : -1.0);
    const Cplx wlen(std::cos(ang), std::sin(ang));
    for (std::size_t i = 0; i < n; i += len) {
      Cplx w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const Cplx u = x[i + k];
        const Cplx v = x[i + k + len / 2] * w;
        x[i + k] = u + v;
        x[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
  if (inverse) {
    const double inv_n = 1.0 / static_cast<double>(n);
    for (auto& v : x) v *= inv_n;
  }
}

std::vector<Cplx> dft(const std::vector<Cplx>& x, bool inverse) {
  const std::size_t n = x.size();
  if (n == 0) return {};
  if (is_pow2(n)) {
    std::vector<Cplx> y = x;
    fft_pow2(y, inverse);
    return y;
  }
  // Bluestein: X[k] = b*[k] sum_m (a[m] b[m]) conv, via pow2 FFTs.
  const double sign = inverse ? 1.0 : -1.0;
  const std::size_t m = next_pow2(2 * n - 1);
  std::vector<Cplx> a(m, Cplx{}), b(m, Cplx{});
  std::vector<Cplx> chirp(n);
  for (std::size_t i = 0; i < n; ++i) {
    // angle = pi * i^2 / n, computed mod 2n to keep the argument small.
    const unsigned long long i2 =
        (static_cast<unsigned long long>(i) * i) % (2ull * n);
    const double ang = sign * kPi * static_cast<double>(i2) /
                       static_cast<double>(n);
    chirp[i] = Cplx(std::cos(ang), std::sin(ang));
    a[i] = x[i] * chirp[i];
  }
  b[0] = Cplx(1.0, 0.0);
  for (std::size_t i = 1; i < n; ++i) {
    b[i] = std::conj(chirp[i]);
    b[m - i] = b[i];
  }
  fft_pow2(a);
  fft_pow2(b);
  for (std::size_t i = 0; i < m; ++i) a[i] *= b[i];
  fft_pow2(a, /*inverse=*/true);
  std::vector<Cplx> out(n);
  for (std::size_t i = 0; i < n; ++i) out[i] = a[i] * chirp[i];
  if (inverse) {
    const double inv_n = 1.0 / static_cast<double>(n);
    for (auto& v : out) v *= inv_n;
  }
  return out;
}

std::vector<Cplx> dft_real(const std::vector<double>& x) {
  std::vector<Cplx> c(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) c[i] = Cplx(x[i], 0.0);
  return dft(c);
}

std::vector<double> magnitude_db(const std::vector<Cplx>& spectrum,
                                 double fs_ref) {
  const std::size_t n = spectrum.size();
  const std::size_t half = n / 2 + 1;
  std::vector<double> out(half);
  constexpr double kFloor = 1e-30;
  for (std::size_t k = 0; k < half; ++k) {
    const double scale = (k == 0 || 2 * k == n) ? 1.0 : 2.0;
    const double mag =
        scale * std::abs(spectrum[k]) / (static_cast<double>(n) * fs_ref);
    out[k] = 20.0 * std::log10(std::max(mag, kFloor));
  }
  return out;
}

std::vector<double> make_window(Window w, std::size_t n) {
  std::vector<double> win(n, 1.0);
  if (n <= 1) return win;
  const double denom = static_cast<double>(n);  // periodic windows
  switch (w) {
    case Window::kRect:
      break;
    case Window::kHann:
      for (std::size_t i = 0; i < n; ++i) {
        win[i] = 0.5 - 0.5 * std::cos(2.0 * kPi * static_cast<double>(i) / denom);
      }
      break;
    case Window::kBlackmanHarris4: {
      constexpr double a0 = 0.35875, a1 = 0.48829, a2 = 0.14128, a3 = 0.01168;
      for (std::size_t i = 0; i < n; ++i) {
        const double t = 2.0 * kPi * static_cast<double>(i) / denom;
        win[i] = a0 - a1 * std::cos(t) + a2 * std::cos(2 * t) -
                 a3 * std::cos(3 * t);
      }
      break;
    }
  }
  return win;
}

double window_coherent_gain(Window w, std::size_t n) {
  const auto win = make_window(w, n);
  double sum = 0.0;
  for (double v : win) sum += v;
  return n ? sum / static_cast<double>(n) : 1.0;
}

}  // namespace csdac::mathx
