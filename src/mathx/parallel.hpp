// Shared parallel Monte-Carlo engine: a reusable thread pool with
// deterministic work partitioning plus an adaptive early-stopping yield
// estimator. Every MC consumer in the library (INL/DNL yield, calibrated
// yield, annealing restarts, design-space sweeps) routes through this so
// that (a) results are bit-identical for any thread count — each item is a
// pure function of its index, typically via a `stream_rng(seed, index)`
// substream — and (b) yield loops stop burning chips once the binomial
// confidence interval has resolved the answer.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace csdac::mathx {

/// Resolves a user-facing thread-count knob: 0 means "use the hardware
/// concurrency", anything else is clamped to >= 1. Negative counts are the
/// caller's error to reject (the historical yield_mc API throws).
int resolve_threads(int threads);

/// Observability record returned by every engine run.
struct RunStats {
  std::int64_t evaluated = 0;  ///< items actually run
  std::int64_t skipped = 0;    ///< budgeted items not run (early stop)
  int threads = 1;             ///< worker count actually used (incl. caller)
  bool early_stopped = false;  ///< estimator stopped before the cap
  double wall_seconds = 0.0;
  double items_per_second = 0.0;  ///< evaluated / wall_seconds
};

/// Persistent pool of `threads - 1` workers; the calling thread is the
/// last worker, so `ThreadPool(1)` spawns nothing and runs inline.
/// `for_each` dispatches fn(i) over [begin, end) with chunked index
/// claiming. The ASSIGNMENT of indices to threads is racy by design; a
/// deterministic overall result only requires fn(i) to depend on nothing
/// but i (write to slot i, derive randomness from (seed, i)).
class ThreadPool {
 public:
  explicit ThreadPool(int threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total worker count including the calling thread.
  int threads() const { return static_cast<int>(workers_.size()) + 1; }

  /// Runs fn(i) for every i in [begin, end); blocks until done. Threads
  /// claim `chunk` consecutive indices at a time (chunk >= 1).
  void for_each(std::int64_t begin, std::int64_t end,
                const std::function<void(std::int64_t)>& fn,
                std::int64_t chunk = 1);

 private:
  void worker_loop();
  void work();  ///< claim and run chunks of the current job

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  std::uint64_t generation_ = 0;  ///< bumped per job; wakes the workers
  int busy_ = 0;                  ///< workers still on the current job
  bool stop_ = false;

  // Current job (valid while busy_ > 0).
  std::atomic<std::int64_t> next_{0};
  std::int64_t end_ = 0;
  std::int64_t chunk_ = 1;
  const std::function<void(std::int64_t)>* fn_ = nullptr;
};

/// One-shot parallel loop: fn(i) for i in [0, n). Returns the run record.
RunStats parallel_for(std::int64_t n, int threads,
                      const std::function<void(std::int64_t)>& fn,
                      std::int64_t chunk = 1);

/// Parallel map into a pre-sized vector: out[i] = fn(i). The output order
/// is by index, so the result is thread-count independent for pure fn.
template <typename F>
auto parallel_map(std::int64_t n, int threads, F&& fn,
                  RunStats* stats = nullptr, std::int64_t chunk = 1)
    -> std::vector<decltype(fn(std::int64_t{}))> {
  using T = decltype(fn(std::int64_t{}));
  std::vector<T> out(static_cast<std::size_t>(n));
  const RunStats rs = parallel_for(
      n, threads,
      [&](std::int64_t i) { out[static_cast<std::size_t>(i)] = fn(i); },
      chunk);
  if (stats) *stats = rs;
  return out;
}

/// Wilson score interval half-width for `pass` successes in `n` trials at
/// confidence z (default two-sided 95 %). Well-behaved at yield 0/1 where
/// the naive binomial half-width collapses to zero.
double wilson_half_width(std::int64_t pass, std::int64_t n,
                         double z = 1.959963984540054);

/// Adaptive early-stopping controls. The CI is checked only at batch
/// boundaries, and the batch size is independent of the thread count, so
/// the stopping point — and therefore the estimate — is bit-identical for
/// any number of threads.
struct EarlyStopOptions {
  std::int64_t max_items = 10000;  ///< hard cap on items evaluated
  std::int64_t min_items = 128;    ///< never stop before this many
  std::int64_t batch = 128;        ///< CI checked every `batch` items
  /// Stop once the Wilson 95 % half-width <= this; 0 disables early
  /// stopping (the run then always evaluates max_items).
  double ci_half_width = 0.0;
};

/// Result of an adaptive pass/fail (yield) estimation run.
struct YieldRun {
  std::int64_t evaluated = 0;  ///< items actually evaluated (<= max_items)
  std::int64_t passed = 0;
  double yield = 0.0;  ///< passed / evaluated
  double ci95 = 0.0;   ///< Wilson 95 % half-width at the stopping point
  RunStats stats;
};

/// Evaluates item_passes(i) for i = 0, 1, ... until the CI criterion is met
/// or max_items is reached. Items are drawn in deterministic batches; each
/// batch runs on the pool. item_passes must be pure in i.
YieldRun adaptive_yield_run(const EarlyStopOptions& opts, int threads,
                            const std::function<bool(std::int64_t)>& item_passes);

}  // namespace csdac::mathx
