// Shared parallel Monte-Carlo engine: a reusable thread pool with
// deterministic work partitioning plus an adaptive early-stopping yield
// estimator. Every MC consumer in the library (INL/DNL yield, calibrated
// yield, annealing restarts, design-space sweeps) routes through this so
// that (a) results are bit-identical for any thread count — each item is a
// pure function of its index, typically via a `stream_rng(seed, index)`
// substream — and (b) yield loops stop burning chips once the binomial
// confidence interval has resolved the answer.
//
// The *_workspace variants add an allocation-free hot path: a per-worker
// workspace (preallocated buffers) is built once by a caller-supplied
// factory and reused across every item that worker claims. Because items
// remain pure functions of their index, the workspace path is bit-identical
// to the plain one. RunStats carries the perf counters: items/s, per-worker
// item counts (utilization), and — opt-in, via the alloc_counter hook —
// bytes allocated during the run.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

namespace csdac::mathx {

/// Resolves a user-facing thread-count knob: 0 means "use the hardware
/// concurrency", anything else is clamped to >= 1. Negative counts are the
/// caller's error to reject (the historical yield_mc API throws).
int resolve_threads(int threads);

/// Worker count the engine will actually use for an n-item job: never more
/// workers than items.
inline int clamp_threads_to_items(int threads, std::int64_t n) {
  const std::int64_t t = resolve_threads(threads);
  const std::int64_t cap = n > 1 ? n : 1;
  return static_cast<int>(t < cap ? t : cap);
}

/// Observability record returned by every engine run. This is the per-run
/// view; the same quantities also flow into the process-wide obs::Registry
/// (engine.runs / engine.items / engine.waves / engine.early_stops counters
/// and the engine.run_us / engine.wave_us latency histograms), so RunStats
/// is now a thin per-call facade over the shared observability layer.
/// Every entry point fills threads and a threads-sized per_thread_items
/// vector — including the single-thread path, which reports threads = 1
/// with a one-entry vector.
struct RunStats {
  std::int64_t evaluated = 0;  ///< items actually run
  std::int64_t skipped = 0;    ///< budgeted items not run (early stop)
  int threads = 1;             ///< worker count actually used (incl. caller)
  bool early_stopped = false;  ///< estimator stopped before the cap
  double wall_seconds = 0.0;
  double items_per_second = 0.0;  ///< evaluated / wall_seconds
  /// Items run by each worker (index 0 = the calling thread). Filled by the
  /// indexed/workspace engine entry points; empty otherwise.
  std::vector<std::int64_t> per_thread_items;
  /// Load balance: mean(per_thread_items) / max(per_thread_items), 1 =
  /// perfectly balanced. 1.0 when per-thread counts were not tracked.
  double utilization = 1.0;
  /// Allocation counters for the run (see mathx/alloc_counter.hpp),
  /// -1 when counting was not requested. Includes one-time setup such as
  /// per-worker workspace construction; measure two run lengths and diff
  /// to isolate the steady-state rate.
  std::int64_t alloc_bytes = -1;
  std::int64_t alloc_count = -1;
  /// Result-cache counters, filled by the runtime layer when a run is
  /// served through the persistent job cache (0 otherwise). A cache hit
  /// leaves evaluated == 0: the result was decoded, not recomputed.
  std::int64_t cache_hits = 0;
  std::int64_t cache_misses = 0;
  std::int64_t cache_evictions = 0;
};

/// Persistent pool of `threads - 1` workers; the calling thread is worker 0,
/// so `ThreadPool(1)` spawns nothing and runs inline. `for_each` dispatches
/// fn(i) over [begin, end) with chunked index claiming. The ASSIGNMENT of
/// indices to threads is racy by design; a deterministic overall result only
/// requires fn(i) to depend on nothing but i (write to slot i, derive
/// randomness from (seed, i)).
class ThreadPool {
 public:
  explicit ThreadPool(int threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total worker count including the calling thread.
  int threads() const { return static_cast<int>(workers_.size()) + 1; }

  /// Runs fn(i) for every i in [begin, end); blocks until done. Threads
  /// claim `chunk` consecutive indices at a time (chunk >= 1).
  void for_each(std::int64_t begin, std::int64_t end,
                const std::function<void(std::int64_t)>& fn,
                std::int64_t chunk = 1);

  /// Same, but fn also receives the claiming worker's id in [0, threads()):
  /// 0 is the calling thread, 1.. are the pool workers. The id is what lets
  /// a caller attach per-worker state (a Monte-Carlo workspace) that is
  /// reused across every index the worker claims.
  void for_each_indexed(std::int64_t begin, std::int64_t end,
                        const std::function<void(int, std::int64_t)>& fn,
                        std::int64_t chunk = 1);

 private:
  void worker_loop(int worker);
  void work(int worker);  ///< claim and run chunks of the current job

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  std::uint64_t generation_ = 0;  ///< bumped per job; wakes the workers
  int busy_ = 0;                  ///< workers still on the current job
  bool stop_ = false;

  // Current job (valid while busy_ > 0).
  std::atomic<std::int64_t> next_{0};
  std::int64_t end_ = 0;
  std::int64_t chunk_ = 1;
  const std::function<void(int, std::int64_t)>* fn_ = nullptr;
  /// Span id the dispatching thread had open when it launched the current
  /// job; worker spans nest under it (0 = tracing off or no open span).
  std::uint64_t span_parent_ = 0;
};

/// One-shot parallel loop: fn(i) for i in [0, n). Returns the run record.
RunStats parallel_for(std::int64_t n, int threads,
                      const std::function<void(std::int64_t)>& fn,
                      std::int64_t chunk = 1);

/// Worker-indexed one-shot loop: fn(worker, i). Tracks per-worker item
/// counts (RunStats::per_thread_items / utilization); when `count_allocs`,
/// also reports the bytes allocated during the loop via the opt-in
/// alloc_counter hook.
RunStats parallel_for_indexed(std::int64_t n, int threads,
                              const std::function<void(int, std::int64_t)>& fn,
                              std::int64_t chunk = 1,
                              bool count_allocs = false);

/// Workspace-factory loop: each worker lazily builds one workspace with
/// make_ws() (called at most once per worker, concurrently — the factory
/// must be thread-safe) and reuses it for every item it claims:
/// fn(workspace&, i). With a factory that preallocates all scratch, the
/// steady state allocates nothing. Bit-identical to the plain loop as long
/// as fn's RESULT depends only on i (scratch contents may differ).
template <typename MakeWs, typename Fn>
RunStats parallel_for_workspace(std::int64_t n, int threads, MakeWs&& make_ws,
                                Fn&& fn, std::int64_t chunk = 1,
                                bool count_allocs = false) {
  using Ws = decltype(make_ws());
  const int nthreads = clamp_threads_to_items(threads, n);
  std::vector<std::optional<Ws>> ws(static_cast<std::size_t>(nthreads));
  const std::function<void(int, std::int64_t)> wrapped =
      [&](int worker, std::int64_t i) {
        auto& slot = ws[static_cast<std::size_t>(worker)];
        if (!slot) slot.emplace(make_ws());
        fn(*slot, i);
      };
  return parallel_for_indexed(n, nthreads, wrapped, chunk, count_allocs);
}

/// Block-batched one-shot loop: splits [0, n) into ceil(n/block)
/// consecutive blocks and runs fn(worker, lo, hi) once per block (all
/// blocks span `block` items except possibly the last). This is the entry
/// point of the chip-per-lane SIMD path: a full block is one vector
/// kernel call, the short tail block falls back to the scalar kernel.
/// RunStats counts items (per_thread_items accumulates hi - lo), not
/// blocks. Bit-identical to the per-item loop as long as fn's effect on
/// item i depends only on i.
RunStats parallel_for_blocks_indexed(
    std::int64_t n, int threads, std::int64_t block,
    const std::function<void(int, std::int64_t, std::int64_t)>& fn,
    bool count_allocs = false);

/// Workspace-factory variant of the block loop (per-worker workspaces as
/// in parallel_for_workspace): fn(workspace&, lo, hi).
template <typename MakeWs, typename Fn>
RunStats parallel_for_workspace_blocks(std::int64_t n, int threads,
                                       std::int64_t block, MakeWs&& make_ws,
                                       Fn&& fn, bool count_allocs = false) {
  using Ws = decltype(make_ws());
  const std::int64_t nblocks = block > 0 ? (n + block - 1) / block : n;
  const int nthreads = clamp_threads_to_items(threads, nblocks);
  std::vector<std::optional<Ws>> ws(static_cast<std::size_t>(nthreads));
  const std::function<void(int, std::int64_t, std::int64_t)> wrapped =
      [&](int worker, std::int64_t lo, std::int64_t hi) {
        auto& slot = ws[static_cast<std::size_t>(worker)];
        if (!slot) slot.emplace(make_ws());
        fn(*slot, lo, hi);
      };
  return parallel_for_blocks_indexed(n, nthreads, block, wrapped,
                                     count_allocs);
}

/// Parallel map into a pre-sized vector: out[i] = fn(i). The output order
/// is by index, so the result is thread-count independent for pure fn.
template <typename F>
auto parallel_map(std::int64_t n, int threads, F&& fn,
                  RunStats* stats = nullptr, std::int64_t chunk = 1)
    -> std::vector<decltype(fn(std::int64_t{}))> {
  using T = decltype(fn(std::int64_t{}));
  std::vector<T> out(static_cast<std::size_t>(n));
  const RunStats rs = parallel_for(
      n, threads,
      [&](std::int64_t i) { out[static_cast<std::size_t>(i)] = fn(i); },
      chunk);
  if (stats) *stats = rs;
  return out;
}

/// Wilson score interval half-width for `pass` successes in `n` trials at
/// confidence z (default two-sided 95 %). Well-behaved at yield 0/1 where
/// the naive binomial half-width collapses to zero.
double wilson_half_width(std::int64_t pass, std::int64_t n,
                         double z = 1.959963984540054);

/// Adaptive early-stopping controls. The CI is checked only at batch
/// boundaries, and the batch size is independent of the thread count, so
/// the stopping point — and therefore the estimate — is bit-identical for
/// any number of threads.
struct EarlyStopOptions {
  std::int64_t max_items = 10000;  ///< hard cap on items evaluated
  std::int64_t min_items = 128;    ///< never stop before this many
  std::int64_t batch = 128;        ///< CI checked every `batch` items
  /// Stop once the Wilson 95 % half-width <= this; 0 disables early
  /// stopping (the run then always evaluates max_items).
  double ci_half_width = 0.0;
};

/// Result of an adaptive pass/fail (yield) estimation run.
struct YieldRun {
  std::int64_t evaluated = 0;  ///< items actually evaluated (<= max_items)
  std::int64_t passed = 0;
  double yield = 0.0;  ///< passed / evaluated
  double ci95 = 0.0;   ///< Wilson 95 % half-width at the stopping point
  RunStats stats;
};

/// Evaluates item_passes(i) for i = 0, 1, ... until the CI criterion is met
/// or max_items is reached. Items are drawn in deterministic batches; each
/// batch runs on the pool. item_passes must be pure in i.
YieldRun adaptive_yield_run(const EarlyStopOptions& opts, int threads,
                            const std::function<bool(std::int64_t)>& item_passes);

/// Worker-indexed adaptive run: item_passes(worker, i). Same stopping
/// behavior; additionally tracks per-worker counts and optional allocation
/// counters in the returned stats.
YieldRun adaptive_yield_run_indexed(
    const EarlyStopOptions& opts, int threads,
    const std::function<bool(int, std::int64_t)>& item_passes,
    bool count_allocs = false);

/// Block-batched adaptive run: each CI wave is split into consecutive
/// blocks of up to `block` items and block_passes(worker, lo, hi) returns
/// how many of the items in [lo, hi) passed. Wave boundaries are the same
/// deterministic multiples of opts.batch as the per-item adaptive run, so
/// for a pure per-item pass predicate the stopping point — and the
/// estimate — is bit-identical to adaptive_yield_run_indexed for any
/// thread count. Blocks never straddle a wave boundary (a wave's last
/// block may be short), so the SIMD path sees at most one short block per
/// wave.
YieldRun adaptive_yield_run_blocks_indexed(
    const EarlyStopOptions& opts, int threads, std::int64_t block,
    const std::function<std::int64_t(int, std::int64_t, std::int64_t)>&
        block_passes,
    bool count_allocs = false);

/// Workspace-factory variant of the block-batched adaptive run.
template <typename MakeWs, typename Fn>
YieldRun adaptive_yield_run_workspace_blocks(const EarlyStopOptions& opts,
                                             int threads, std::int64_t block,
                                             MakeWs&& make_ws, Fn&& fn,
                                             bool count_allocs = false) {
  using Ws = decltype(make_ws());
  const std::int64_t nblocks =
      block > 0 ? (opts.max_items + block - 1) / block : opts.max_items;
  const int nthreads = clamp_threads_to_items(threads, nblocks);
  std::vector<std::optional<Ws>> ws(static_cast<std::size_t>(nthreads));
  const std::function<std::int64_t(int, std::int64_t, std::int64_t)> wrapped =
      [&](int worker, std::int64_t lo, std::int64_t hi) {
        auto& slot = ws[static_cast<std::size_t>(worker)];
        if (!slot) slot.emplace(make_ws());
        return fn(*slot, lo, hi);
      };
  return adaptive_yield_run_blocks_indexed(opts, nthreads, block, wrapped,
                                           count_allocs);
}

/// Workspace-factory adaptive run: per-worker workspaces as in
/// parallel_for_workspace, with the adaptive stopping rule. The workspace
/// persists across batches, so the steady state stays allocation-free.
template <typename MakeWs, typename Fn>
YieldRun adaptive_yield_run_workspace(const EarlyStopOptions& opts,
                                      int threads, MakeWs&& make_ws, Fn&& fn,
                                      bool count_allocs = false) {
  using Ws = decltype(make_ws());
  const int nthreads = clamp_threads_to_items(threads, opts.max_items);
  std::vector<std::optional<Ws>> ws(static_cast<std::size_t>(nthreads));
  const std::function<bool(int, std::int64_t)> wrapped =
      [&](int worker, std::int64_t i) {
        auto& slot = ws[static_cast<std::size_t>(worker)];
        if (!slot) slot.emplace(make_ws());
        return fn(*slot, i);
      };
  return adaptive_yield_run_indexed(opts, nthreads, wrapped, count_allocs);
}

}  // namespace csdac::mathx
