#include "mathx/simd.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace csdac::mathx {

namespace {

// Cached dispatch choice, encoded as int(backend) + 1 (0 = not resolved).
std::atomic<int> g_backend{0};

SimdBackend detect_impl() {
#if (defined(__x86_64__) || defined(__i386__)) && defined(__GNUC__)
  if (__builtin_cpu_supports("avx2")) return SimdBackend::kAvx2;
  if (__builtin_cpu_supports("sse2")) return SimdBackend::kSse2;
  return SimdBackend::kScalar;
#else
  return SimdBackend::kScalar;
#endif
}

/// CSDAC_SIMD parse: scalar|sse2|avx2|auto (unset/empty/auto -> detection;
/// unrecognized values warn and fall back to detection).
SimdBackend resolve_backend() {
  const SimdBackend detected = detect_impl();
  const char* env = std::getenv("CSDAC_SIMD");
  if (env == nullptr || env[0] == '\0' || std::strcmp(env, "auto") == 0) {
    return detected;
  }
  SimdBackend want;
  if (std::strcmp(env, "scalar") == 0) {
    want = SimdBackend::kScalar;
  } else if (std::strcmp(env, "sse2") == 0) {
    want = SimdBackend::kSse2;
  } else if (std::strcmp(env, "avx2") == 0) {
    want = SimdBackend::kAvx2;
  } else {
    std::fprintf(stderr,
                 "csdac: unrecognized CSDAC_SIMD=%s (want scalar|sse2|avx2|"
                 "auto); using %s\n",
                 env, simd_backend_name(detected));
    return detected;
  }
  if (want > detected) {
    std::fprintf(stderr,
                 "csdac: CSDAC_SIMD=%s not supported by this CPU; using %s\n",
                 env, simd_backend_name(detected));
    return detected;
  }
  return want;
}

}  // namespace

const char* simd_backend_name(SimdBackend backend) {
  switch (backend) {
    case SimdBackend::kScalar:
      return "scalar";
    case SimdBackend::kSse2:
      return "sse2";
    case SimdBackend::kAvx2:
      return "avx2";
  }
  return "scalar";
}

int simd_lane_width(SimdBackend backend) {
  switch (backend) {
    case SimdBackend::kScalar:
      return 1;
    case SimdBackend::kSse2:
      return 2;
    case SimdBackend::kAvx2:
      return 4;
  }
  return 1;
}

SimdBackend simd_detect() {
  static const SimdBackend detected = detect_impl();
  return detected;
}

SimdBackend simd_backend() {
  int cached = g_backend.load(std::memory_order_acquire);
  if (cached == 0) {
    const SimdBackend resolved = resolve_backend();
    cached = static_cast<int>(resolved) + 1;
    int expected = 0;
    // First resolver wins; a concurrent loser adopts the winner's choice
    // (both computed the same value anyway — resolve_backend is pure given
    // a fixed environment).
    if (!g_backend.compare_exchange_strong(expected, cached,
                                           std::memory_order_acq_rel)) {
      cached = expected;
    }
  }
  return static_cast<SimdBackend>(cached - 1);
}

SimdBackend simd_force_backend(SimdBackend backend) {
  if (backend > simd_detect()) backend = simd_detect();
  g_backend.store(static_cast<int>(backend) + 1, std::memory_order_release);
  return backend;
}

}  // namespace csdac::mathx
