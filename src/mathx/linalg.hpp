// Dense linear algebra used by the MNA circuit solver and the least-squares
// fitting routines. Sized for circuit matrices (tens to a few hundred
// unknowns): LU with partial pivoting, no blocking.
#pragma once

#include <complex>
#include <cstddef>
#include <stdexcept>
#include <vector>

namespace csdac::mathx {

/// Row-major dense matrix over T (double or std::complex<double>).
template <typename T>
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, T init = T{})
      : rows_(rows), cols_(cols), data_(rows * cols, init) {}

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  T& operator()(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  const T& operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  /// Sets every entry to zero; keeps dimensions.
  void set_zero() { data_.assign(data_.size(), T{}); }

  std::vector<T>& data() { return data_; }
  const std::vector<T>& data() const { return data_; }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<T> data_;
};

using MatrixD = Matrix<double>;
using MatrixC = Matrix<std::complex<double>>;

/// Thrown when LU factorization meets a (numerically) singular matrix.
/// pivot_row() is the elimination step (= unknown index) with no usable
/// pivot; callers that know what the unknowns mean (the MNA solver) may
/// rethrow with a message naming the offending node or branch.
class SingularMatrixError : public std::runtime_error {
 public:
  explicit SingularMatrixError(std::size_t pivot_row)
      : std::runtime_error("singular matrix at pivot row " +
                           std::to_string(pivot_row)),
        pivot_row_(pivot_row) {}
  SingularMatrixError(std::size_t pivot_row, const std::string& message)
      : std::runtime_error(message), pivot_row_(pivot_row) {}
  std::size_t pivot_row() const { return pivot_row_; }

 private:
  std::size_t pivot_row_;
};

/// In-place LU factorization with partial pivoting.
/// After factorize(), solve() may be called repeatedly with new RHS vectors.
template <typename T>
class LuSolver {
 public:
  /// Factorizes a copy of `a` (square). Throws SingularMatrixError.
  void factorize(const Matrix<T>& a);

  /// Solves A x = b using the stored factors; b.size() == n.
  std::vector<T> solve(const std::vector<T>& b) const;

  /// Convenience: factorize + solve in one call.
  static std::vector<T> solve_once(const Matrix<T>& a,
                                   const std::vector<T>& b) {
    LuSolver s;
    s.factorize(a);
    return s.solve(b);
  }

  std::size_t size() const { return n_; }

 private:
  std::size_t n_ = 0;
  Matrix<T> lu_;
  std::vector<std::size_t> perm_;
};

extern template class LuSolver<double>;
extern template class LuSolver<std::complex<double>>;

}  // namespace csdac::mathx
