// Deterministic, platform-independent random number generation for
// Monte-Carlo mismatch analysis: xoshiro256++ seeded through SplitMix64,
// with polar-method Gaussian draws (std::normal_distribution is not
// reproducible across standard library implementations).
#pragma once

#include <cstdint>

namespace csdac::mathx {

/// xoshiro256++ PRNG (Blackman & Vigna). Satisfies UniformRandomBitGenerator.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

  /// Re-seeds in place (same state as constructing with `seed`). Lets a
  /// long-lived generator — e.g. one living in a per-thread Monte-Carlo
  /// workspace — be re-pointed at a new stream without a new object.
  void seed(std::uint64_t seed);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ull; }

  result_type operator()();

  /// Jump ahead by 2^128 draws: gives independent parallel streams.
  void jump();

 private:
  std::uint64_t s_[4];
};

/// Uniform double in [0, 1) with 53-bit resolution.
double uniform01(Xoshiro256& rng);

/// Uniform double in [lo, hi).
double uniform(Xoshiro256& rng, double lo, double hi);

/// Standard normal draw (Marsaglia polar method; stateless wrt. caching so
/// every call consumes a deterministic number of raw draws).
double normal(Xoshiro256& rng);

/// Normal draw with given mean and standard deviation.
double normal(Xoshiro256& rng, double mean, double sigma);

/// Uniform integer in [0, n).
std::uint64_t uniform_index(Xoshiro256& rng, std::uint64_t n);

/// Independent, reproducible substream for item `index` of a run seeded
/// with `seed`: the index is folded into the seed through the golden-ratio
/// multiplier the SplitMix64 seeding itself uses. This is THE per-item
/// stream derivation of the parallel Monte-Carlo engine — every consumer
/// (per-chip mismatch draws, annealing restarts, ...) uses it so results
/// are bit-identical for any thread count.
Xoshiro256 stream_rng(std::uint64_t seed, std::uint64_t index);

/// In-place stream_rng: re-seeds `rng` to the (seed, index) substream.
/// Bit-identical to `rng = stream_rng(seed, index)`; the form the
/// allocation-free workspace kernels use to reuse one generator per thread.
void stream_rng_into(Xoshiro256& rng, std::uint64_t seed,
                     std::uint64_t index);

namespace detail {

/// The SplitMix64 step Xoshiro256::seed uses to expand a 64-bit seed into
/// the four state words. Exposed so the lane-parallel Xoshiro256xN (see
/// simd.hpp) can seed each lane with the exact same expansion.
std::uint64_t splitmix64(std::uint64_t& state);

/// The (seed, index) -> substream-seed fold of stream_rng, shared with the
/// per-lane seeding of Xoshiro256xN. Out-of-line (like splitmix64) so the
/// per-ISA kernel translation units never emit their own copy.
std::uint64_t stream_seed(std::uint64_t seed, std::uint64_t index);

}  // namespace detail

}  // namespace csdac::mathx
