// Content hashing and canonical byte serialization — the foundation of the
// runtime's persistent result cache. A job's inputs are serialized into a
// canonical little-endian byte stream (ByteWriter), hashed with FNV-1a into
// a 128-bit key (two independent 64-bit lanes), and the same stream format
// round-trips cached results back from disk (ByteReader, bounds-checked).
// Everything here is platform-independent: fixed-width fields, explicit
// byte order, doubles transported as their IEEE-754 bit patterns.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

namespace csdac::mathx {

/// 64-bit FNV-1a. `basis` selects the lane; the default is the standard
/// offset basis.
inline constexpr std::uint64_t kFnvOffsetBasis = 0xcbf29ce484222325ull;
inline constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

inline std::uint64_t fnv1a64(const void* data, std::size_t size,
                             std::uint64_t basis = kFnvOffsetBasis) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = basis;
  for (std::size_t i = 0; i < size; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

inline std::uint64_t fnv1a64(std::string_view s,
                             std::uint64_t basis = kFnvOffsetBasis) {
  return fnv1a64(s.data(), s.size(), basis);
}

/// 128-bit content key: two FNV-1a lanes over the same bytes, the second
/// seeded with a decorrelated basis and finalized through an avalanche mix
/// (splitmix64's finalizer) so the lanes do not fail together on the
/// low-entropy structured inputs cache keys are made of.
struct HashKey128 {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  friend bool operator==(const HashKey128& a, const HashKey128& b) {
    return a.hi == b.hi && a.lo == b.lo;
  }
  friend bool operator!=(const HashKey128& a, const HashKey128& b) {
    return !(a == b);
  }
  friend bool operator<(const HashKey128& a, const HashKey128& b) {
    return a.hi != b.hi ? a.hi < b.hi : a.lo < b.lo;
  }

  /// 32 lowercase hex digits (hi then lo) — the on-disk cache filename.
  std::string hex() const;
};

HashKey128 hash128(const void* data, std::size_t size);

/// Canonical serializer: little-endian fixed-width writes regardless of the
/// host. Used both to build cache keys (hash the buffer) and to encode
/// cached results (persist the buffer).
class ByteWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u32(std::uint32_t v) { put_le(v); }
  void u64(std::uint64_t v) { put_le(v); }
  void i32(std::int32_t v) { put_le(static_cast<std::uint32_t>(v)); }
  void i64(std::int64_t v) { put_le(static_cast<std::uint64_t>(v)); }
  void f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    put_le(bits);
  }
  void boolean(bool v) { u8(v ? 1 : 0); }
  /// Length-prefixed string (u32 length + raw bytes).
  void str(std::string_view s) {
    u32(static_cast<std::uint32_t>(s.size()));
    buf_.insert(buf_.end(), s.begin(), s.end());
  }
  /// Length-prefixed vector of doubles.
  void f64_vec(const std::vector<double>& v) {
    u32(static_cast<std::uint32_t>(v.size()));
    for (double x : v) f64(x);
  }
  void bytes(const void* data, std::size_t size) {
    const auto* p = static_cast<const unsigned char*>(data);
    buf_.insert(buf_.end(), p, p + size);
  }

  const std::vector<unsigned char>& data() const { return buf_; }
  std::size_t size() const { return buf_.size(); }
  HashKey128 hash() const { return hash128(buf_.data(), buf_.size()); }

 private:
  template <typename T>
  void put_le(T v) {
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      buf_.push_back(static_cast<unsigned char>(v >> (8 * i)));
    }
  }

  std::vector<unsigned char> buf_;
};

/// Bounds-checked reader for the ByteWriter format. Any out-of-bounds read
/// latches ok() = false and returns zeros; callers check ok() once at the
/// end instead of wrapping every get — corrupt cache entries must never
/// crash, they just miss.
class ByteReader {
 public:
  ByteReader(const void* data, std::size_t size)
      : p_(static_cast<const unsigned char*>(data)), size_(size) {}
  explicit ByteReader(const std::vector<unsigned char>& buf)
      : ByteReader(buf.data(), buf.size()) {}

  std::uint8_t u8() { return take(1) ? p_[pos_ - 1] : 0; }
  std::uint32_t u32() { return static_cast<std::uint32_t>(get_le(4)); }
  std::uint64_t u64() { return get_le(8); }
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  double f64() {
    const std::uint64_t bits = get_le(8);
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  bool boolean() { return u8() != 0; }
  std::string str() {
    const std::uint32_t n = u32();
    if (!take(n)) return {};
    return std::string(reinterpret_cast<const char*>(p_ + pos_ - n), n);
  }
  std::vector<double> f64_vec() {
    const std::uint32_t n = u32();
    std::vector<double> v;
    if (n > remaining() / 8) {  // reject bogus lengths before allocating
      ok_ = false;
      return v;
    }
    v.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) v.push_back(f64());
    return v;
  }

  bool ok() const { return ok_; }
  std::size_t remaining() const { return size_ - pos_; }
  /// True when every byte was consumed and no read ran past the end.
  bool done() const { return ok_ && pos_ == size_; }

 private:
  bool take(std::size_t n) {
    if (!ok_ || size_ - pos_ < n) {
      ok_ = false;
      return false;
    }
    pos_ += n;
    return true;
  }
  std::uint64_t get_le(std::size_t n) {
    if (!take(n)) return 0;
    std::uint64_t v = 0;
    for (std::size_t i = 0; i < n; ++i) {
      v |= static_cast<std::uint64_t>(p_[pos_ - n + i]) << (8 * i);
    }
    return v;
  }

  const unsigned char* p_;
  std::size_t size_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace csdac::mathx
