// Opt-in process-wide allocation counting — the hook behind the engine's
// "bytes allocated in steady state" perf counter. Linking csdac_mathx
// replaces global operator new/delete with a pass-through that, only while
// at least one ScopedAllocCounting is alive, adds every allocation to a
// global counter. When idle the hook costs one relaxed atomic load per
// allocation. Frees are not tracked: the intended use is measuring the
// allocation RATE of a region (e.g. bytes per Monte-Carlo chip), where the
// workspace path must read ~0 and the legacy allocating path does not.
#pragma once

#include <cstdint>

namespace csdac::mathx {

/// Totals recorded by the counting hook.
struct AllocCounts {
  std::int64_t bytes = 0;  ///< bytes requested from operator new
  std::int64_t count = 0;  ///< number of allocations
};

/// RAII opt-in: counting is active while at least one instance is alive
/// (scopes nest). Counts allocations from ALL threads of the process.
class ScopedAllocCounting {
 public:
  ScopedAllocCounting();
  ~ScopedAllocCounting();
  ScopedAllocCounting(const ScopedAllocCounting&) = delete;
  ScopedAllocCounting& operator=(const ScopedAllocCounting&) = delete;

  /// Allocations counted since this scope was opened.
  AllocCounts so_far() const;

 private:
  AllocCounts start_;
};

/// Grand totals counted so far (monotone; grows only while a scope is open).
AllocCounts alloc_counted_total();

/// True while at least one ScopedAllocCounting is alive.
bool alloc_counting_active();

}  // namespace csdac::mathx
