#include "mathx/alloc_counter.hpp"

#include <atomic>
#include <cstdlib>
#include <new>

namespace csdac::mathx {
namespace {

// Namespace-scope atomics are zero-initialized before any dynamic
// initialization, so the replaced operator new is safe to call from static
// initializers of other translation units.
std::atomic<int> g_active{0};
std::atomic<std::int64_t> g_bytes{0};
std::atomic<std::int64_t> g_count{0};

inline void record(std::size_t size) {
  if (g_active.load(std::memory_order_relaxed) > 0) {
    g_bytes.fetch_add(static_cast<std::int64_t>(size),
                      std::memory_order_relaxed);
    g_count.fetch_add(1, std::memory_order_relaxed);
  }
}

void* checked_malloc(std::size_t size) {
  void* p = std::malloc(size ? size : 1);
  if (!p) throw std::bad_alloc();
  record(size);
  return p;
}

void* checked_aligned(std::size_t size, std::size_t align) {
  // posix_memalign requires align to be a power-of-two multiple of
  // sizeof(void*); extended-alignment requests always satisfy this.
  void* p = nullptr;
  if (align < sizeof(void*)) align = sizeof(void*);
  if (posix_memalign(&p, align, size ? size : 1) != 0) throw std::bad_alloc();
  record(size);
  return p;
}

}  // namespace

ScopedAllocCounting::ScopedAllocCounting() {
  g_active.fetch_add(1);
  start_ = alloc_counted_total();
}

ScopedAllocCounting::~ScopedAllocCounting() { g_active.fetch_sub(1); }

AllocCounts ScopedAllocCounting::so_far() const {
  const AllocCounts now = alloc_counted_total();
  return {now.bytes - start_.bytes, now.count - start_.count};
}

AllocCounts alloc_counted_total() {
  return {g_bytes.load(std::memory_order_relaxed),
          g_count.load(std::memory_order_relaxed)};
}

bool alloc_counting_active() {
  return g_active.load(std::memory_order_relaxed) > 0;
}

}  // namespace csdac::mathx

// ---- Global operator new/delete replacements (the counting hook) ----

void* operator new(std::size_t size) { return csdac::mathx::checked_malloc(size); }
void* operator new[](std::size_t size) { return csdac::mathx::checked_malloc(size); }

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  try {
    return csdac::mathx::checked_malloc(size);
  } catch (...) {
    return nullptr;
  }
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return operator new(size, std::nothrow);
}

void* operator new(std::size_t size, std::align_val_t align) {
  return csdac::mathx::checked_aligned(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return csdac::mathx::checked_aligned(size, static_cast<std::size_t>(align));
}
void* operator new(std::size_t size, std::align_val_t align,
                   const std::nothrow_t&) noexcept {
  try {
    return csdac::mathx::checked_aligned(size,
                                         static_cast<std::size_t>(align));
  } catch (...) {
    return nullptr;
  }
}
void* operator new[](std::size_t size, std::align_val_t align,
                     const std::nothrow_t& nt) noexcept {
  return operator new(size, align, nt);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::align_val_t,
                       const std::nothrow_t&) noexcept {
  std::free(p);
}
