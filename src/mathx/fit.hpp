// Least-squares fits and scalar root finding used across the library:
// best-fit-line INL reference, gradient-model identification, and
// self-consistent solution of the statistical saturation condition.
#pragma once

#include <cstddef>
#include <functional>
#include <span>

namespace csdac::mathx {

/// y ~= slope*x + intercept.
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  /// Coefficient of determination R^2 (1 for perfect fit).
  double r2 = 0.0;
};

/// Ordinary least squares line through (x[i], y[i]); requires >= 2 points.
LinearFit fit_line(std::span<const double> x, std::span<const double> y);

/// y ~= a*x^2 + b*x + c.
struct QuadraticFit {
  double a = 0.0;
  double b = 0.0;
  double c = 0.0;
};

/// Least-squares parabola; requires >= 3 points.
QuadraticFit fit_quadratic(std::span<const double> x,
                           std::span<const double> y);

/// Bisection root of f on [lo, hi]; f(lo) and f(hi) must bracket a sign
/// change. Returns the midpoint once |hi-lo| < tol or max_iter is reached.
double bisect(const std::function<double(double)>& f, double lo, double hi,
              double tol = 1e-12, int max_iter = 200);

/// Fixed-point iteration x <- g(x) with relaxation; returns the last iterate.
/// Converged when |x_{k+1}-x_k| < tol. Used for the self-consistent
/// statistical margin of eq. (9) (the margin depends on the sizes, which
/// depend on the margin).
double fixed_point(const std::function<double(double)>& g, double x0,
                   double tol = 1e-10, int max_iter = 200,
                   double relax = 1.0);

}  // namespace csdac::mathx
