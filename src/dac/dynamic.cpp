#include "dac/dynamic.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace csdac::dac {

void DynamicParams::validate() const {
  // isfinite matters: +inf passes every one-sided `> 0` test but produces
  // NaN waveforms downstream, and JSON requests can smuggle it in (1e999
  // parses to +inf).
  if (!std::isfinite(fs) || !(fs > 0.0) || oversample < 2 ||
      !std::isfinite(tau) || !(tau > 0.0) || !std::isfinite(rout_unit) ||
      !(rout_unit > 0.0) || !std::isfinite(binary_skew) ||
      !(binary_skew >= 0.0) || !std::isfinite(jitter_sigma) ||
      !(jitter_sigma >= 0.0) || !std::isfinite(feedthrough_lsb)) {
    throw std::invalid_argument("DynamicParams: bad values");
  }
  if (binary_skew >= 1.0 / fs) {
    throw std::invalid_argument("DynamicParams: skew exceeds the period");
  }
}

DynamicSimulator::DynamicSimulator(SegmentedDac dac, DynamicParams params)
    : dac_(std::move(dac)), params_(params) {
  params_.validate();
}

double DynamicSimulator::v_of_level(double level_lsb) const {
  const auto& spec = dac_.spec();
  const double i = level_lsb * spec.i_lsb();
  const double droop = 1.0 + level_lsb * spec.r_load / params_.rout_unit;
  return i * spec.r_load / droop;
}

double DynamicSimulator::v_lsb() const {
  const double mid = std::ldexp(1.0, dac_.spec().nbits - 1);
  return v_of_level(mid + 0.5) - v_of_level(mid - 0.5);
}

namespace {

/// Piecewise-exponential integrator: a sequence of (event_time, new_target)
/// pairs plus instantaneous kicks, sampled on a uniform grid.
struct Relaxer {
  double v;
  double tau;

  /// Advances the state toward `target` for `dt` seconds.
  void advance(double target, double dt) {
    v = target + (v - target) * std::exp(-dt / tau);
  }
};

}  // namespace

std::vector<double> DynamicSimulator::waveform(const std::vector<int>& codes,
                                               mathx::Xoshiro256* rng) const {
  return waveform_impl(codes, rng, /*differential=*/false);
}

std::vector<double> DynamicSimulator::waveform_differential(
    const std::vector<int>& codes, mathx::Xoshiro256* rng) const {
  return waveform_impl(codes, rng, /*differential=*/true);
}

std::vector<double> DynamicSimulator::waveform_impl(
    const std::vector<int>& codes, mathx::Xoshiro256* rng,
    bool differential) const {
  if (codes.empty()) return {};
  if (params_.jitter_sigma > 0.0 && rng == nullptr) {
    throw std::invalid_argument("waveform: jitter requires an RNG");
  }
  const auto& spec = dac_.spec();
  const double ts = 1.0 / params_.fs;
  const double dt = ts / params_.oversample;
  const double vlsb = v_lsb();
  // Total level across both rails: every source is always steered to one
  // of them.
  const double total = dac_.level((1 << spec.nbits) - 1);

  std::vector<double> out;
  out.reserve(codes.size() * static_cast<std::size_t>(params_.oversample));

  const double lvl0 = dac_.level(codes.front());
  Relaxer p_state{v_of_level(lvl0), params_.tau};
  Relaxer n_state{v_of_level(total - lvl0), params_.tau};
  int prev_code = codes.front();
  double target_p = p_state.v;
  double target_n = n_state.v;

  for (std::size_t k = 0; k < codes.size(); ++k) {
    const int code = codes[k];
    // Edge timing within this period (shared by both rails).
    double t_edge = 0.0;
    if (params_.jitter_sigma > 0.0) {
      t_edge = std::clamp(mathx::normal(*rng, 0.0, params_.jitter_sigma),
                          -0.4 * ts, 0.4 * ts);
    }
    const double t_therm = std::max(t_edge, 0.0);
    const double t_bin = t_therm + params_.binary_skew;

    // Intermediate level while only the thermometer part has switched.
    const int inter_code = (code & ~((1 << spec.binary_bits) - 1)) |
                           (prev_code & ((1 << spec.binary_bits) - 1));
    const double lvl_inter = dac_.level(inter_code);
    const double lvl_final = dac_.level(code);
    const double vp_inter = v_of_level(lvl_inter);
    const double vp_final = v_of_level(lvl_final);
    const double vn_inter = v_of_level(total - lvl_inter);
    const double vn_final = v_of_level(total - lvl_final);

    // Feedthrough kick: common mode on both rails (clock coupling through
    // the switch overlap caps hits out_p and out_n alike).
    const int toggled =
        std::abs(dac_.unary_count(code) - dac_.unary_count(prev_code));
    auto apply_kick = [&] {
      if (params_.feedthrough_lsb > 0.0) {
        const double kick = params_.feedthrough_lsb * vlsb * toggled;
        p_state.v += kick;
        n_state.v += kick;
      }
    };

    bool therm_done = (k == 0);
    bool bin_done = (k == 0);
    if (!therm_done && t_therm <= 0.0) {
      target_p = vp_inter;
      target_n = vn_inter;
      apply_kick();
      therm_done = true;
      if (t_bin <= 0.0) {
        target_p = vp_final;
        target_n = vn_final;
        bin_done = true;
      }
    }
    for (int j = 0; j < params_.oversample; ++j) {
      const double t0 = j * dt;
      const double t1 = t0 + dt;
      double t = t0;
      if (!therm_done && t_therm <= t1) {
        p_state.advance(target_p, t_therm - t);
        n_state.advance(target_n, t_therm - t);
        t = t_therm;
        target_p = vp_inter;
        target_n = vn_inter;
        apply_kick();
        therm_done = true;
      }
      if (therm_done && !bin_done && t_bin <= t1) {
        const double step_dt = std::max(t_bin - t, 0.0);
        p_state.advance(target_p, step_dt);
        n_state.advance(target_n, step_dt);
        t = std::max(t, t_bin);
        target_p = vp_final;
        target_n = vn_final;
        bin_done = true;
      }
      p_state.advance(target_p, t1 - t);
      n_state.advance(target_n, t1 - t);
      out.push_back(differential ? p_state.v - n_state.v : p_state.v);
    }
    target_p = vp_final;
    target_n = vn_final;
    prev_code = code;
  }
  return out;
}

std::vector<double> DynamicSimulator::ideal_waveform(
    const std::vector<int>& codes) const {
  const auto& spec = dac_.spec();
  std::vector<double> out;
  out.reserve(codes.size() * static_cast<std::size_t>(params_.oversample));
  for (int code : codes) {
    const double v = code * spec.i_lsb() * spec.r_load;
    for (int j = 0; j < params_.oversample; ++j) out.push_back(v);
  }
  return out;
}

double DynamicSimulator::glitch_energy(int code_from, int code_to) const {
  const std::vector<int> codes = {code_from, code_from, code_to, code_to};
  const auto v = waveform(codes);
  // Reference: the same transition with pure single-pole settling (no skew,
  // no feedthrough, no droop difference).
  DynamicParams clean = params_;
  clean.binary_skew = 0.0;
  clean.feedthrough_lsb = 0.0;
  DynamicSimulator ref(dac_, clean);
  const auto vr = ref.waveform(codes);
  const double dt = 1.0 / (params_.fs * params_.oversample);
  double energy = 0.0;
  // Integrate over the two periods containing and following the step.
  const std::size_t start = 2 * static_cast<std::size_t>(params_.oversample);
  for (std::size_t i = start; i < v.size(); ++i) {
    energy += std::abs(v[i] - vr[i]) * dt;
  }
  return energy;
}

std::vector<int> sine_codes(const core::DacSpec& spec, int n_samples,
                            int cycles, int margin) {
  if (n_samples < 2 || cycles < 1 || cycles >= n_samples || margin < 0) {
    throw std::invalid_argument("sine_codes: bad arguments");
  }
  const int full = (1 << spec.nbits) - 1;
  const double mid = 0.5 * full;
  const double amp = mid - margin;
  std::vector<int> codes(static_cast<std::size_t>(n_samples));
  for (int i = 0; i < n_samples; ++i) {
    const double ph = 2.0 * std::numbers::pi * cycles * i /
                      static_cast<double>(n_samples);
    const double v = mid + amp * std::sin(ph);
    codes[static_cast<std::size_t>(i)] =
        std::clamp(static_cast<int>(std::lround(v)), 0, full);
  }
  return codes;
}

std::vector<int> two_tone_codes(const core::DacSpec& spec, int n_samples,
                                int cycles1, int cycles2, int margin) {
  if (n_samples < 2 || cycles1 < 1 || cycles2 < 1 || cycles1 == cycles2 ||
      cycles1 >= n_samples || cycles2 >= n_samples || margin < 0) {
    throw std::invalid_argument("two_tone_codes: bad arguments");
  }
  const int full = (1 << spec.nbits) - 1;
  const double mid = 0.5 * full;
  const double amp = 0.5 * (mid - margin);  // each tone just under half scale
  std::vector<int> codes(static_cast<std::size_t>(n_samples));
  for (int i = 0; i < n_samples; ++i) {
    const double ph1 = 2.0 * std::numbers::pi * cycles1 * i /
                       static_cast<double>(n_samples);
    const double ph2 = 2.0 * std::numbers::pi * cycles2 * i /
                       static_cast<double>(n_samples);
    const double v = mid + amp * (std::sin(ph1) + std::sin(ph2));
    codes[static_cast<std::size_t>(i)] =
        std::clamp(static_cast<int>(std::lround(v)), 0, full);
  }
  return codes;
}

}  // namespace csdac::dac
