// The one chip-per-lane kernel implementation, templated over a mathx Ops
// policy (ScalarOps / Sse2Ops / Avx2Ops). Included ONLY by the per-ISA
// translation units (lane_kernel.cpp, lane_kernel_sse2.cpp,
// lane_kernel_avx2.cpp) — the template members are the only symbols those
// TUs emit, and they are unique per Ops, so the -mavx2 TU can never leak
// AVX2 code into a shared (comdat) symbol.
//
// Bit-identity contract: every lane performs, in order, exactly the
// floating-point operations of the scalar chip pipeline —
// draw_source_errors_into (the sigma_unit*sqrt(w) coefficient is one
// rounded product, computed once in scalar and broadcast, exactly as the
// scalar expression associates), transfer_into (same prefix-sum and
// top-set-bit binsum association), analyze_levels_summary (same closed-form
// or iterative x statistics, same accumulation order for sy/sxy, same
// final divisions). IEEE basic operations are correctly rounded in both
// scalar and vector form, so equal inputs in equal order give equal bits.
// min/max lanes can differ from std::min/std::max only in the sign of a
// zero, which none of the downstream arithmetic can observe (abs() feeds
// the INL max; the DNL level steps are never -0.0).
#pragma once

#include <cmath>

#include "dac/lane_kernel.hpp"

namespace csdac::dac {

template <class Ops>
struct LaneKernelImpl {
  using F64 = typename Ops::F64;
  using Mask = typename Ops::Mask;
  static constexpr int L = Ops::kLanes;

  /// draw_source_errors_into, one chip per lane. rng must already be
  /// seeded to the per-lane streams.
  static void draw_block(const LaneView& v, mathx::Xoshiro256xN<Ops>& rng,
                         double sigma_unit) {
    if (!(sigma_unit >= 0.0)) detail::throw_bad_sigma();
    {
      const double uw = v.unary_weight;
      const double cu = sigma_unit * std::sqrt(uw);
      const F64 uwv = Ops::fset1(uw);
      const F64 cuv = Ops::fset1(cu);
      for (int i = 0; i < v.num_unary; ++i) {
        Ops::fstoreu(v.unary + i * L,
                     Ops::fadd(uwv, Ops::fmul(cuv, mathx::normal_xN(rng))));
      }
    }
    for (int k = 0; k < v.binary_bits; ++k) {
      const double w = std::ldexp(1.0, k);
      const double cw = sigma_unit * std::sqrt(w);
      Ops::fstoreu(v.binary + k * L,
                   Ops::fadd(Ops::fset1(w),
                             Ops::fmul(Ops::fset1(cw), mathx::normal_xN(rng))));
    }
  }

  /// transfer_into, one chip per lane, from the given unary weights
  /// (v.unary pre-calibration, v.trimmed_unary post).
  static void transfer_block(const LaneView& v, const double* unary_src) {
    F64 acc = Ops::fset1(0.0);
    Ops::fstoreu(v.unary_prefix, acc);
    for (int i = 0; i < v.num_unary; ++i) {
      acc = Ops::fadd(acc, Ops::floadu(unary_src + i * L));
      Ops::fstoreu(v.unary_prefix + (i + 1) * L, acc);
    }
    Ops::fstoreu(v.binsum, Ops::fset1(0.0));
    for (int j = 1; j < (1 << v.binary_bits); ++j) {
      int k = 0;
      while ((j >> (k + 1)) != 0) ++k;  // index of the top set bit
      Ops::fstoreu(v.binsum + j * L,
                   Ops::fadd(Ops::floadu(v.binsum + (j ^ (1 << k)) * L),
                             Ops::floadu(v.binary + k * L)));
    }
    const int mask = (1 << v.binary_bits) - 1;
    for (int c = 0; c < v.n_codes; ++c) {
      Ops::fstoreu(
          v.levels + c * L,
          Ops::fadd(Ops::floadu(v.unary_prefix + (c >> v.binary_bits) * L),
                    Ops::floadu(v.binsum + (c & mask) * L)));
    }
  }

  /// analyze_levels_summary, one chip per lane, over v.levels.
  static void analyze_block(const LaneView& v, InlReference ref,
                            StaticSummary* out) {
    const int n = v.n_codes;
    const double* levels = v.levels;
    F64 gain, offset;
    if (ref == InlReference::kEndpoint) {
      gain = Ops::fdiv(Ops::fsub(Ops::floadu(levels + (n - 1) * L),
                                 Ops::floadu(levels)),
                       Ops::fset1(static_cast<double>(n - 1)));
      offset = Ops::floadu(levels);
    } else {
      // The x statistics are lane-independent; compute them in scalar with
      // analyze_levels_summary's exact branches.
      const auto nn = static_cast<double>(n);
      double sx, sxx;
      if (static_cast<std::size_t>(n) <= (std::size_t{1} << 17)) {
        const auto m = static_cast<std::int64_t>(n) - 1;
        sx = static_cast<double>(m * (m + 1) / 2);
        sxx = static_cast<double>(m * (m + 1) * (2 * m + 1) / 6);
      } else {
        sx = 0.0;
        sxx = 0.0;
        for (int i = 0; i < n; ++i) {
          const auto x = static_cast<double>(i);
          sx += x;
          sxx += x * x;
        }
      }
      F64 sy = Ops::fset1(0.0), sxy = Ops::fset1(0.0);
      for (int i = 0; i < n; ++i) {
        const F64 li = Ops::floadu(levels + i * L);
        sy = Ops::fadd(sy, li);
        sxy = Ops::fadd(
            sxy, Ops::fmul(Ops::fset1(static_cast<double>(i)), li));
      }
      const double denom = nn * sxx - sx * sx;
      if (denom == 0.0) detail::throw_degenerate();
      gain = Ops::fdiv(Ops::fsub(Ops::fmul(Ops::fset1(nn), sxy),
                                 Ops::fmul(Ops::fset1(sx), sy)),
                       Ops::fset1(denom));
      offset = Ops::fdiv(Ops::fsub(sy, Ops::fmul(gain, Ops::fset1(sx))),
                         Ops::fset1(nn));
    }
    // A flat lane would divide by zero below; the scalar kernel throws for
    // such a chip, so the whole block throws (MC mismatch draws never
    // produce an exactly-zero gain in practice).
    if (Ops::movemask(Ops::cmp_eq(gain, Ops::fset1(0.0))) != 0) {
      detail::throw_flat();
    }

    F64 rmax = Ops::fabs(Ops::fsub(Ops::floadu(levels), offset));
    F64 dmin = Ops::fsub(Ops::floadu(levels + L), Ops::floadu(levels));
    F64 dmax = dmin;
    for (int i = 1; i < n; ++i) {
      const F64 li = Ops::floadu(levels + i * L);
      const F64 resid = Ops::fsub(
          li, Ops::fadd(offset,
                        Ops::fmul(gain, Ops::fset1(static_cast<double>(i)))));
      rmax = Ops::fmax(rmax, Ops::fabs(resid));
      const F64 d = Ops::fsub(li, Ops::floadu(levels + (i - 1) * L));
      dmin = Ops::fmin(dmin, d);
      dmax = Ops::fmax(dmax, d);
    }
    const F64 one = Ops::fset1(1.0);
    const F64 inl = Ops::fdiv(rmax, Ops::fabs(gain));
    const F64 dlo = Ops::fsub(Ops::fdiv(dmin, gain), one);
    const F64 dhi = Ops::fsub(Ops::fdiv(dmax, gain), one);
    const F64 dnl = Ops::fmax(Ops::fabs(dlo), Ops::fabs(dhi));
    double inl_a[L], dnl_a[L];
    Ops::fstoreu(inl_a, inl);
    Ops::fstoreu(dnl_a, dnl);
    for (int l = 0; l < L; ++l) {
      out[l].inl_max = inl_a[l];
      out[l].dnl_max = dnl_a[l];
    }
  }

  static void mc_block(ChipWorkspaceXN& ws, double sigma_unit,
                       std::uint64_t seed, std::int64_t chip0,
                       InlReference ref, StaticSummary* out) {
    detail::count_chip_evals(L);
    const LaneView v = detail::lane_view(ws);
    mathx::Xoshiro256xN<Ops> rng;
    rng.seed_streams(seed, static_cast<std::uint64_t>(chip0), 1);
    draw_block(v, rng, sigma_unit);
    transfer_block(v, v.unary);
    analyze_block(v, ref, out);
  }

  static void cal_block(ChipWorkspaceXN& ws, double sigma_unit,
                        const CalibrationOptions& opts, std::uint64_t seed,
                        std::int64_t chip0, double inl_limit,
                        bool* pass_before, bool* pass_after) {
    detail::count_chip_evals(L);
    const LaneView v = detail::lane_view(ws);
    mathx::Xoshiro256xN<Ops> rng;
    rng.seed_streams(seed, 2 * static_cast<std::uint64_t>(chip0), 2);
    draw_block(v, rng, sigma_unit);
    transfer_block(v, v.unary);
    StaticSummary s[L];
    analyze_block(v, InlReference::kBestFit, s);
    for (int l = 0; l < L; ++l) pass_before[l] = s[l].inl_max < inl_limit;
    detail::cal_trim_lanes(ws, opts, seed, chip0);
    transfer_block(v, v.trimmed_unary);
    analyze_block(v, InlReference::kBestFit, s);
    for (int l = 0; l < L; ++l) pass_after[l] = s[l].inl_max < inl_limit;
  }

  static void draw_normals(std::uint64_t seed, std::uint64_t index0,
                           std::uint64_t stride, int count, double* out) {
    mathx::Xoshiro256xN<Ops> rng;
    rng.seed_streams(seed, index0, stride);
    for (int i = 0; i < count; ++i) {
      Ops::fstoreu(out + i * L, mathx::normal_xN(rng));
    }
  }

  static void draw_bits(std::uint64_t seed, std::uint64_t index0,
                        std::uint64_t stride, int count, std::uint64_t* out) {
    mathx::Xoshiro256xN<Ops> rng;
    rng.seed_streams(seed, index0, stride);
    for (int i = 0; i < count; ++i) Ops::ustoreu(out + i * L, rng.next());
  }

  static LaneKernel kernel(mathx::SimdBackend backend) {
    LaneKernel k;
    k.backend = backend;
    k.lanes = L;
    k.mc_block = &mc_block;
    k.cal_block = &cal_block;
    k.draw_normals = &draw_normals;
    k.draw_bits = &draw_bits;
    return k;
  }
};

}  // namespace csdac::dac
