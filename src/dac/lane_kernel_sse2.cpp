// SSE2 instantiation of the chip-per-lane kernel (2 chips per block).
// Compiled with the baseline flags: SSE2 is part of the x86-64 ABI, so no
// special options and no linker hazard. On non-x86 targets the kernel is
// compiled out and the dispatch falls through to scalar.
#include "dac/lane_kernel.hpp"

#if defined(__SSE2__)

#include "dac/lane_kernel_impl.hpp"
#include "mathx/simd_sse2.hpp"

namespace csdac::dac::detail {

const LaneKernel* lane_kernel_sse2() {
  static const LaneKernel k =
      LaneKernelImpl<mathx::Sse2Ops>::kernel(mathx::SimdBackend::kSse2);
  return &k;
}

}  // namespace csdac::dac::detail

#else

namespace csdac::dac::detail {

const LaneKernel* lane_kernel_sse2() { return nullptr; }

}  // namespace csdac::dac::detail

#endif
