#include "dac/spectrum.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace csdac::dac {

void SpectrumOptions::validate() const {
  if (guard_bins < 0 || guard_bins > (1 << 20)) {
    throw std::invalid_argument("SpectrumOptions: bad guard_bins");
  }
  if (dc_bins < 0 || dc_bins > (1 << 20)) {
    throw std::invalid_argument("SpectrumOptions: bad dc_bins");
  }
  if (harmonics < 1 || harmonics > 1000) {
    throw std::invalid_argument("SpectrumOptions: harmonics must be in [1, 1000]");
  }
  if (!std::isfinite(max_freq) || max_freq < 0.0) {
    throw std::invalid_argument(
        "SpectrumOptions: max_freq must be finite and >= 0");
  }
}

SpectrumResult analyze_spectrum(const std::vector<double>& samples, double fs,
                                const SpectrumOptions& opts,
                                std::size_t fund_bin_hint) {
  opts.validate();
  if (samples.size() < 16) {
    throw std::invalid_argument("analyze_spectrum: record too short");
  }
  if (!std::isfinite(fs) || !(fs > 0.0)) {
    throw std::invalid_argument("analyze_spectrum: fs <= 0");
  }

  const std::size_t n = samples.size();
  // Remove the WINDOW-WEIGHTED mean (zeroes bin 0 exactly; the plain mean
  // leaves a large DC residual under non-rectangular windows) and window.
  const auto win = mathx::make_window(opts.window, n);
  double wsum = 0.0, vwsum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    wsum += win[i];
    vwsum += samples[i] * win[i];
  }
  const double mean = wsum > 0.0 ? vwsum / wsum : 0.0;
  std::vector<mathx::Cplx> x(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = mathx::Cplx((samples[i] - mean) * win[i], 0.0);
  }
  const auto spec = mathx::dft(x);

  const std::size_t half = n / 2 + 1;
  std::vector<double> power(half);
  for (std::size_t k = 0; k < half; ++k) {
    const double scale = (k == 0 || 2 * k == n) ? 1.0 : 2.0;
    const double mag = std::abs(spec[k]) / static_cast<double>(n);
    power[k] = scale * mag * mag;
  }

  // Locate the fundamental.
  std::size_t fund = fund_bin_hint;
  if (fund == 0) {
    double best = -1.0;
    for (std::size_t k = static_cast<std::size_t>(opts.dc_bins) + 1;
         k < half; ++k) {
      if (power[k] > best) {
        best = power[k];
        fund = k;
      }
    }
  }
  if (fund == 0 || fund >= half) {
    throw std::invalid_argument("analyze_spectrum: no fundamental found");
  }
  if (fund <= static_cast<std::size_t>(opts.dc_bins)) {
    throw std::invalid_argument(
        "analyze_spectrum: fundamental inside the DC exclusion");
  }
  std::size_t search_limit = half;
  if (opts.max_freq > 0.0) {
    search_limit = std::min(
        half, static_cast<std::size_t>(opts.max_freq / fs *
                                       static_cast<double>(n)) + 1);
  }
  if (fund >= search_limit) {
    throw std::invalid_argument(
        "analyze_spectrum: max_freq excludes the fundamental");
  }

  // Tone power including guard bins.  The guard band must not reach into
  // the DC exclusion: a wide guard around a near-DC fundamental would
  // otherwise count DC leakage as signal power.
  const std::size_t dc_lo = static_cast<std::size_t>(opts.dc_bins) + 1;
  auto tone_power = [&](std::size_t center) {
    double p = 0.0;
    std::size_t lo =
        center > static_cast<std::size_t>(opts.guard_bins)
            ? center - static_cast<std::size_t>(opts.guard_bins)
            : 0;
    lo = std::max(lo, dc_lo);
    const std::size_t hi = std::min(
        half - 1, center + static_cast<std::size_t>(opts.guard_bins));
    for (std::size_t k = lo; k <= hi; ++k) p += power[k];
    return p;
  };
  const double p_fund = tone_power(fund);
  if (p_fund <= 0.0) {
    throw std::invalid_argument("analyze_spectrum: zero fundamental power");
  }

  SpectrumResult r;
  r.fund_bin = fund;
  r.freq_hz.resize(half);
  r.mag_db.resize(half);
  constexpr double kFloor = 1e-30;
  for (std::size_t k = 0; k < half; ++k) {
    r.freq_hz[k] = fs * static_cast<double>(k) / static_cast<double>(n);
    r.mag_db[k] = 10.0 * std::log10(std::max(power[k] / p_fund, kFloor));
  }

  // Spur search and total noise+distortion, excluding DC and the
  // fundamental's guard band, up to the in-band limit.
  auto in_fund = [&](std::size_t k) {
    return k + static_cast<std::size_t>(opts.guard_bins) >= fund &&
           k <= fund + static_cast<std::size_t>(opts.guard_bins);
  };
  // Spur integration must not swallow the fundamental's own skirt: bins
  // inside the fundamental guard band are excluded from candidate windows,
  // and the window is clamped away from the DC exclusion like tone_power.
  auto spur_power = [&](std::size_t center) {
    double p = 0.0;
    std::size_t lo =
        center > static_cast<std::size_t>(opts.guard_bins)
            ? center - static_cast<std::size_t>(opts.guard_bins)
            : 0;
    lo = std::max(lo, dc_lo);
    const std::size_t hi = std::min(
        half - 1, center + static_cast<std::size_t>(opts.guard_bins));
    for (std::size_t k = lo; k <= hi; ++k) {
      if (!in_fund(k)) p += power[k];
    }
    return p;
  };
  double worst_spur = 0.0;
  double p_nd = 0.0;
  for (std::size_t k = static_cast<std::size_t>(opts.dc_bins) + 1;
       k < search_limit; ++k) {
    if (in_fund(k)) continue;
    p_nd += power[k];
    worst_spur = std::max(worst_spur, spur_power(k));
  }
  r.sfdr_db = 10.0 * std::log10(p_fund / std::max(worst_spur, kFloor));
  r.sndr_db = 10.0 * std::log10(p_fund / std::max(p_nd, kFloor));
  r.enob = (r.sndr_db - 1.76) / 6.02;

  // THD over the first `harmonics` harmonics, folded back into [0, fs/2].
  double p_harm = 0.0;
  for (int h = 2; h <= opts.harmonics + 1; ++h) {
    std::size_t bin = (fund * static_cast<std::size_t>(h)) % n;
    if (bin >= half) bin = n - bin;  // alias
    if (bin == 0 || in_fund(bin)) continue;
    p_harm += tone_power(bin);
  }
  r.thd_db = 10.0 * std::log10(std::max(p_harm, kFloor) / p_fund);

  // Fundamental relative to the record's peak-to-peak half (rough dBFS).
  double vmax = samples[0], vmin = samples[0];
  for (double v : samples) {
    vmax = std::max(vmax, v);
    vmin = std::min(vmin, v);
  }
  const double full_amp = 0.5 * (vmax - vmin);
  const double fund_amp = std::sqrt(2.0 * p_fund) /
                          mathx::window_coherent_gain(opts.window, n);
  r.fund_db_fs =
      20.0 * std::log10(std::max(fund_amp, kFloor) /
                        std::max(full_amp, kFloor));
  return r;
}

ImdResult analyze_imd(const std::vector<double>& samples, double fs,
                      std::size_t bin1, std::size_t bin2,
                      const SpectrumOptions& opts) {
  if (bin1 == bin2 || bin1 == 0 || bin2 == 0) {
    throw std::invalid_argument("analyze_imd: need two distinct tones");
  }
  const std::size_t n = samples.size();
  const std::size_t half = n / 2 + 1;
  if (bin1 >= half || bin2 >= half) {
    throw std::invalid_argument("analyze_imd: tone bin out of band");
  }
  // Reuse the windowed spectrum machinery via analyze_spectrum on the
  // first tone (magnitudes are relative; we need absolute powers, so the
  // per-bin power is recomputed from mag_db and the tone power).
  const SpectrumResult base = analyze_spectrum(samples, fs, opts, bin1);
  // base.mag_db is relative to tone-1 power including guard bins.
  auto power_db = [&](std::size_t k) {
    double p = -1e9;
    const std::size_t g = static_cast<std::size_t>(opts.guard_bins);
    const std::size_t lo = k > g ? k - g : 0;
    const std::size_t hi = std::min(half - 1, k + g);
    for (std::size_t i = lo; i <= hi; ++i) {
      p = std::max(p, base.mag_db[i]);
    }
    return p;
  };
  // Third-order products, folded back into the first Nyquist zone.
  auto folded = [&](long long b) {
    long long m = b % static_cast<long long>(n);
    if (m < 0) m += static_cast<long long>(n);
    if (static_cast<std::size_t>(m) >= half) m = static_cast<long long>(n) - m;
    return static_cast<std::size_t>(m);
  };
  ImdResult r;
  r.imd3_lo_bin = folded(2 * static_cast<long long>(bin1) -
                         static_cast<long long>(bin2));
  r.imd3_hi_bin = folded(2 * static_cast<long long>(bin2) -
                         static_cast<long long>(bin1));
  const double t1_db = power_db(bin1);  // ~0 dB by construction
  const double t2_db = power_db(bin2);
  r.tone1_power = std::pow(10.0, t1_db / 10.0);
  r.tone2_power = std::pow(10.0, t2_db / 10.0);
  const double ref_db = 0.5 * (t1_db + t2_db);
  r.imd3_db = std::max(power_db(r.imd3_lo_bin), power_db(r.imd3_hi_bin)) -
              ref_db;
  const std::size_t imd2_lo = folded(static_cast<long long>(bin2) -
                                     static_cast<long long>(bin1));
  const std::size_t imd2_hi = folded(static_cast<long long>(bin1) +
                                     static_cast<long long>(bin2));
  r.imd2_db = std::max(power_db(imd2_lo), power_db(imd2_hi)) - ref_db;
  return r;
}

}  // namespace csdac::dac
