#include "dac/static_analysis.hpp"

#include <atomic>
#include <cmath>
#include <thread>
#include <stdexcept>

#include "mathx/fit.hpp"

namespace csdac::dac {

StaticMetrics analyze_transfer(const std::vector<double>& levels,
                               InlReference ref) {
  if (levels.size() < 2) {
    throw std::invalid_argument("analyze_transfer: need >= 2 levels");
  }
  const std::size_t n = levels.size();
  StaticMetrics m;
  m.inl.resize(n);
  m.dnl.resize(n - 1);

  // Reference line: level ~ gain*code + offset.
  double gain = 1.0, offset = 0.0;
  if (ref == InlReference::kEndpoint) {
    gain = (levels.back() - levels.front()) / static_cast<double>(n - 1);
    offset = levels.front();
  } else {
    std::vector<double> codes(n);
    for (std::size_t i = 0; i < n; ++i) codes[i] = static_cast<double>(i);
    const auto fit = mathx::fit_line(codes, levels);
    gain = fit.slope;
    offset = fit.intercept;
  }
  if (gain == 0.0) throw std::invalid_argument("analyze_transfer: flat");

  for (std::size_t i = 0; i < n; ++i) {
    m.inl[i] = (levels[i] - (offset + gain * static_cast<double>(i))) / gain;
    m.inl_max = std::max(m.inl_max, std::abs(m.inl[i]));
  }
  for (std::size_t i = 0; i + 1 < n; ++i) {
    m.dnl[i] = (levels[i + 1] - levels[i]) / gain - 1.0;
    m.dnl_max = std::max(m.dnl_max, std::abs(m.dnl[i]));
  }
  return m;
}

namespace {

/// Independent, reproducible per-chip stream: the chip index is folded into
/// the seed through the golden-ratio multiplier the RNG's own seeding uses.
mathx::Xoshiro256 chip_rng(std::uint64_t seed, int chip) {
  return mathx::Xoshiro256(seed ^
                           (0x9e3779b97f4a7c15ull *
                            (static_cast<std::uint64_t>(chip) + 1)));
}

bool chip_passes(const core::DacSpec& spec, double sigma_unit,
                 std::uint64_t seed, int chip, double limit, bool use_inl,
                 InlReference ref) {
  mathx::Xoshiro256 rng = chip_rng(seed, chip);
  const SegmentedDac dac(spec, draw_source_errors(spec, sigma_unit, rng));
  const StaticMetrics m = analyze_transfer(dac.transfer(), ref);
  return (use_inl ? m.inl_max : m.dnl_max) < limit;
}

YieldEstimate run_mc(const core::DacSpec& spec, double sigma_unit, int chips,
                     std::uint64_t seed, double limit, bool use_inl,
                     InlReference ref, int threads) {
  if (chips <= 0) throw std::invalid_argument("yield_mc: chips <= 0");
  if (threads < 0) throw std::invalid_argument("yield_mc: threads < 0");
  if (threads == 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
    if (threads < 1) threads = 1;
  }
  threads = std::min(threads, chips);

  YieldEstimate y;
  y.chips = chips;
  if (threads == 1) {
    for (int c = 0; c < chips; ++c) {
      if (chip_passes(spec, sigma_unit, seed, c, limit, use_inl, ref)) {
        ++y.pass;
      }
    }
  } else {
    std::atomic<int> next{0};
    std::atomic<int> passed{0};
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(threads));
    for (int t = 0; t < threads; ++t) {
      pool.emplace_back([&] {
        int local = 0;
        for (int c = next.fetch_add(1); c < chips; c = next.fetch_add(1)) {
          if (chip_passes(spec, sigma_unit, seed, c, limit, use_inl, ref)) {
            ++local;
          }
        }
        passed.fetch_add(local);
      });
    }
    for (auto& th : pool) th.join();
    y.pass = passed.load();
  }
  y.yield = static_cast<double>(y.pass) / chips;
  y.ci95 = 1.96 * std::sqrt(y.yield * (1.0 - y.yield) / chips);
  return y;
}

}  // namespace

YieldEstimate inl_yield_mc(const core::DacSpec& spec, double sigma_unit,
                           int chips, std::uint64_t seed, double inl_limit,
                           InlReference ref, int threads) {
  return run_mc(spec, sigma_unit, chips, seed, inl_limit, true, ref,
                threads);
}

YieldEstimate dnl_yield_mc(const core::DacSpec& spec, double sigma_unit,
                           int chips, std::uint64_t seed, double dnl_limit,
                           int threads) {
  return run_mc(spec, sigma_unit, chips, seed, dnl_limit, false,
                InlReference::kBestFit, threads);
}

}  // namespace csdac::dac
