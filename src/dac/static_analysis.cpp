#include "dac/static_analysis.hpp"

#include <cmath>
#include <span>
#include <stdexcept>

#include "dac/lane_kernel.hpp"
#include "mathx/fit.hpp"
#include "mathx/rng.hpp"
#include "obs/metrics.hpp"

namespace csdac::dac {

namespace {

// The chip counter now lives in the process-wide metrics registry (it is
// the same counter a Prometheus dump exports as
// csdac_mc_chips_evaluated_total); mc_chips_evaluated() stays as the
// historical facade. The sharded add costs a few nanoseconds against the
// ~10 us chip evaluation.
obs::Counter& chip_counter() {
  static obs::Counter& c = obs::Registry::global().counter(
      "mc.chips_evaluated",
      "Monte-Carlo chips drawn and analyzed (workspace or legacy path)");
  return c;
}

}  // namespace

std::int64_t mc_chips_evaluated() { return chip_counter().value(); }

namespace detail {

void count_chip_eval() { chip_counter().add(1); }

void count_chip_evals(std::int64_t n) { chip_counter().add(n); }

}  // namespace detail

namespace {

// The one INL/DNL computation. Both the allocating analyze_transfer and the
// workspace analyze_transfer_into funnel through this, so the two paths are
// bit-identical by construction. `codes` must be the ramp 0..n-1 (only read
// for the best-fit reference); `inl` must have n slots and `dnl` n-1.
StaticSummary analyze_core(std::span<const double> levels,
                           std::span<const double> codes, InlReference ref,
                           double* inl, double* dnl) {
  const std::size_t n = levels.size();
  // Reference line: level ~ gain*code + offset.
  double gain = 1.0, offset = 0.0;
  if (ref == InlReference::kEndpoint) {
    gain = (levels.back() - levels.front()) / static_cast<double>(n - 1);
    offset = levels.front();
  } else {
    // Ordinary least squares through (codes[i], levels[i]); the same
    // accumulation order as mathx::fit_line, minus the R^2 pass the INL
    // reference line never needed.
    const auto nn = static_cast<double>(n);
    double sx = 0, sy = 0, sxx = 0, sxy = 0;
    for (std::size_t i = 0; i < n; ++i) {
      sx += codes[i];
      sy += levels[i];
      sxx += codes[i] * codes[i];
      sxy += codes[i] * levels[i];
    }
    const double denom = nn * sxx - sx * sx;
    if (denom == 0.0) throw std::invalid_argument("analyze: degenerate x");
    gain = (nn * sxy - sx * sy) / denom;
    offset = (sy - gain * sx) / nn;
  }
  if (gain == 0.0) throw std::invalid_argument("analyze_transfer: flat");

  StaticSummary s;
  for (std::size_t i = 0; i < n; ++i) {
    inl[i] = (levels[i] - (offset + gain * static_cast<double>(i))) / gain;
    s.inl_max = std::max(s.inl_max, std::abs(inl[i]));
  }
  for (std::size_t i = 0; i + 1 < n; ++i) {
    dnl[i] = (levels[i + 1] - levels[i]) / gain - 1.0;
    s.dnl_max = std::max(s.dnl_max, std::abs(dnl[i]));
  }
  return s;
}

}  // namespace

StaticMetrics analyze_transfer(const std::vector<double>& levels,
                               InlReference ref) {
  if (levels.size() < 2) {
    throw std::invalid_argument("analyze_transfer: need >= 2 levels");
  }
  const std::size_t n = levels.size();
  StaticMetrics m;
  m.inl.resize(n);
  m.dnl.resize(n - 1);
  std::vector<double> codes;
  if (ref == InlReference::kBestFit) {
    codes.resize(n);
    for (std::size_t i = 0; i < n; ++i) codes[i] = static_cast<double>(i);
  }
  const StaticSummary s =
      analyze_core(levels, codes, ref, m.inl.data(), m.dnl.data());
  m.inl_max = s.inl_max;
  m.dnl_max = s.dnl_max;
  return m;
}

StaticSummary analyze_levels_summary(std::span<const double> levels,
                                     InlReference ref) {
  const std::size_t n = levels.size();
  if (n < 2) {
    throw std::invalid_argument("analyze_transfer: need >= 2 levels");
  }
  double gain = 1.0, offset = 0.0;
  if (ref == InlReference::kEndpoint) {
    gain = (levels.back() - levels.front()) / static_cast<double>(n - 1);
    offset = levels.front();
  } else {
    // Same least-squares line as analyze_core, but with the x statistics
    // in closed form: for a 0..n-1 ramp every partial sum of x and x^2 is
    // an exact integer below 2^53 (n <= 2^17), so the iterative sums in
    // analyze_core land on the exact value the closed forms give.
    const auto nn = static_cast<double>(n);
    double sx, sxx;
    if (n <= (std::size_t{1} << 17)) {
      const auto m = static_cast<std::int64_t>(n) - 1;
      sx = static_cast<double>(m * (m + 1) / 2);
      sxx = static_cast<double>(m * (m + 1) * (2 * m + 1) / 6);
    } else {
      sx = 0.0;
      sxx = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        const auto x = static_cast<double>(i);
        sx += x;
        sxx += x * x;
      }
    }
    double sy = 0, sxy = 0;
    for (std::size_t i = 0; i < n; ++i) {
      sy += levels[i];
      sxy += static_cast<double>(i) * levels[i];
    }
    const double denom = nn * sxx - sx * sx;
    if (denom == 0.0) throw std::invalid_argument("analyze: degenerate x");
    gain = (nn * sxy - sx * sy) / denom;
    offset = (sy - gain * sx) / nn;
  }
  if (gain == 0.0) throw std::invalid_argument("analyze_transfer: flat");

  // One fused pass: track the extreme residual and the extreme level
  // steps; divide once at the end. Monotonicity of correctly-rounded
  // division makes the maxima bit-identical to analyze_core's per-code
  // divided values.
  double rmax = 0.0;
  double dmin = levels[1] - levels[0];
  double dmax = dmin;
  {
    const double resid0 = levels[0] - offset;
    rmax = std::abs(resid0);
  }
  for (std::size_t i = 1; i < n; ++i) {
    const double resid =
        levels[i] - (offset + gain * static_cast<double>(i));
    rmax = std::max(rmax, std::abs(resid));
    const double d = levels[i] - levels[i - 1];
    dmin = std::min(dmin, d);
    dmax = std::max(dmax, d);
  }
  StaticSummary s;
  s.inl_max = rmax / std::abs(gain);
  const double dnl_lo = dmin / gain - 1.0;
  const double dnl_hi = dmax / gain - 1.0;
  s.dnl_max = std::max(std::abs(dnl_lo), std::abs(dnl_hi));
  return s;
}

StaticSummary analyze_transfer_into(ChipWorkspace& ws, InlReference ref) {
  if (ws.levels.size() < 2 || ws.inl.size() != ws.levels.size() ||
      ws.dnl.size() + 1 != ws.levels.size() ||
      ws.codes.size() != ws.levels.size()) {
    throw std::invalid_argument("analyze_transfer_into: bad workspace");
  }
  return analyze_core(ws.levels, ws.codes, ref, ws.inl.data(),
                      ws.dnl.data());
}

StaticSummary mc_chip_metrics(ChipWorkspace& ws, double sigma_unit,
                              std::uint64_t seed, std::int64_t chip,
                              InlReference ref) {
  detail::count_chip_eval();
  mathx::stream_rng_into(ws.rng, seed, static_cast<std::uint64_t>(chip));
  draw_source_errors_into(ws.spec, sigma_unit, ws.rng, ws.errors);
  transfer_into(ws.spec, ws.errors, ws);
  return analyze_levels_summary(ws.levels, ref);
}

namespace {

// The historical per-chip analysis, preserved verbatim as the baseline the
// bench harness measures against: allocates the codes ramp and INL/DNL
// vectors every chip and pays mathx::fit_line's extra syy/R^2 passes. Its
// slope/intercept accumulate in the same order as analyze_core, so the
// pass/fail decisions are bit-identical to the workspace path (the
// equivalence tests pin this).
StaticMetrics analyze_transfer_seed(const std::vector<double>& levels,
                                    InlReference ref) {
  const std::size_t n = levels.size();
  StaticMetrics m;
  m.inl.resize(n);
  m.dnl.resize(n - 1);
  double gain = 1.0, offset = 0.0;
  if (ref == InlReference::kEndpoint) {
    gain = (levels.back() - levels.front()) / static_cast<double>(n - 1);
    offset = levels.front();
  } else {
    std::vector<double> codes(n);
    for (std::size_t i = 0; i < n; ++i) codes[i] = static_cast<double>(i);
    const auto fit = mathx::fit_line(codes, levels);
    gain = fit.slope;
    offset = fit.intercept;
  }
  for (std::size_t i = 0; i < n; ++i) {
    m.inl[i] = (levels[i] - (offset + gain * static_cast<double>(i))) / gain;
    m.inl_max = std::max(m.inl_max, std::abs(m.inl[i]));
  }
  for (std::size_t i = 0; i + 1 < n; ++i) {
    m.dnl[i] = (levels[i + 1] - levels[i]) / gain - 1.0;
    m.dnl_max = std::max(m.dnl_max, std::abs(m.dnl[i]));
  }
  return m;
}

bool chip_passes_legacy(const core::DacSpec& spec, double sigma_unit,
                        std::uint64_t seed, std::int64_t chip, double limit,
                        bool use_inl, InlReference ref) {
  detail::count_chip_eval();
  mathx::Xoshiro256 rng =
      mathx::stream_rng(seed, static_cast<std::uint64_t>(chip));
  const SegmentedDac dac(spec, draw_source_errors(spec, sigma_unit, rng));
  const StaticMetrics m = analyze_transfer_seed(dac.transfer(), ref);
  return (use_inl ? m.inl_max : m.dnl_max) < limit;
}

YieldEstimate run_mc(const core::DacSpec& spec, double sigma_unit, int chips,
                     std::uint64_t seed, double limit, bool use_inl,
                     InlReference ref, int threads, bool use_workspace) {
  if (chips <= 0) throw std::invalid_argument("yield_mc: chips <= 0");
  if (threads < 0) throw std::invalid_argument("yield_mc: threads < 0");

  YieldEstimate y;
  y.chips = chips;
  std::atomic<int> passed{0};
  if (use_workspace) {
    const LaneKernel& k = active_lane_kernel();
    if (k.lanes > 1) {
      // Chip-per-lane SIMD path: blocks of k.lanes chips through the
      // vector kernel, the remainder (chips % lanes) through the scalar
      // kernel. Per-chip metrics are bit-identical either way, so this is
      // a pure throughput change.
      std::atomic<std::int64_t> vec_chips{0}, tail_chips{0};
      y.stats = mathx::parallel_for_workspace_blocks(
          chips, threads, k.lanes,
          [&spec, &k] { return ChipWorkspaceXN(spec, k.lanes); },
          [&](ChipWorkspaceXN& ws, std::int64_t lo, std::int64_t hi) {
            int local = 0;
            if (hi - lo == k.lanes) {
              StaticSummary s[kMaxSimdLanes];
              k.mc_block(ws, sigma_unit, seed, lo, ref, s);
              for (int l = 0; l < k.lanes; ++l) {
                if ((use_inl ? s[l].inl_max : s[l].dnl_max) < limit) ++local;
              }
              vec_chips.fetch_add(k.lanes, std::memory_order_relaxed);
            } else {
              for (std::int64_t c = lo; c < hi; ++c) {
                const StaticSummary s =
                    mc_chip_metrics(ws.scalar, sigma_unit, seed, c, ref);
                if ((use_inl ? s.inl_max : s.dnl_max) < limit) ++local;
              }
              tail_chips.fetch_add(hi - lo, std::memory_order_relaxed);
            }
            if (local) passed.fetch_add(local, std::memory_order_relaxed);
          });
      detail::record_lane_run(k, vec_chips.load(), tail_chips.load());
    } else {
      y.stats = mathx::parallel_for_workspace(
          chips, threads, [&spec] { return ChipWorkspace(spec); },
          [&](ChipWorkspace& ws, std::int64_t c) {
            const StaticSummary s =
                mc_chip_metrics(ws, sigma_unit, seed, c, ref);
            if ((use_inl ? s.inl_max : s.dnl_max) < limit) {
              passed.fetch_add(1, std::memory_order_relaxed);
            }
          });
      detail::record_lane_run(k, 0, chips);
    }
  } else {
    y.stats = mathx::parallel_for(chips, threads, [&](std::int64_t c) {
      if (chip_passes_legacy(spec, sigma_unit, seed, c, limit, use_inl,
                             ref)) {
        passed.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  y.pass = passed.load();
  y.yield = static_cast<double>(y.pass) / chips;
  y.ci95 = mathx::wilson_half_width(y.pass, chips);
  return y;
}

YieldEstimate run_mc_adaptive(const core::DacSpec& spec, double sigma_unit,
                              const AdaptiveMcOptions& opts,
                              std::uint64_t seed, double limit, bool use_inl,
                              InlReference ref) {
  if (opts.threads < 0) throw std::invalid_argument("yield_mc: threads < 0");
  mathx::EarlyStopOptions es;
  es.max_items = opts.max_chips;
  es.min_items = opts.min_chips;
  es.batch = opts.batch;
  es.ci_half_width = opts.ci_half_width;
  const LaneKernel& k = active_lane_kernel();
  mathx::YieldRun r;
  if (k.lanes > 1) {
    // Chip-per-lane blocks inside each CI wave; the wave boundaries (and
    // therefore the stopping point) are the same as the per-chip path, so
    // the estimate stays bit-identical across backends and thread counts.
    std::atomic<std::int64_t> vec_chips{0}, tail_chips{0};
    r = mathx::adaptive_yield_run_workspace_blocks(
        es, opts.threads, k.lanes,
        [&spec, &k] { return ChipWorkspaceXN(spec, k.lanes); },
        [&](ChipWorkspaceXN& ws, std::int64_t lo,
            std::int64_t hi) -> std::int64_t {
          std::int64_t local = 0;
          if (hi - lo == k.lanes) {
            StaticSummary s[kMaxSimdLanes];
            k.mc_block(ws, sigma_unit, seed, lo, ref, s);
            for (int l = 0; l < k.lanes; ++l) {
              if ((use_inl ? s[l].inl_max : s[l].dnl_max) < limit) ++local;
            }
            vec_chips.fetch_add(k.lanes, std::memory_order_relaxed);
          } else {
            for (std::int64_t c = lo; c < hi; ++c) {
              const StaticSummary s =
                  mc_chip_metrics(ws.scalar, sigma_unit, seed, c, ref);
              if ((use_inl ? s.inl_max : s.dnl_max) < limit) ++local;
            }
            tail_chips.fetch_add(hi - lo, std::memory_order_relaxed);
          }
          return local;
        },
        opts.count_allocs);
    detail::record_lane_run(k, vec_chips.load(), tail_chips.load());
  } else {
    r = mathx::adaptive_yield_run_workspace(
        es, opts.threads, [&spec] { return ChipWorkspace(spec); },
        [&](ChipWorkspace& ws, std::int64_t c) {
          const StaticSummary s =
              mc_chip_metrics(ws, sigma_unit, seed, c, ref);
          return (use_inl ? s.inl_max : s.dnl_max) < limit;
        },
        opts.count_allocs);
    detail::record_lane_run(k, 0, r.evaluated);
  }
  YieldEstimate y;
  y.chips = static_cast<int>(r.evaluated);
  y.pass = static_cast<int>(r.passed);
  y.yield = r.yield;
  y.ci95 = r.ci95;
  y.stats = r.stats;
  return y;
}

}  // namespace

YieldEstimate inl_yield_mc(const core::DacSpec& spec, double sigma_unit,
                           int chips, std::uint64_t seed, double inl_limit,
                           InlReference ref, int threads) {
  return run_mc(spec, sigma_unit, chips, seed, inl_limit, true, ref, threads,
                /*use_workspace=*/true);
}

YieldEstimate dnl_yield_mc(const core::DacSpec& spec, double sigma_unit,
                           int chips, std::uint64_t seed, double dnl_limit,
                           int threads) {
  return run_mc(spec, sigma_unit, chips, seed, dnl_limit, false,
                InlReference::kBestFit, threads, /*use_workspace=*/true);
}

YieldEstimate inl_yield_mc_legacy(const core::DacSpec& spec,
                                  double sigma_unit, int chips,
                                  std::uint64_t seed, double inl_limit,
                                  InlReference ref, int threads) {
  return run_mc(spec, sigma_unit, chips, seed, inl_limit, true, ref, threads,
                /*use_workspace=*/false);
}

YieldEstimate dnl_yield_mc_legacy(const core::DacSpec& spec,
                                  double sigma_unit, int chips,
                                  std::uint64_t seed, double dnl_limit,
                                  int threads) {
  return run_mc(spec, sigma_unit, chips, seed, dnl_limit, false,
                InlReference::kBestFit, threads, /*use_workspace=*/false);
}

YieldEstimate inl_yield_mc_adaptive(const core::DacSpec& spec,
                                    double sigma_unit,
                                    const AdaptiveMcOptions& opts,
                                    std::uint64_t seed, double inl_limit,
                                    InlReference ref) {
  return run_mc_adaptive(spec, sigma_unit, opts, seed, inl_limit, true, ref);
}

YieldEstimate dnl_yield_mc_adaptive(const core::DacSpec& spec,
                                    double sigma_unit,
                                    const AdaptiveMcOptions& opts,
                                    std::uint64_t seed, double dnl_limit) {
  return run_mc_adaptive(spec, sigma_unit, opts, seed, dnl_limit, false,
                         InlReference::kBestFit);
}

}  // namespace csdac::dac
