#include "dac/static_analysis.hpp"

#include <atomic>
#include <cmath>
#include <stdexcept>

#include "mathx/fit.hpp"
#include "mathx/rng.hpp"

namespace csdac::dac {

StaticMetrics analyze_transfer(const std::vector<double>& levels,
                               InlReference ref) {
  if (levels.size() < 2) {
    throw std::invalid_argument("analyze_transfer: need >= 2 levels");
  }
  const std::size_t n = levels.size();
  StaticMetrics m;
  m.inl.resize(n);
  m.dnl.resize(n - 1);

  // Reference line: level ~ gain*code + offset.
  double gain = 1.0, offset = 0.0;
  if (ref == InlReference::kEndpoint) {
    gain = (levels.back() - levels.front()) / static_cast<double>(n - 1);
    offset = levels.front();
  } else {
    std::vector<double> codes(n);
    for (std::size_t i = 0; i < n; ++i) codes[i] = static_cast<double>(i);
    const auto fit = mathx::fit_line(codes, levels);
    gain = fit.slope;
    offset = fit.intercept;
  }
  if (gain == 0.0) throw std::invalid_argument("analyze_transfer: flat");

  for (std::size_t i = 0; i < n; ++i) {
    m.inl[i] = (levels[i] - (offset + gain * static_cast<double>(i))) / gain;
    m.inl_max = std::max(m.inl_max, std::abs(m.inl[i]));
  }
  for (std::size_t i = 0; i + 1 < n; ++i) {
    m.dnl[i] = (levels[i + 1] - levels[i]) / gain - 1.0;
    m.dnl_max = std::max(m.dnl_max, std::abs(m.dnl[i]));
  }
  return m;
}

namespace {

bool chip_passes(const core::DacSpec& spec, double sigma_unit,
                 std::uint64_t seed, std::int64_t chip, double limit,
                 bool use_inl, InlReference ref) {
  mathx::Xoshiro256 rng =
      mathx::stream_rng(seed, static_cast<std::uint64_t>(chip));
  const SegmentedDac dac(spec, draw_source_errors(spec, sigma_unit, rng));
  const StaticMetrics m = analyze_transfer(dac.transfer(), ref);
  return (use_inl ? m.inl_max : m.dnl_max) < limit;
}

YieldEstimate run_mc(const core::DacSpec& spec, double sigma_unit, int chips,
                     std::uint64_t seed, double limit, bool use_inl,
                     InlReference ref, int threads) {
  if (chips <= 0) throw std::invalid_argument("yield_mc: chips <= 0");
  if (threads < 0) throw std::invalid_argument("yield_mc: threads < 0");

  YieldEstimate y;
  y.chips = chips;
  std::atomic<int> passed{0};
  y.stats = mathx::parallel_for(chips, threads, [&](std::int64_t c) {
    if (chip_passes(spec, sigma_unit, seed, c, limit, use_inl, ref)) {
      passed.fetch_add(1, std::memory_order_relaxed);
    }
  });
  y.pass = passed.load();
  y.yield = static_cast<double>(y.pass) / chips;
  y.ci95 = 1.96 * std::sqrt(y.yield * (1.0 - y.yield) / chips);
  return y;
}

YieldEstimate run_mc_adaptive(const core::DacSpec& spec, double sigma_unit,
                              const AdaptiveMcOptions& opts,
                              std::uint64_t seed, double limit, bool use_inl,
                              InlReference ref) {
  if (opts.threads < 0) throw std::invalid_argument("yield_mc: threads < 0");
  mathx::EarlyStopOptions es;
  es.max_items = opts.max_chips;
  es.min_items = opts.min_chips;
  es.batch = opts.batch;
  es.ci_half_width = opts.ci_half_width;
  const mathx::YieldRun r =
      mathx::adaptive_yield_run(es, opts.threads, [&](std::int64_t c) {
        return chip_passes(spec, sigma_unit, seed, c, limit, use_inl, ref);
      });
  YieldEstimate y;
  y.chips = static_cast<int>(r.evaluated);
  y.pass = static_cast<int>(r.passed);
  y.yield = r.yield;
  y.ci95 = r.ci95;
  y.stats = r.stats;
  return y;
}

}  // namespace

YieldEstimate inl_yield_mc(const core::DacSpec& spec, double sigma_unit,
                           int chips, std::uint64_t seed, double inl_limit,
                           InlReference ref, int threads) {
  return run_mc(spec, sigma_unit, chips, seed, inl_limit, true, ref,
                threads);
}

YieldEstimate dnl_yield_mc(const core::DacSpec& spec, double sigma_unit,
                           int chips, std::uint64_t seed, double dnl_limit,
                           int threads) {
  return run_mc(spec, sigma_unit, chips, seed, dnl_limit, false,
                InlReference::kBestFit, threads);
}

YieldEstimate inl_yield_mc_adaptive(const core::DacSpec& spec,
                                    double sigma_unit,
                                    const AdaptiveMcOptions& opts,
                                    std::uint64_t seed, double inl_limit,
                                    InlReference ref) {
  return run_mc_adaptive(spec, sigma_unit, opts, seed, inl_limit, true, ref);
}

YieldEstimate dnl_yield_mc_adaptive(const core::DacSpec& spec,
                                    double sigma_unit,
                                    const AdaptiveMcOptions& opts,
                                    std::uint64_t seed, double dnl_limit) {
  return run_mc_adaptive(spec, sigma_unit, opts, seed, dnl_limit, false,
                         InlReference::kBestFit);
}

}  // namespace csdac::dac
