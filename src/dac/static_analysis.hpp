// Static linearity metrics (INL, DNL) and parametric-yield Monte Carlo —
// the machinery behind eq. (1)'s design rule.
#pragma once

#include <cstdint>
#include <vector>

#include "core/spec.hpp"
#include "dac/dac_model.hpp"

namespace csdac::dac {

/// Reference line for INL.
enum class InlReference {
  kEndpoint,  ///< line through the first and last level
  kBestFit    ///< least-squares line (what testers usually report)
};

struct StaticMetrics {
  std::vector<double> inl;  ///< per-code INL [LSB]
  std::vector<double> dnl;  ///< per-transition DNL [LSB], size 2^n - 1
  double inl_max = 0.0;     ///< max |INL| [LSB]
  double dnl_max = 0.0;     ///< max |DNL| [LSB]
};

/// Computes INL/DNL of a static transfer function (levels in LSB units).
StaticMetrics analyze_transfer(const std::vector<double>& levels,
                               InlReference ref = InlReference::kBestFit);

/// Monte-Carlo INL yield: fraction of chips with max|INL| < inl_limit.
struct YieldEstimate {
  int chips = 0;
  int pass = 0;
  double yield = 0.0;
  double ci95 = 0.0;  ///< 95 % binomial confidence half-width
};

/// Each chip draws from an independent RNG stream derived from
/// (seed, chip index), so results are bit-identical for any thread count.
/// threads = 0 uses the hardware concurrency.
YieldEstimate inl_yield_mc(const core::DacSpec& spec, double sigma_unit,
                           int chips, std::uint64_t seed,
                           double inl_limit = 0.5,
                           InlReference ref = InlReference::kBestFit,
                           int threads = 1);

/// Monte-Carlo DNL yield at the same limit (checks the paper's remark that
/// DNL is automatically met when INL is, for reasonable segmentations).
YieldEstimate dnl_yield_mc(const core::DacSpec& spec, double sigma_unit,
                           int chips, std::uint64_t seed,
                           double dnl_limit = 0.5, int threads = 1);

}  // namespace csdac::dac
