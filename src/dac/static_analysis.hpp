// Static linearity metrics (INL, DNL) and parametric-yield Monte Carlo —
// the machinery behind eq. (1)'s design rule. The MC loops run on the
// shared mathx::parallel engine: per-chip RNG streams derived from
// (seed, chip) make results bit-identical for any thread count, and the
// adaptive variants stop drawing chips once the 95 % CI has resolved.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/spec.hpp"
#include "dac/dac_model.hpp"
#include "mathx/parallel.hpp"

namespace csdac::dac {

/// Reference line for INL.
enum class InlReference {
  kEndpoint,  ///< line through the first and last level
  kBestFit    ///< least-squares line (what testers usually report)
};

struct StaticMetrics {
  std::vector<double> inl;  ///< per-code INL [LSB]
  std::vector<double> dnl;  ///< per-transition DNL [LSB], size 2^n - 1
  double inl_max = 0.0;     ///< max |INL| [LSB]
  double dnl_max = 0.0;     ///< max |DNL| [LSB]
};

/// Computes INL/DNL of a static transfer function (levels in LSB units).
StaticMetrics analyze_transfer(const std::vector<double>& levels,
                               InlReference ref = InlReference::kBestFit);

/// Maxima of an allocation-free analysis; the per-code vectors live in the
/// workspace (ws.inl / ws.dnl).
struct StaticSummary {
  double inl_max = 0.0;  ///< max |INL| [LSB]
  double dnl_max = 0.0;  ///< max |DNL| [LSB]
};

/// Allocation-free analyze_transfer: reads ws.levels, writes per-code INL
/// into ws.inl and per-transition DNL into ws.dnl. Shares its arithmetic
/// with analyze_transfer, so the results are bit-identical.
StaticSummary analyze_transfer_into(ChipWorkspace& ws,
                                    InlReference ref = InlReference::kBestFit);

/// Maxima-only analysis of a raw levels span — the MC hot-path kernel. No
/// per-code vectors are written and no per-code division is paid, yet the
/// returned maxima are bit-identical to analyze_transfer's: IEEE division
/// is correctly rounded and therefore monotone, so max|x_i / g| equals
/// max|x_i| / |g|, and the extreme DNL is attained at the extreme level
/// step. The equivalence tests pin this against the vector-writing paths.
StaticSummary analyze_levels_summary(std::span<const double> levels,
                                     InlReference ref = InlReference::kBestFit);

/// Process-wide count of Monte-Carlo chip evaluations (every mismatch-drawn
/// chip analyzed by any yield/calibration path, workspace or legacy). A
/// relaxed atomic increment per chip — negligible against the ~10 us chip
/// cost — that gives the runtime cache a hard "no work was redone" signal:
/// a warm-cache service run must leave this counter unchanged.
std::int64_t mc_chips_evaluated();

/// Difference-friendly reset is deliberately absent (other threads may be
/// counting); snapshot before/after and subtract instead.

namespace detail {
/// Bumps the chip counter; called once per chip by every MC kernel.
void count_chip_eval();
/// Batched bump for the chip-per-lane kernels (one call per block).
void count_chip_evals(std::int64_t n);
}  // namespace detail

/// One Monte-Carlo chip, allocation-free: re-seeds ws.rng to the
/// (seed, chip) stream, draws the mismatch into ws.errors, computes the
/// transfer into ws.levels and the INL/DNL maxima via
/// analyze_levels_summary (ws.inl / ws.dnl are NOT written; call
/// analyze_transfer_into for the per-code vectors). Bit-identical maxima
/// to the allocating draw_source_errors → SegmentedDac → transfer →
/// analyze_transfer chain for the same (seed, chip).
StaticSummary mc_chip_metrics(ChipWorkspace& ws, double sigma_unit,
                              std::uint64_t seed, std::int64_t chip,
                              InlReference ref = InlReference::kBestFit);

/// Monte-Carlo INL yield: fraction of chips with max|INL| < inl_limit.
struct YieldEstimate {
  int chips = 0;  ///< chips actually evaluated
  int pass = 0;
  double yield = 0.0;
  double ci95 = 0.0;  ///< Wilson 95 % confidence half-width
  mathx::RunStats stats;  ///< engine observability (wall time, chips/s, ...)
};

/// Each chip draws from an independent RNG stream derived from
/// (seed, chip index), so results are bit-identical for any thread count.
/// threads = 0 uses the hardware concurrency. Runs the allocation-free
/// per-thread-workspace kernel (see ChipWorkspace); results are
/// bit-identical to the *_legacy allocating reference implementations.
YieldEstimate inl_yield_mc(const core::DacSpec& spec, double sigma_unit,
                           int chips, std::uint64_t seed,
                           double inl_limit = 0.5,
                           InlReference ref = InlReference::kBestFit,
                           int threads = 1);

/// Monte-Carlo DNL yield at the same limit (checks the paper's remark that
/// DNL is automatically met when INL is, for reasonable segmentations).
YieldEstimate dnl_yield_mc(const core::DacSpec& spec, double sigma_unit,
                           int chips, std::uint64_t seed,
                           double dnl_limit = 0.5, int threads = 1);

/// Reference implementations that pay the historical per-chip heap
/// allocations (draw, DAC construction, transfer, INL/DNL vectors). Kept
/// for the equivalence test suite and as the baseline the bench harness
/// measures the workspace speedup against. Identical results.
YieldEstimate inl_yield_mc_legacy(const core::DacSpec& spec,
                                  double sigma_unit, int chips,
                                  std::uint64_t seed, double inl_limit = 0.5,
                                  InlReference ref = InlReference::kBestFit,
                                  int threads = 1);

YieldEstimate dnl_yield_mc_legacy(const core::DacSpec& spec,
                                  double sigma_unit, int chips,
                                  std::uint64_t seed, double dnl_limit = 0.5,
                                  int threads = 1);

/// Knobs for the adaptive yield estimators: evaluate chips in
/// thread-count-independent batches and stop once the Wilson 95 % CI
/// half-width falls below `ci_half_width` (never past `max_chips`).
struct AdaptiveMcOptions {
  int max_chips = 10000;       ///< hard cap
  int min_chips = 128;         ///< always evaluate at least this many
  int batch = 128;             ///< CI checked every `batch` chips
  double ci_half_width = 0.01; ///< stop tolerance; 0 disables early stop
  int threads = 1;             ///< 0 = hardware concurrency
  /// Fill YieldEstimate::stats.alloc_bytes/alloc_count via the opt-in
  /// allocation-counting hook (mathx/alloc_counter.hpp).
  bool count_allocs = false;
};

/// Adaptive-early-stopping versions of the yield estimators. The stopping
/// point is decided at deterministic batch boundaries, so the returned
/// estimate is bit-identical for any thread count, and chips beyond the
/// stopping point are never evaluated (see YieldEstimate::stats).
YieldEstimate inl_yield_mc_adaptive(const core::DacSpec& spec,
                                    double sigma_unit,
                                    const AdaptiveMcOptions& opts,
                                    std::uint64_t seed,
                                    double inl_limit = 0.5,
                                    InlReference ref = InlReference::kBestFit);

YieldEstimate dnl_yield_mc_adaptive(const core::DacSpec& spec,
                                    double sigma_unit,
                                    const AdaptiveMcOptions& opts,
                                    std::uint64_t seed,
                                    double dnl_limit = 0.5);

}  // namespace csdac::dac
