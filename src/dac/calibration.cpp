#include "dac/calibration.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <stdexcept>

#include "dac/lane_kernel.hpp"
#include "dac/static_analysis.hpp"

namespace csdac::dac {

SourceErrors calibrate(const core::DacSpec& spec, const SourceErrors& chip,
                       const CalibrationOptions& opts,
                       mathx::Xoshiro256& rng) {
  SourceErrors out;
  calibrate_into(spec, chip, opts, rng, out);
  return out;
}

void calibrate_into(const core::DacSpec& spec, const SourceErrors& chip,
                    const CalibrationOptions& opts, mathx::Xoshiro256& rng,
                    SourceErrors& out) {
  if (!(opts.range_lsb > 0.0) || opts.bits < 1 || opts.bits > 20 ||
      !(opts.measure_noise_lsb >= 0.0)) {
    throw std::invalid_argument("calibrate: bad options");
  }
  out.unary = chip.unary;
  out.binary = chip.binary;
  const double nominal = spec.unary_weight();
  const double half_range = 0.5 * opts.range_lsb;
  const double step = opts.step_lsb();
  for (double& w : out.unary) {
    // Measured error (with measurement noise), trimmed toward zero.
    const double measured =
        (w - nominal) +
        (opts.measure_noise_lsb > 0.0
             ? mathx::normal(rng, 0.0, opts.measure_noise_lsb)
             : 0.0);
    // The cal DAC applies the nearest quantized correction in range.
    const double trim =
        -std::clamp(std::round(measured / step) * step, -half_range,
                    half_range);
    w += trim;
  }
}

CalChipResult cal_chip_passes(ChipWorkspace& ws, double sigma_unit,
                              const CalibrationOptions& opts,
                              std::uint64_t seed, std::int64_t chip,
                              double inl_limit) {
  detail::count_chip_eval();
  const auto idx = static_cast<std::uint64_t>(chip);
  mathx::stream_rng_into(ws.rng, seed, 2 * idx);
  draw_source_errors_into(ws.spec, sigma_unit, ws.rng, ws.errors);
  transfer_into(ws.spec, ws.errors, ws);
  CalChipResult r;
  r.pass_before = analyze_levels_summary(ws.levels).inl_max < inl_limit;
  mathx::stream_rng_into(ws.rng, seed, 2 * idx + 1);
  calibrate_into(ws.spec, ws.errors, opts, ws.rng, ws.trimmed);
  transfer_into(ws.spec, ws.trimmed, ws);
  r.pass_after = analyze_levels_summary(ws.levels).inl_max < inl_limit;
  return r;
}

namespace {

CalibratedYield run_calibration_mc(const core::DacSpec& spec,
                                   double sigma_unit,
                                   const CalibrationOptions& opts, int chips,
                                   std::uint64_t seed, double inl_limit,
                                   int threads, bool use_workspace) {
  if (chips <= 0) throw std::invalid_argument("calibration_yield_mc: chips");
  if (threads < 0) {
    throw std::invalid_argument("calibration_yield_mc: threads < 0");
  }
  CalibratedYield y;
  y.chips = chips;
  std::atomic<int> pass_before{0}, pass_after{0};
  if (use_workspace) {
    const LaneKernel& k = active_lane_kernel();
    if (k.lanes > 1) {
      // Chip-per-lane SIMD path: full blocks of k.lanes chips go through
      // the vector kernel, the remainder through the scalar chip body.
      // Per-chip results are bit-identical either way.
      std::atomic<std::int64_t> vec_chips{0}, tail_chips{0};
      y.stats = mathx::parallel_for_workspace_blocks(
          chips, threads, k.lanes,
          [&spec, &k] { return ChipWorkspaceXN(spec, k.lanes); },
          [&](ChipWorkspaceXN& ws, std::int64_t lo, std::int64_t hi) {
            int before = 0, after = 0;
            if (hi - lo == k.lanes) {
              bool b[kMaxSimdLanes], a[kMaxSimdLanes];
              k.cal_block(ws, sigma_unit, opts, seed, lo, inl_limit, b, a);
              for (int l = 0; l < k.lanes; ++l) {
                before += b[l] ? 1 : 0;
                after += a[l] ? 1 : 0;
              }
              vec_chips.fetch_add(k.lanes, std::memory_order_relaxed);
            } else {
              for (std::int64_t c = lo; c < hi; ++c) {
                const CalChipResult r = cal_chip_passes(
                    ws.scalar, sigma_unit, opts, seed, c, inl_limit);
                before += r.pass_before ? 1 : 0;
                after += r.pass_after ? 1 : 0;
              }
              tail_chips.fetch_add(hi - lo, std::memory_order_relaxed);
            }
            if (before) {
              pass_before.fetch_add(before, std::memory_order_relaxed);
            }
            if (after) pass_after.fetch_add(after, std::memory_order_relaxed);
          });
      detail::record_lane_run(k, vec_chips.load(), tail_chips.load());
    } else {
      y.stats = mathx::parallel_for_workspace(
          chips, threads, [&spec] { return ChipWorkspace(spec); },
          [&](ChipWorkspace& ws, std::int64_t c) {
            const CalChipResult r =
                cal_chip_passes(ws, sigma_unit, opts, seed, c, inl_limit);
            if (r.pass_before) {
              pass_before.fetch_add(1, std::memory_order_relaxed);
            }
            if (r.pass_after) {
              pass_after.fetch_add(1, std::memory_order_relaxed);
            }
          });
      detail::record_lane_run(k, 0, chips);
    }
  } else {
    y.stats = mathx::parallel_for(chips, threads, [&](std::int64_t c) {
      detail::count_chip_eval();
      const auto idx = static_cast<std::uint64_t>(c);
      mathx::Xoshiro256 draw_rng = mathx::stream_rng(seed, 2 * idx);
      mathx::Xoshiro256 cal_rng = mathx::stream_rng(seed, 2 * idx + 1);
      const SourceErrors raw = draw_source_errors(spec, sigma_unit, draw_rng);
      const StaticMetrics before =
          analyze_transfer(SegmentedDac(spec, raw).transfer());
      if (before.inl_max < inl_limit) {
        pass_before.fetch_add(1, std::memory_order_relaxed);
      }
      const SourceErrors fixed = calibrate(spec, raw, opts, cal_rng);
      const StaticMetrics after =
          analyze_transfer(SegmentedDac(spec, fixed).transfer());
      if (after.inl_max < inl_limit) {
        pass_after.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  y.yield_before = static_cast<double>(pass_before.load()) / chips;
  y.yield_after = static_cast<double>(pass_after.load()) / chips;
  return y;
}

}  // namespace

CalibratedYield calibration_yield_mc(const core::DacSpec& spec,
                                     double sigma_unit,
                                     const CalibrationOptions& opts,
                                     int chips, std::uint64_t seed,
                                     double inl_limit, int threads) {
  return run_calibration_mc(spec, sigma_unit, opts, chips, seed, inl_limit,
                            threads, /*use_workspace=*/true);
}

CalibratedYield calibration_yield_mc_legacy(const core::DacSpec& spec,
                                            double sigma_unit,
                                            const CalibrationOptions& opts,
                                            int chips, std::uint64_t seed,
                                            double inl_limit, int threads) {
  return run_calibration_mc(spec, sigma_unit, opts, chips, seed, inl_limit,
                            threads, /*use_workspace=*/false);
}

CalibratedYield calibrated_inl_yield(const core::DacSpec& spec,
                                     double sigma_unit,
                                     const CalibrationOptions& opts,
                                     int chips, std::uint64_t seed,
                                     double inl_limit, int threads) {
  return calibration_yield_mc(spec, sigma_unit, opts, chips, seed, inl_limit,
                              threads);
}

}  // namespace csdac::dac
