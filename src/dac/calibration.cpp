#include "dac/calibration.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "dac/static_analysis.hpp"

namespace csdac::dac {

SourceErrors calibrate(const core::DacSpec& spec, const SourceErrors& chip,
                       const CalibrationOptions& opts,
                       mathx::Xoshiro256& rng) {
  if (!(opts.range_lsb > 0.0) || opts.bits < 1 || opts.bits > 20 ||
      !(opts.measure_noise_lsb >= 0.0)) {
    throw std::invalid_argument("calibrate: bad options");
  }
  SourceErrors out = chip;
  const double nominal = spec.unary_weight();
  const double half_range = 0.5 * opts.range_lsb;
  const double step = opts.step_lsb();
  for (double& w : out.unary) {
    // Measured error (with measurement noise), trimmed toward zero.
    const double measured =
        (w - nominal) +
        (opts.measure_noise_lsb > 0.0
             ? mathx::normal(rng, 0.0, opts.measure_noise_lsb)
             : 0.0);
    // The cal DAC applies the nearest quantized correction in range.
    const double trim =
        -std::clamp(std::round(measured / step) * step, -half_range,
                    half_range);
    w += trim;
  }
  return out;
}

CalibratedYield calibrated_inl_yield(const core::DacSpec& spec,
                                     double sigma_unit,
                                     const CalibrationOptions& opts,
                                     int chips, std::uint64_t seed,
                                     double inl_limit) {
  if (chips <= 0) throw std::invalid_argument("calibrated_inl_yield: chips");
  mathx::Xoshiro256 rng(seed);
  CalibratedYield y;
  y.chips = chips;
  int pass_before = 0, pass_after = 0;
  for (int c = 0; c < chips; ++c) {
    const SourceErrors raw = draw_source_errors(spec, sigma_unit, rng);
    const StaticMetrics before =
        analyze_transfer(SegmentedDac(spec, raw).transfer());
    if (before.inl_max < inl_limit) ++pass_before;
    const SourceErrors fixed = calibrate(spec, raw, opts, rng);
    const StaticMetrics after =
        analyze_transfer(SegmentedDac(spec, fixed).transfer());
    if (after.inl_max < inl_limit) ++pass_after;
  }
  y.yield_before = static_cast<double>(pass_before) / chips;
  y.yield_after = static_cast<double>(pass_after) / chips;
  return y;
}

}  // namespace csdac::dac
