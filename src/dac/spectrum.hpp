// Spectral metrics of a DAC output record: single-sided spectrum, SFDR,
// SNDR, THD and ENOB, computed with the library's own DFT (Fig. 8's
// "spectrum obtained by applying the DFT to 50 periods of the output").
#pragma once

#include <cstddef>
#include <vector>

#include "mathx/fft.hpp"

namespace csdac::dac {

struct SpectrumResult {
  std::vector<double> freq_hz;   ///< bin center frequencies (single-sided)
  std::vector<double> mag_db;    ///< dB relative to the fundamental (dBc)
  std::size_t fund_bin = 0;
  double fund_db_fs = 0.0;       ///< fundamental relative to record max [dB]
  double sfdr_db = 0.0;          ///< fundamental to worst spur [dBc]
  double sndr_db = 0.0;          ///< signal to total noise+distortion
  double thd_db = 0.0;           ///< total harmonic distortion (first 10)
  double enob = 0.0;             ///< (SNDR - 1.76) / 6.02
};

struct SpectrumOptions {
  mathx::Window window = mathx::Window::kRect;
  /// Bins on each side of the fundamental (and harmonics) treated as part
  /// of that tone (leakage guard). 0 is right for coherent rect capture.
  int guard_bins = 0;
  /// Number of DC bins excluded from the spur/noise search.
  int dc_bins = 1;
  /// Harmonic count for THD.
  int harmonics = 10;
  /// Upper frequency limit [Hz] for the spur/noise search; 0 = Nyquist.
  /// Useful on oversampled DAC waveforms, where the zero-order-hold images
  /// above the converter's own Nyquist are not in-band spurs.
  double max_freq = 0.0;

  /// Throws std::invalid_argument on out-of-range fields (negative guard
  /// or DC bins, harmonics < 1, non-finite or negative max_freq).
  void validate() const;
};

/// Analyzes a real record sampled at `fs`. The fundamental is located
/// automatically (largest non-DC bin) unless `fund_bin_hint` is nonzero.
SpectrumResult analyze_spectrum(const std::vector<double>& samples, double fs,
                                const SpectrumOptions& opts = {},
                                std::size_t fund_bin_hint = 0);

/// Two-tone intermodulation measurement on a coherent record whose tones
/// sit exactly at `bin1` and `bin2`. IMD3 is the worse of the third-order
/// products at 2*f1 - f2 and 2*f2 - f1, in dB relative to the (average)
/// per-tone power; negative numbers are better.
struct ImdResult {
  double tone1_power = 0.0;
  double tone2_power = 0.0;
  double imd3_db = 0.0;
  double imd2_db = 0.0;         ///< worse of f2-f1 and f1+f2 (even order)
  std::size_t imd3_lo_bin = 0;  ///< 2*bin1 - bin2 (folded)
  std::size_t imd3_hi_bin = 0;  ///< 2*bin2 - bin1 (folded)
};
ImdResult analyze_imd(const std::vector<double>& samples, double fs,
                      std::size_t bin1, std::size_t bin2,
                      const SpectrumOptions& opts = {});

}  // namespace csdac::dac
