// Behavioral model of the segmented current-steering DAC (Fig. 1): the
// thermometer-decoded unary segment plus the binary-weighted segment, with
// per-source random mismatch. Levels are expressed in LSB units of current;
// the dynamic model converts them to output voltage across R_L.
#pragma once

#include <vector>

#include "core/spec.hpp"
#include "mathx/rng.hpp"

namespace csdac::dac {

/// One chip's realization of the source errors (in LSB units).
struct SourceErrors {
  /// Actual weight of each unary source (nominal = 2^b each).
  std::vector<double> unary;
  /// Actual weight of each binary source, index k nominal 2^k.
  std::vector<double> binary;
};

/// Draws a chip: every LSB unit is an independent Gaussian with relative
/// sigma `sigma_unit`; a weight-w source is the sum of w units, so its
/// absolute sigma is sigma_unit * sqrt(w) LSB.
SourceErrors draw_source_errors(const core::DacSpec& spec, double sigma_unit,
                                mathx::Xoshiro256& rng);

/// Allocation-free draw into a preallocated SourceErrors (capacity is kept
/// across calls). Bit-identical draws to draw_source_errors.
void draw_source_errors_into(const core::DacSpec& spec, double sigma_unit,
                             mathx::Xoshiro256& rng, SourceErrors& out);

/// The ideal (error-free) realization.
SourceErrors ideal_sources(const core::DacSpec& spec);

/// Per-thread scratch for the allocation-free Monte-Carlo chip kernel:
/// every buffer the draw → transfer → INL/DNL pipeline needs, preallocated
/// once and reused for every chip the owning worker evaluates. Build one
/// per worker via the mathx workspace-factory engine variants
/// (parallel_for_workspace / adaptive_yield_run_workspace); the kernels
/// that fill it live in static_analysis.hpp (mc_chip_metrics) and
/// calibration.hpp.
struct ChipWorkspace {
  explicit ChipWorkspace(const core::DacSpec& spec);

  core::DacSpec spec;     ///< validated copy
  mathx::Xoshiro256 rng;  ///< re-seeded per chip via stream_rng_into
  SourceErrors errors;    ///< mismatch draw
  SourceErrors trimmed;   ///< post-calibration scratch
  std::vector<double> unary_prefix;  ///< num_unary() + 1 prefix sums
  std::vector<double> binsum;        ///< 2^b binary partial sums (per chip)
  std::vector<double> levels;        ///< 2^n transfer levels
  std::vector<double> codes;         ///< fixed ramp 0..2^n-1 (best-fit x)
  std::vector<double> inl;           ///< per-code INL, 2^n
  std::vector<double> dnl;           ///< per-transition DNL, 2^n - 1
};

/// Allocation-free static transfer: prefix sums into ws.unary_prefix and
/// all 2^n levels into ws.levels. Bit-identical to
/// SegmentedDac(spec, errors).transfer().
void transfer_into(const core::DacSpec& spec, const SourceErrors& errors,
                   ChipWorkspace& ws);

/// Static DAC: maps codes to output levels given a source realization.
class SegmentedDac {
 public:
  SegmentedDac(const core::DacSpec& spec, SourceErrors errors);

  const core::DacSpec& spec() const { return spec_; }

  /// Thermometer decode of the m MSBs of `code`: how many unary sources on.
  int unary_count(int code) const;
  /// Binary field of `code`.
  int binary_field(int code) const;

  /// Output level for a code, in LSB units of current.
  double level(int code) const;

  /// All 2^n levels (the static transfer function).
  std::vector<double> transfer() const;

  /// Same levels written into `out` (resized to 2^n), reusing its capacity.
  void transfer_into(std::vector<double>& out) const;

  /// Sum of the weights of the first `k` unary sources in switching order.
  /// The switching order is the identity here; systematic-gradient ordering
  /// is the layout module's business.
  double unary_partial_sum(int k) const;

 private:
  core::DacSpec spec_;
  SourceErrors errors_;
  std::vector<double> unary_prefix_;  ///< prefix sums of unary weights
};

}  // namespace csdac::dac
