// Behavioral model of the segmented current-steering DAC (Fig. 1): the
// thermometer-decoded unary segment plus the binary-weighted segment, with
// per-source random mismatch. Levels are expressed in LSB units of current;
// the dynamic model converts them to output voltage across R_L.
#pragma once

#include <vector>

#include "core/spec.hpp"
#include "mathx/rng.hpp"

namespace csdac::dac {

/// One chip's realization of the source errors (in LSB units).
struct SourceErrors {
  /// Actual weight of each unary source (nominal = 2^b each).
  std::vector<double> unary;
  /// Actual weight of each binary source, index k nominal 2^k.
  std::vector<double> binary;
};

/// Draws a chip: every LSB unit is an independent Gaussian with relative
/// sigma `sigma_unit`; a weight-w source is the sum of w units, so its
/// absolute sigma is sigma_unit * sqrt(w) LSB.
SourceErrors draw_source_errors(const core::DacSpec& spec, double sigma_unit,
                                mathx::Xoshiro256& rng);

/// The ideal (error-free) realization.
SourceErrors ideal_sources(const core::DacSpec& spec);

/// Static DAC: maps codes to output levels given a source realization.
class SegmentedDac {
 public:
  SegmentedDac(const core::DacSpec& spec, SourceErrors errors);

  const core::DacSpec& spec() const { return spec_; }

  /// Thermometer decode of the m MSBs of `code`: how many unary sources on.
  int unary_count(int code) const;
  /// Binary field of `code`.
  int binary_field(int code) const;

  /// Output level for a code, in LSB units of current.
  double level(int code) const;

  /// All 2^n levels (the static transfer function).
  std::vector<double> transfer() const;

  /// Sum of the weights of the first `k` unary sources in switching order.
  /// The switching order is the identity here; systematic-gradient ordering
  /// is the layout module's business.
  double unary_partial_sum(int k) const;

 private:
  core::DacSpec spec_;
  SourceErrors errors_;
  std::vector<double> unary_prefix_;  ///< prefix sums of unary weights
};

}  // namespace csdac::dac
