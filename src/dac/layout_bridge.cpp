#include "dac/layout_bridge.hpp"

#include <cmath>
#include <stdexcept>

#include "dac/static_analysis.hpp"

namespace csdac::dac {

SourceErrors source_errors_from_layout(const core::DacSpec& spec,
                                       const layout::ArrayGeometry& geo,
                                       const std::vector<int>& sequence,
                                       const layout::GradientSpec& gradient,
                                       double sigma_unit,
                                       mathx::Xoshiro256& rng,
                                       bool double_centroid) {
  if (sequence.size() != static_cast<std::size_t>(spec.num_unary())) {
    throw std::invalid_argument(
        "source_errors_from_layout: sequence length != num_unary");
  }
  const auto sys =
      layout::sequence_errors(geo, sequence, gradient, double_centroid);
  SourceErrors e;
  const double uw = spec.unary_weight();
  e.unary.reserve(sys.size());
  for (double err_sys : sys) {
    const double rand_part =
        sigma_unit > 0.0
            ? sigma_unit * std::sqrt(uw) * mathx::normal(rng) / uw
            : 0.0;
    e.unary.push_back(uw * (1.0 + err_sys + rand_part));
  }
  // Binary sources in the center columns: x ~ 0, y spread around center;
  // their systematic error is the gradient value at the array center.
  const double center_err = gradient.error_at(0.0, 0.0);
  for (int k = 0; k < spec.binary_bits; ++k) {
    const double w = std::ldexp(1.0, k);
    const double rand_part =
        sigma_unit > 0.0
            ? sigma_unit * std::sqrt(w) * mathx::normal(rng) / w
            : 0.0;
    e.binary.push_back(w * (1.0 + center_err + rand_part));
  }
  return e;
}

double layout_chip_inl(const core::DacSpec& spec,
                       const layout::ArrayGeometry& geo,
                       const std::vector<int>& sequence,
                       const layout::GradientSpec& gradient,
                       double sigma_unit, mathx::Xoshiro256& rng,
                       bool double_centroid) {
  const SegmentedDac chip(
      spec, source_errors_from_layout(spec, geo, sequence, gradient,
                                      sigma_unit, rng, double_centroid));
  return analyze_transfer(chip.transfer()).inl_max;
}

}  // namespace csdac::dac
