// Self-calibration extension (beyond the paper, after its ref. [10]:
// Cong & Geiger's self-calibrated 14-bit DAC): each unary source is
// measured against the nominal weight and trimmed by a small calibration
// DAC. The residual error is the cal-DAC quantization plus measurement
// noise. Calibration trades the eq. (2) intrinsic-matching area for a
// trim loop: the sizing methodology then only needs to guarantee the
// much-looser PRE-calibration accuracy the trim range can absorb.
#pragma once

#include <cstdint>

#include "dac/dac_model.hpp"
#include "mathx/parallel.hpp"
#include "mathx/rng.hpp"

namespace csdac::dac {

struct CalibrationOptions {
  /// Trim range of the calibration DAC, total span in LSB of the MAIN DAC
  /// (centered on the nominal weight). Errors beyond the range saturate.
  double range_lsb = 4.0;
  /// Calibration DAC resolution: the trim is quantized to
  /// range_lsb / 2^bits steps.
  int bits = 6;
  /// rms error of the measurement used to find the trim [LSB].
  double measure_noise_lsb = 0.0;

  /// Smallest trim step [LSB].
  double step_lsb() const { return range_lsb / (1 << bits); }
};

/// Applies calibration to every unary source (the binary sources are left
/// untouched — their INL contribution is bounded by the segmentation).
/// Returns the post-calibration source errors.
SourceErrors calibrate(const core::DacSpec& spec, const SourceErrors& chip,
                       const CalibrationOptions& opts,
                       mathx::Xoshiro256& rng);

/// Allocation-free calibrate into a preallocated SourceErrors (capacity is
/// kept across calls; `out` must not alias `chip`). Bit-identical trims.
void calibrate_into(const core::DacSpec& spec, const SourceErrors& chip,
                    const CalibrationOptions& opts, mathx::Xoshiro256& rng,
                    SourceErrors& out);

/// Monte-Carlo INL yield with calibration in the loop.
struct CalibratedYield {
  double yield_before = 0.0;
  double yield_after = 0.0;
  int chips = 0;
  mathx::RunStats stats;  ///< engine observability (wall time, chips/s, ...)
};

/// Pass/fail of one calibration Monte-Carlo chip before and after trim.
struct CalChipResult {
  bool pass_before = false;
  bool pass_after = false;
};

/// One calibration chip, allocation-free: mismatch draw from stream 2*chip,
/// pre-cal INL pass/fail, trim with measurement noise from stream
/// 2*chip + 1, post-cal pass/fail. This is the chip body of
/// calibration_yield_mc, exposed so the chip-per-lane SIMD path (and its
/// equivalence tests) can run the exact scalar reference per chip.
CalChipResult cal_chip_passes(ChipWorkspace& ws, double sigma_unit,
                              const CalibrationOptions& opts,
                              std::uint64_t seed, std::int64_t chip,
                              double inl_limit);

/// Runs on the shared mathx::parallel engine. Chip c derives two
/// independent streams from the seed — stream_rng(seed, 2c) for the
/// mismatch draw and stream_rng(seed, 2c+1) for the calibration
/// measurement noise — so the result is bit-identical for any thread
/// count. threads = 0 uses the hardware concurrency.
CalibratedYield calibration_yield_mc(const core::DacSpec& spec,
                                     double sigma_unit,
                                     const CalibrationOptions& opts,
                                     int chips, std::uint64_t seed,
                                     double inl_limit = 0.5, int threads = 1);

/// Reference implementation with the historical per-chip allocations;
/// identical results to calibration_yield_mc. Kept for the equivalence
/// tests and as the bench-harness baseline.
CalibratedYield calibration_yield_mc_legacy(const core::DacSpec& spec,
                                            double sigma_unit,
                                            const CalibrationOptions& opts,
                                            int chips, std::uint64_t seed,
                                            double inl_limit = 0.5,
                                            int threads = 1);

/// Historical name; forwards to calibration_yield_mc.
CalibratedYield calibrated_inl_yield(const core::DacSpec& spec,
                                     double sigma_unit,
                                     const CalibrationOptions& opts,
                                     int chips, std::uint64_t seed,
                                     double inl_limit = 0.5, int threads = 1);

}  // namespace csdac::dac
