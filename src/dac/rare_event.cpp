#include "dac/rare_event.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "dac/dac_model.hpp"
#include "mathx/rare_event.hpp"
#include "mathx/rng.hpp"
#include "obs/metrics.hpp"

namespace csdac::dac {

namespace {

// Process-wide rare-event instruments (same registry a Prometheus dump
// exports, see obs/metrics.hpp). Counters record work done; the gauges
// snapshot the most recent IS run's trust diagnostics.
struct RareInstruments {
  obs::Counter& is_runs;
  obs::Counter& is_chips;
  obs::Counter& strat_runs;
  obs::Counter& strat_chips;
  obs::Counter& bridge_evals;
  obs::Gauge& ess;
  obs::Gauge& ess_fraction;
  obs::Gauge& log_weight_max;
  obs::Gauge& log_weight_min;
  obs::Gauge& strata;
};

RareInstruments& rare_instruments() {
  auto& reg = obs::Registry::global();
  static RareInstruments m{
      reg.counter("rare.is_runs", "Importance-sampled yield runs"),
      reg.counter("rare.is_chips", "Chips drawn under the IS proposal"),
      reg.counter("rare.strat_runs", "Stratified/antithetic yield runs"),
      reg.counter("rare.strat_chips", "Chips drawn by the stratified path"),
      reg.counter("rare.bridge_evals", "Analytic bridge surrogate evals"),
      reg.gauge("rare.ess", "Effective sample size of the last IS run"),
      reg.gauge("rare.ess_fraction", "ESS / chips of the last IS run"),
      reg.gauge("rare.log_weight_max", "Largest log weight of the last IS run"),
      reg.gauge("rare.log_weight_min",
                "Smallest log weight of the last IS run"),
      reg.gauge("rare.strata", "Strata of the last stratified run"),
  };
  return m;
}

/// Orthonormal discrete-cosine modes over the U unary sources:
/// v_k[i] = sqrt(2/U) cos((k+1) pi (i + 1/2) / U), k = 0 .. U-2. These are
/// the DCT-II basis vectors orthogonal to the all-ones direction; their
/// partial sums are the sine shapes of the Brownian-bridge Karhunen-Loeve
/// expansion, so mode k carries a ~1/(k+1)^2 share of the INL excursion
/// variance — the first handful of modes is where INL failures live.
std::vector<double> cosine_modes(int u, int k_modes) {
  std::vector<double> v(static_cast<std::size_t>(k_modes) *
                        static_cast<std::size_t>(u > 0 ? u : 1));
  const double norm = u > 0 ? std::sqrt(2.0 / u) : 0.0;
  for (int k = 0; k < k_modes; ++k) {
    for (int i = 0; i < u; ++i) {
      v[static_cast<std::size_t>(k) * u + i] =
          norm * std::cos((k + 1) * M_PI * (i + 0.5) / u);
    }
  }
  return v;
}

/// Per-worker scratch: the standard chip workspace plus the raw standard-
/// normal draw, the mode matrix and the mode amplitudes.
struct RareWorkspace {
  RareWorkspace(const core::DacSpec& spec, int k_modes)
      : ws(spec),
        z(static_cast<std::size_t>(spec.num_unary() + spec.binary_bits)),
        modes(cosine_modes(spec.num_unary(), k_modes)),
        t(static_cast<std::size_t>(k_modes > 0 ? k_modes : 1)) {}

  ChipWorkspace ws;
  std::vector<double> z;      ///< standard draws, unary then binary
  std::vector<double> modes;  ///< k_modes x num_unary, row-major
  std::vector<double> t;      ///< mode amplitudes of the current chip
};

/// Standard-normal draw per mismatch source, in the exact order
/// draw_source_errors_into consumes the stream (unary then binary).
void draw_standard(const core::DacSpec& spec, mathx::Xoshiro256& rng,
                   std::vector<double>& z) {
  const int n = spec.num_unary() + spec.binary_bits;
  for (int i = 0; i < n; ++i) z[static_cast<std::size_t>(i)] = mathx::normal(rng);
}

/// Maps standard draws to source errors with the library's mismatch model
/// (unit-sigma per LSB, so a weight-w source has sigma_unit*sqrt(w)).
void errors_from_z(const core::DacSpec& spec, double sigma_unit,
                   const std::vector<double>& z, SourceErrors& e) {
  e.unary.clear();
  e.binary.clear();
  const double uw = spec.unary_weight();
  const double su = sigma_unit * std::sqrt(uw);
  for (int i = 0; i < spec.num_unary(); ++i) {
    e.unary.push_back(uw + su * z[static_cast<std::size_t>(i)]);
  }
  for (int k = 0; k < spec.binary_bits; ++k) {
    const double w = std::ldexp(1.0, k);
    e.binary.push_back(w + sigma_unit * std::sqrt(w) *
                               z[static_cast<std::size_t>(spec.num_unary() + k)]);
  }
}

bool chip_fails(RareWorkspace& rw, double limit, InlReference ref) {
  transfer_into(rw.ws.spec, rw.ws.errors, rw.ws);
  const StaticSummary s = analyze_levels_summary(rw.ws.levels, ref);
  return !(s.inl_max < limit);
}

/// Per-mode tilt profile: the first mode is scaled by the full
/// sigma_scale and deeper modes by harmonically tapered factors
/// g_k = 1 + (sigma_scale - 1) / (k + 1). Bridge mode k only carries a
/// 1/(k+1)^2 share of the excursion variance, so a flat tilt wastes
/// weight variance on modes that cannot cause the failure; the taper
/// tracks the K-L energy profile and measurably beats flat tilting.
double mode_scale(double sigma_scale, int k) {
  return 1.0 + (sigma_scale - 1.0) / (k + 1);
}

/// One IS chip: tilt the first k_modes cosine amplitudes by the tapered
/// profile and return the log likelihood ratio log p/q. With pre-tilt
/// amplitudes t_k (i.i.d. standard normal) the proposal realizes
/// a_k = g_k t_k, and per mode log(p/q) = log g_k - (g_k^2 - 1)/2 * t_k^2.
double is_chip(RareWorkspace& rw, double sigma_unit, double g, int k_modes,
               std::uint64_t seed, std::int64_t chip, double limit,
               InlReference ref, unsigned char* fail) {
  detail::count_chip_eval();
  const core::DacSpec& spec = rw.ws.spec;
  mathx::stream_rng_into(rw.ws.rng, seed, static_cast<std::uint64_t>(chip));
  draw_standard(spec, rw.ws.rng, rw.z);
  const int u = spec.num_unary();
  double log_w = 0.0;
  for (int k = 0; k < k_modes; ++k) {
    const double* v = rw.modes.data() + static_cast<std::size_t>(k) * u;
    double t = 0.0;
    for (int i = 0; i < u; ++i) t += v[i] * rw.z[static_cast<std::size_t>(i)];
    rw.t[static_cast<std::size_t>(k)] = t;
    const double gk = mode_scale(g, k);
    log_w += std::log(gk) - 0.5 * (gk * gk - 1.0) * t * t;
  }
  for (int k = 0; k < k_modes; ++k) {
    const double* v = rw.modes.data() + static_cast<std::size_t>(k) * u;
    const double boost =
        (mode_scale(g, k) - 1.0) * rw.t[static_cast<std::size_t>(k)];
    for (int i = 0; i < u; ++i) rw.z[static_cast<std::size_t>(i)] += boost * v[i];
  }
  errors_from_z(spec, sigma_unit, rw.z, rw.ws.errors);
  *fail = chip_fails(rw, limit, ref) ? 1 : 0;
  return log_w;
}

/// One stratified/antithetic chip. Both pair members re-derive the SAME
/// (seed, pair) stream — the chip stays a pure function of its index —
/// then replace the first-mode amplitude with a half-normal magnitude
/// stratified over `strata` equal-probability bins; the antithetic member
/// reflects the intra-bin position (u -> 1-u). The replacement
/// z' = z + (a - t) v keeps z' exactly N(0, I) conditioned on the bin, so
/// the equal-weight stratum average is unbiased for the plain MC yield.
bool strat_chip(RareWorkspace& rw, double sigma_unit, int strata,
                std::uint64_t seed, std::int64_t chip, double limit,
                InlReference ref) {
  detail::count_chip_eval();
  const core::DacSpec& spec = rw.ws.spec;
  const std::int64_t pair = chip / 2;
  const bool anti = (chip & 1) != 0;
  const int s = static_cast<int>(pair % strata);
  mathx::stream_rng_into(rw.ws.rng, seed, static_cast<std::uint64_t>(pair));
  draw_standard(spec, rw.ws.rng, rw.z);
  const double u_raw = mathx::uniform01(rw.ws.rng);
  const double sign = mathx::uniform01(rw.ws.rng) < 0.5 ? -1.0 : 1.0;
  const int u = spec.num_unary();
  const double* v = rw.modes.data();
  double t = 0.0;
  for (int i = 0; i < u; ++i) t += v[i] * rw.z[static_cast<std::size_t>(i)];
  const double u_in = anti ? 1.0 - u_raw : u_raw;
  const double a = sign * mathx::half_normal_inv((s + u_in) / strata);
  for (int i = 0; i < u; ++i) rw.z[static_cast<std::size_t>(i)] += (a - t) * v[i];
  errors_from_z(spec, sigma_unit, rw.z, rw.ws.errors);
  return !chip_fails(rw, limit, ref);
}

}  // namespace

IsYieldEstimate inl_yield_is(const core::DacSpec& spec, double sigma_unit,
                             double sigma_scale, int modes, int chips,
                             std::uint64_t seed, double inl_limit,
                             InlReference ref, int threads) {
  spec.validate();
  if (chips <= 0) throw std::invalid_argument("inl_yield_is: chips <= 0");
  if (threads < 0) throw std::invalid_argument("inl_yield_is: threads < 0");
  if (!(sigma_unit >= 0.0)) {
    throw std::invalid_argument("inl_yield_is: sigma < 0");
  }
  if (!(sigma_scale >= 1.0)) {
    throw std::invalid_argument("inl_yield_is: sigma_scale < 1");
  }
  if (modes < 1) throw std::invalid_argument("inl_yield_is: modes < 1");
  const int k_modes = std::min(modes, std::max(spec.num_unary() - 1, 0));

  std::vector<double> log_w(static_cast<std::size_t>(chips));
  std::vector<unsigned char> fail(static_cast<std::size_t>(chips));
  IsYieldEstimate e;
  e.chips = chips;
  e.stats = mathx::parallel_for_workspace(
      chips, threads,
      [&spec, k_modes] { return RareWorkspace(spec, k_modes); },
      [&](RareWorkspace& rw, std::int64_t c) {
        log_w[static_cast<std::size_t>(c)] =
            is_chip(rw, sigma_unit, sigma_scale, k_modes, seed, c, inl_limit,
                    ref, &fail[static_cast<std::size_t>(c)]);
      });
  const mathx::IsReduction red = mathx::reduce_is_weights(log_w, fail);
  const mathx::IsEstimate est = mathx::is_estimate(red);
  e.fails = red.fails;
  e.yield = 1.0 - est.fail_probability;
  e.ci95 = est.ci95;
  e.ess = est.ess;
  e.ess_fraction = est.ess_fraction;
  e.log_weight_max = red.log_w_max;
  e.log_weight_min = red.log_w_min;
  e.low_ess = e.ess_fraction < kEssTrustFraction;

  RareInstruments& m = rare_instruments();
  m.is_runs.add(1);
  m.is_chips.add(chips);
  m.ess.set(e.ess);
  m.ess_fraction.set(e.ess_fraction);
  m.log_weight_max.set(e.log_weight_max);
  m.log_weight_min.set(e.log_weight_min);
  return e;
}

StratYieldEstimate inl_yield_stratified(const core::DacSpec& spec,
                                        double sigma_unit, int strata,
                                        int chips, std::uint64_t seed,
                                        double inl_limit, InlReference ref,
                                        int threads) {
  spec.validate();
  if (chips < 2) throw std::invalid_argument("inl_yield_stratified: chips < 2");
  if (threads < 0) {
    throw std::invalid_argument("inl_yield_stratified: threads < 0");
  }
  if (!(sigma_unit >= 0.0)) {
    throw std::invalid_argument("inl_yield_stratified: sigma < 0");
  }
  if (strata < 1) {
    throw std::invalid_argument("inl_yield_stratified: strata < 1");
  }
  if (spec.num_unary() < 2) {
    throw std::invalid_argument(
        "inl_yield_stratified: needs a thermometer segment (num_unary >= 2)");
  }
  const std::int64_t pairs = chips / 2;
  if (pairs < strata) {
    throw std::invalid_argument("inl_yield_stratified: fewer pairs than strata");
  }
  const std::int64_t n = pairs * 2;

  std::vector<unsigned char> pass(static_cast<std::size_t>(n));
  StratYieldEstimate e;
  e.chips = n;
  e.pairs = pairs;
  e.strata = strata;
  e.stats = mathx::parallel_for_workspace(
      n, threads, [&spec] { return RareWorkspace(spec, 1); },
      [&](RareWorkspace& rw, std::int64_t c) {
        pass[static_cast<std::size_t>(c)] =
            strat_chip(rw, sigma_unit, strata, seed, c, inl_limit, ref) ? 1
                                                                        : 0;
      });
  // Sequential pair reduction in index order: thread-count invariant.
  std::vector<mathx::StratumMoments> mom(static_cast<std::size_t>(strata));
  for (std::int64_t j = 0; j < pairs; ++j) {
    mathx::StratumMoments& m = mom[static_cast<std::size_t>(j % strata)];
    const double y = 0.5 * (pass[static_cast<std::size_t>(2 * j)] +
                            pass[static_cast<std::size_t>(2 * j + 1)]);
    ++m.pairs;
    m.sum_y += y;
    m.sum_y2 += y * y;
  }
  const mathx::StratEstimate se = mathx::stratified_estimate(mom);
  e.yield = se.mean;
  e.ci95 = se.ci95;

  RareInstruments& m = rare_instruments();
  m.strat_runs.add(1);
  m.strat_chips.add(n);
  m.strata.set(static_cast<double>(strata));
  return e;
}

BridgeYieldEstimate inl_yield_bridge(const core::DacSpec& spec,
                                     double sigma_unit, double inl_limit) {
  spec.validate();
  if (!(sigma_unit > 0.0)) {
    throw std::invalid_argument("inl_yield_bridge: sigma <= 0");
  }
  if (!(inl_limit > 0.0)) {
    throw std::invalid_argument("inl_yield_bridge: limit <= 0");
  }
  BridgeYieldEstimate b;
  b.sigma_inl = sigma_unit * std::sqrt(spec.unary_weight() *
                                       static_cast<double>(spec.num_unary()));
  b.c = inl_limit / b.sigma_inl;
  b.yield = mathx::kolmogorov_cdf(b.c);
  rare_instruments().bridge_evals.add(1);
  return b;
}

}  // namespace csdac::dac
