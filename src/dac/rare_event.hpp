// Rare-event INL yield estimators: the paper's yield_V = yield^(1/4)
// sizing rule pushes per-variable yields to 99.99 %+, where brute-force
// Monte Carlo needs millions of chips to resolve the failure tail. This
// layer makes that regime cheap with three complementary estimators:
//
//  * Importance sampling (inl_yield_is): inflate the mismatch draw by a
//    tunable factor along the dominant INL modes and reweight each chip
//    by the exact likelihood ratio. Thermometer-array INL is
//    asymptotically a Brownian-bridge functional (Heydenreich-van der
//    Hofstad-Radulov, arXiv math/0606584), so the bridge's leading
//    cosine modes are where INL failures live; tilting only those K
//    modes keeps the weight variance bounded (inflating all ~2^n
//    mismatch dimensions collapses the effective sample size — the
//    classic high-dimension IS failure, which the ESS diagnostics here
//    are designed to expose).
//
//  * Stratified + antithetic sampling (inl_yield_stratified): stratify
//    the half-normal magnitude of the first bridge-mode amplitude and
//    reflect it within each stratum for the antithetic partner. Plain
//    antithetic pairing (z -> -z) is useless for INL yield because
//    max|INL| is symmetric under sign flips; reflecting the dominant
//    magnitude is the antithetic transform that actually anticorrelates
//    the pass/fail indicator.
//
//  * Analytic bridge surrogate (inl_yield_bridge): no sampling at all —
//    the Kolmogorov distribution of the bridge maximum excursion gives a
//    closed-form yield estimate to cross-check the sampled numbers and
//    prune the design space before any chips are drawn.
//
// All three keep the engine's determinism contract: per-chip randomness
// is a pure function of (seed, chip index) via the shared stream_rng
// discipline, per-chip outputs land in index-addressed slots, and the
// final reduction runs sequentially in index order — results are
// bit-identical for any thread count.
#pragma once

#include <cstdint>

#include "core/spec.hpp"
#include "dac/static_analysis.hpp"
#include "mathx/parallel.hpp"

namespace csdac::dac {

/// Self-normalized importance-sampling weights below this effective-
/// sample-size fraction are flagged untrustworthy (IsYieldEstimate::
/// low_ess): a handful of chips then carry nearly all the weight and the
/// reported CI is itself unreliable. Reduce sigma_scale (or modes) until
/// the fraction clears this.
inline constexpr double kEssTrustFraction = 0.02;

struct IsYieldEstimate {
  std::int64_t chips = 0;    ///< proposal draws evaluated
  std::int64_t fails = 0;    ///< raw failures under the inflated proposal
  double yield = 0.0;        ///< 1 - self-normalized failure probability
  double ci95 = 0.0;         ///< delta-method 95 % half-width
  double ess = 0.0;          ///< effective sample size (sum w)^2 / sum w^2
  double ess_fraction = 0.0; ///< ess / chips
  double log_weight_max = 0.0;  ///< reweight extremes (diagnostics)
  double log_weight_min = 0.0;
  bool low_ess = false;      ///< ess_fraction < kEssTrustFraction
  mathx::RunStats stats;
};

/// Importance-sampled INL yield. The proposal scales the amplitudes of
/// the first `modes` discrete-cosine modes of the unary mismatch vector
/// by `sigma_scale` (>= 1; 1 recovers plain MC with unit weights);
/// `modes` is clamped to the number of available cosine modes
/// (num_unary() - 1). Failure is max|INL| >= inl_limit, judged exactly
/// like inl_yield_mc. Bit-identical for any thread count.
IsYieldEstimate inl_yield_is(const core::DacSpec& spec, double sigma_unit,
                             double sigma_scale, int modes, int chips,
                             std::uint64_t seed, double inl_limit = 0.5,
                             InlReference ref = InlReference::kBestFit,
                             int threads = 1);

struct StratYieldEstimate {
  std::int64_t chips = 0;  ///< chips evaluated (= 2 * pairs)
  std::int64_t pairs = 0;  ///< antithetic pairs
  int strata = 0;
  double yield = 0.0;
  double ci95 = 0.0;  ///< stratified 95 % half-width
  mathx::RunStats stats;
};

/// Stratified + antithetic INL yield: chips come in pairs sharing one
/// (seed, pair) stream; the half-normal magnitude of the first bridge
/// mode is stratified over `strata` equal-probability bins (pair j lands
/// in bin j % strata) and reflected within the bin for the second pair
/// member. `chips` is rounded down to a whole number of pairs, and
/// strata must not exceed the pair count. Unbiased for the same yield as
/// inl_yield_mc; bit-identical for any thread count.
StratYieldEstimate inl_yield_stratified(
    const core::DacSpec& spec, double sigma_unit, int strata, int chips,
    std::uint64_t seed, double inl_limit = 0.5,
    InlReference ref = InlReference::kBestFit, int threads = 1);

struct BridgeYieldEstimate {
  double yield = 0.0;      ///< P(sup |bridge| <= normalized limit)
  double c = 0.0;          ///< inl_limit / sigma_inl, the normalized limit
  double sigma_inl = 0.0;  ///< bridge scale: sigma_unit * sqrt(w * U) [LSB]
};

/// Closed-form Brownian-bridge surrogate for endpoint-referenced INL of
/// the thermometer segment: with U unary sources of weight w, the INL at
/// the unary code boundaries is the discrete bridge of the per-source
/// errors, whose maximum excursion converges to sigma_unit*sqrt(w*U)
/// times the Kolmogorov law (arXiv math/0606584). Exact in the U -> inf
/// limit; an asymptotic cross-check (it ignores binary-segment wiggle
/// and discreteness) rather than a replacement for sampling. Requires
/// sigma_unit > 0.
BridgeYieldEstimate inl_yield_bridge(const core::DacSpec& spec,
                                     double sigma_unit,
                                     double inl_limit = 0.5);

}  // namespace csdac::dac
