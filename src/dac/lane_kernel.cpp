#include "dac/lane_kernel.hpp"

#include <stdexcept>

#include "dac/lane_kernel_impl.hpp"
#include "obs/metrics.hpp"

namespace csdac::dac {

ChipWorkspaceXN::ChipWorkspaceXN(const core::DacSpec& s, int nlanes)
    : spec(s), lanes(nlanes), scalar(s) {
  spec.validate();
  if (lanes < 1 || lanes > kMaxSimdLanes) {
    throw std::invalid_argument("ChipWorkspaceXN: bad lane count");
  }
  const auto ll = static_cast<std::size_t>(lanes);
  const auto nu = static_cast<std::size_t>(spec.num_unary());
  const auto nb = static_cast<std::size_t>(spec.binary_bits);
  const auto n_codes = static_cast<std::size_t>(1) << spec.nbits;
  unary.resize(nu * ll, 0.0);
  binary.resize(nb * ll, 0.0);
  trimmed_unary.resize(nu * ll, 0.0);
  unary_prefix.resize((nu + 1) * ll, 0.0);
  binsum.resize((static_cast<std::size_t>(1) << spec.binary_bits) * ll, 0.0);
  levels.resize(n_codes * ll, 0.0);
}

namespace detail {

LaneView lane_view(ChipWorkspaceXN& ws) {
  LaneView v;
  v.lanes = ws.lanes;
  v.num_unary = ws.spec.num_unary();
  v.binary_bits = ws.spec.binary_bits;
  v.n_codes = 1 << ws.spec.nbits;
  v.unary_weight = static_cast<double>(ws.spec.unary_weight());
  v.unary = ws.unary.data();
  v.binary = ws.binary.data();
  v.trimmed_unary = ws.trimmed_unary.data();
  v.unary_prefix = ws.unary_prefix.data();
  v.binsum = ws.binsum.data();
  v.levels = ws.levels.data();
  return v;
}

void cal_trim_lanes(ChipWorkspaceXN& ws, const CalibrationOptions& opts,
                    std::uint64_t seed, std::int64_t chip0) {
  ChipWorkspace& s = ws.scalar;
  const auto nu = static_cast<std::size_t>(ws.spec.num_unary());
  const auto nb = static_cast<std::size_t>(ws.spec.binary_bits);
  const auto ll = static_cast<std::size_t>(ws.lanes);
  s.errors.unary.resize(nu);
  s.errors.binary.resize(nb);
  for (std::size_t l = 0; l < ll; ++l) {
    for (std::size_t i = 0; i < nu; ++i) {
      s.errors.unary[i] = ws.unary[i * ll + l];
    }
    for (std::size_t k = 0; k < nb; ++k) {
      s.errors.binary[k] = ws.binary[k * ll + l];
    }
    mathx::stream_rng_into(
        s.rng, seed,
        2 * (static_cast<std::uint64_t>(chip0) + l) + 1);
    calibrate_into(ws.spec, s.errors, opts, s.rng, s.trimmed);
    for (std::size_t i = 0; i < nu; ++i) {
      ws.trimmed_unary[i * ll + l] = s.trimmed.unary[i];
    }
  }
}

void throw_bad_sigma() {
  throw std::invalid_argument("draw_source_errors: sigma < 0");
}

void throw_degenerate() {
  throw std::invalid_argument("analyze: degenerate x");
}

void throw_flat() {
  throw std::invalid_argument("analyze_transfer: flat");
}

namespace {

/// simd.* instruments, registered eagerly (all three dispatch counters
/// exist in every exposition, so check_metrics.py can assert "exactly one
/// is positive").
struct SimdMetrics {
  obs::Counter& dispatch_scalar;
  obs::Counter& dispatch_sse2;
  obs::Counter& dispatch_avx2;
  obs::Counter& lanes_utilized;
  obs::Counter& chips_scalar_tail;
  obs::Gauge& lane_width;

  static SimdMetrics& get() {
    static SimdMetrics m{
        obs::Registry::global().counter(
            "simd.dispatch.scalar", "MC runs dispatched to the scalar kernel"),
        obs::Registry::global().counter(
            "simd.dispatch.sse2", "MC runs dispatched to the SSE2 kernel"),
        obs::Registry::global().counter(
            "simd.dispatch.avx2", "MC runs dispatched to the AVX2 kernel"),
        obs::Registry::global().counter(
            "simd.lanes_utilized",
            "chips evaluated through SIMD vector lanes"),
        obs::Registry::global().counter(
            "simd.chips_scalar_tail",
            "chips evaluated by the scalar kernel (remainder blocks or "
            "scalar dispatch)"),
        obs::Registry::global().gauge(
            "simd.lane_width", "lanes of the most recently dispatched kernel"),
    };
    return m;
  }
};

}  // namespace

void record_lane_run(const LaneKernel& k, std::int64_t vector_chips,
                     std::int64_t scalar_tail_chips) {
  SimdMetrics& m = SimdMetrics::get();
  switch (k.backend) {
    case mathx::SimdBackend::kScalar:
      m.dispatch_scalar.add(1);
      break;
    case mathx::SimdBackend::kSse2:
      m.dispatch_sse2.add(1);
      break;
    case mathx::SimdBackend::kAvx2:
      m.dispatch_avx2.add(1);
      break;
  }
  if (vector_chips > 0) m.lanes_utilized.add(vector_chips);
  if (scalar_tail_chips > 0) m.chips_scalar_tail.add(scalar_tail_chips);
  m.lane_width.set(static_cast<double>(k.lanes));
}

}  // namespace detail

namespace {

const LaneKernel& scalar_kernel() {
  // The shared template at width 1: the scalar dispatch entry doubles as
  // the everywhere-runnable instantiation the template tests pin against
  // mc_chip_metrics (the engine's lanes==1 route bypasses it and runs
  // mc_chip_metrics directly).
  static const LaneKernel k =
      LaneKernelImpl<mathx::ScalarOps>::kernel(mathx::SimdBackend::kScalar);
  return k;
}

}  // namespace

const LaneKernel* lane_kernel(mathx::SimdBackend backend) {
  switch (backend) {
    case mathx::SimdBackend::kScalar:
      return &scalar_kernel();
    case mathx::SimdBackend::kSse2:
      return detail::lane_kernel_sse2();
    case mathx::SimdBackend::kAvx2:
      return detail::lane_kernel_avx2();
  }
  return nullptr;
}

const LaneKernel& active_lane_kernel() {
  mathx::SimdBackend b = mathx::simd_backend();
  for (;;) {
    if (const LaneKernel* k = lane_kernel(b)) return *k;
    // Downgrade to the next narrower backend compiled into this build.
    b = b == mathx::SimdBackend::kAvx2 ? mathx::SimdBackend::kSse2
                                       : mathx::SimdBackend::kScalar;
  }
}

void mc_chip_metrics_xN(const LaneKernel& k, ChipWorkspaceXN& ws,
                        double sigma_unit, std::uint64_t seed,
                        std::int64_t chip0, InlReference ref,
                        StaticSummary* out) {
  if (ws.lanes != k.lanes) {
    throw std::invalid_argument("mc_chip_metrics_xN: lane mismatch");
  }
  k.mc_block(ws, sigma_unit, seed, chip0, ref, out);
}

}  // namespace csdac::dac
