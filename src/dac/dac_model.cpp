#include "dac/dac_model.hpp"

#include <cmath>
#include <stdexcept>

namespace csdac::dac {

SourceErrors draw_source_errors(const core::DacSpec& spec, double sigma_unit,
                                mathx::Xoshiro256& rng) {
  if (!(sigma_unit >= 0.0)) {
    throw std::invalid_argument("draw_source_errors: sigma < 0");
  }
  SourceErrors e;
  const double uw = spec.unary_weight();
  e.unary.reserve(static_cast<std::size_t>(spec.num_unary()));
  for (int i = 0; i < spec.num_unary(); ++i) {
    // Sum of `uw` independent unit draws: sigma scales with sqrt(weight).
    e.unary.push_back(uw + sigma_unit * std::sqrt(uw) * mathx::normal(rng));
  }
  e.binary.reserve(static_cast<std::size_t>(spec.binary_bits));
  for (int k = 0; k < spec.binary_bits; ++k) {
    const double w = std::ldexp(1.0, k);
    e.binary.push_back(w + sigma_unit * std::sqrt(w) * mathx::normal(rng));
  }
  return e;
}

SourceErrors ideal_sources(const core::DacSpec& spec) {
  SourceErrors e;
  for (int i = 0; i < spec.num_unary(); ++i) {
    e.unary.push_back(spec.unary_weight());
  }
  for (int k = 0; k < spec.binary_bits; ++k) {
    e.binary.push_back(std::ldexp(1.0, k));
  }
  return e;
}

SegmentedDac::SegmentedDac(const core::DacSpec& spec, SourceErrors errors)
    : spec_(spec), errors_(std::move(errors)) {
  spec_.validate();
  if (errors_.unary.size() != static_cast<std::size_t>(spec_.num_unary()) ||
      errors_.binary.size() !=
          static_cast<std::size_t>(spec_.binary_bits)) {
    throw std::invalid_argument("SegmentedDac: error vector size mismatch");
  }
  unary_prefix_.assign(errors_.unary.size() + 1, 0.0);
  for (std::size_t i = 0; i < errors_.unary.size(); ++i) {
    unary_prefix_[i + 1] = unary_prefix_[i] + errors_.unary[i];
  }
}

int SegmentedDac::unary_count(int code) const {
  return code >> spec_.binary_bits;
}

int SegmentedDac::binary_field(int code) const {
  return code & ((1 << spec_.binary_bits) - 1);
}

double SegmentedDac::level(int code) const {
  if (code < 0 || code >= (1 << spec_.nbits)) {
    throw std::out_of_range("SegmentedDac::level: code out of range");
  }
  double lvl = unary_prefix_[static_cast<std::size_t>(unary_count(code))];
  int bits = binary_field(code);
  for (int k = 0; bits != 0; ++k, bits >>= 1) {
    if (bits & 1) lvl += errors_.binary[static_cast<std::size_t>(k)];
  }
  return lvl;
}

std::vector<double> SegmentedDac::transfer() const {
  const int n_codes = 1 << spec_.nbits;
  std::vector<double> out(static_cast<std::size_t>(n_codes));
  for (int c = 0; c < n_codes; ++c) {
    out[static_cast<std::size_t>(c)] = level(c);
  }
  return out;
}

double SegmentedDac::unary_partial_sum(int k) const {
  if (k < 0 || k > spec_.num_unary()) {
    throw std::out_of_range("unary_partial_sum: bad k");
  }
  return unary_prefix_[static_cast<std::size_t>(k)];
}

}  // namespace csdac::dac
