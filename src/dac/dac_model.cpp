#include "dac/dac_model.hpp"

#include <cmath>
#include <stdexcept>

namespace csdac::dac {

SourceErrors draw_source_errors(const core::DacSpec& spec, double sigma_unit,
                                mathx::Xoshiro256& rng) {
  SourceErrors e;
  draw_source_errors_into(spec, sigma_unit, rng, e);
  return e;
}

void draw_source_errors_into(const core::DacSpec& spec, double sigma_unit,
                             mathx::Xoshiro256& rng, SourceErrors& e) {
  if (!(sigma_unit >= 0.0)) {
    throw std::invalid_argument("draw_source_errors: sigma < 0");
  }
  e.unary.clear();
  e.binary.clear();
  const double uw = spec.unary_weight();
  e.unary.reserve(static_cast<std::size_t>(spec.num_unary()));
  for (int i = 0; i < spec.num_unary(); ++i) {
    // Sum of `uw` independent unit draws: sigma scales with sqrt(weight).
    e.unary.push_back(uw + sigma_unit * std::sqrt(uw) * mathx::normal(rng));
  }
  e.binary.reserve(static_cast<std::size_t>(spec.binary_bits));
  for (int k = 0; k < spec.binary_bits; ++k) {
    const double w = std::ldexp(1.0, k);
    e.binary.push_back(w + sigma_unit * std::sqrt(w) * mathx::normal(rng));
  }
}

SourceErrors ideal_sources(const core::DacSpec& spec) {
  SourceErrors e;
  for (int i = 0; i < spec.num_unary(); ++i) {
    e.unary.push_back(spec.unary_weight());
  }
  for (int k = 0; k < spec.binary_bits; ++k) {
    e.binary.push_back(std::ldexp(1.0, k));
  }
  return e;
}

ChipWorkspace::ChipWorkspace(const core::DacSpec& s)
    : spec(s), rng(0) {
  spec.validate();
  const auto n_codes = static_cast<std::size_t>(1) << spec.nbits;
  errors.unary.reserve(static_cast<std::size_t>(spec.num_unary()));
  errors.binary.reserve(static_cast<std::size_t>(spec.binary_bits));
  trimmed.unary.reserve(static_cast<std::size_t>(spec.num_unary()));
  trimmed.binary.reserve(static_cast<std::size_t>(spec.binary_bits));
  unary_prefix.resize(static_cast<std::size_t>(spec.num_unary()) + 1, 0.0);
  binsum.resize(static_cast<std::size_t>(1) << spec.binary_bits, 0.0);
  levels.resize(n_codes, 0.0);
  codes.resize(n_codes);
  for (std::size_t i = 0; i < n_codes; ++i) {
    codes[i] = static_cast<double>(i);
  }
  inl.resize(n_codes, 0.0);
  dnl.resize(n_codes - 1, 0.0);
}

namespace {

// Sum of the selected binary sources in increasing bit order, accumulated
// separately from the unary prefix. Keeping this sub-sum self-contained is
// what lets the workspace transfer tabulate all 2^b of them per chip and
// stay bit-identical: binsum[bits] is built with this exact accumulation
// order.
inline double binary_partial_sum(const std::vector<double>& binary,
                                 int bits) {
  double s = 0.0;
  for (int k = 0; bits != 0; ++k, bits >>= 1) {
    if (bits & 1) s += binary[static_cast<std::size_t>(k)];
  }
  return s;
}

// The one level computation: prefix sum of the switched-on unary sources
// plus the binary partial sum. Every transfer path (member and workspace)
// funnels through this structure so they are bit-identical by construction.
inline double code_level(const std::vector<double>& unary_prefix,
                         const std::vector<double>& binary, int code,
                         int binary_bits) {
  return unary_prefix[static_cast<std::size_t>(code >> binary_bits)] +
         binary_partial_sum(binary, code & ((1 << binary_bits) - 1));
}

}  // namespace

void transfer_into(const core::DacSpec& spec, const SourceErrors& errors,
                   ChipWorkspace& ws) {
  if (errors.unary.size() != static_cast<std::size_t>(spec.num_unary()) ||
      errors.binary.size() != static_cast<std::size_t>(spec.binary_bits) ||
      ws.unary_prefix.size() != errors.unary.size() + 1 ||
      ws.levels.size() != (static_cast<std::size_t>(1) << spec.nbits)) {
    throw std::invalid_argument("transfer_into: size mismatch");
  }
  ws.unary_prefix[0] = 0.0;
  for (std::size_t i = 0; i < errors.unary.size(); ++i) {
    ws.unary_prefix[i + 1] = ws.unary_prefix[i] + errors.unary[i];
  }
  // Tabulate every binary partial sum once per chip. binsum[j] reproduces
  // binary_partial_sum(binary, j) exactly: stripping the top set bit leaves
  // the prefix of the same ascending-bit accumulation, so the association
  // — and therefore every rounding — is identical to code_level's.
  ws.binsum[0] = 0.0;
  for (int j = 1; j < (1 << spec.binary_bits); ++j) {
    int k = 0;
    while ((j >> (k + 1)) != 0) ++k;  // index of the top set bit
    ws.binsum[static_cast<std::size_t>(j)] =
        ws.binsum[static_cast<std::size_t>(j ^ (1 << k))] +
        errors.binary[static_cast<std::size_t>(k)];
  }
  const int n_codes = 1 << spec.nbits;
  const int mask = (1 << spec.binary_bits) - 1;
  for (int c = 0; c < n_codes; ++c) {
    ws.levels[static_cast<std::size_t>(c)] =
        ws.unary_prefix[static_cast<std::size_t>(c >> spec.binary_bits)] +
        ws.binsum[static_cast<std::size_t>(c & mask)];
  }
}

SegmentedDac::SegmentedDac(const core::DacSpec& spec, SourceErrors errors)
    : spec_(spec), errors_(std::move(errors)) {
  spec_.validate();
  if (errors_.unary.size() != static_cast<std::size_t>(spec_.num_unary()) ||
      errors_.binary.size() !=
          static_cast<std::size_t>(spec_.binary_bits)) {
    throw std::invalid_argument("SegmentedDac: error vector size mismatch");
  }
  unary_prefix_.assign(errors_.unary.size() + 1, 0.0);
  for (std::size_t i = 0; i < errors_.unary.size(); ++i) {
    unary_prefix_[i + 1] = unary_prefix_[i] + errors_.unary[i];
  }
}

int SegmentedDac::unary_count(int code) const {
  return code >> spec_.binary_bits;
}

int SegmentedDac::binary_field(int code) const {
  return code & ((1 << spec_.binary_bits) - 1);
}

double SegmentedDac::level(int code) const {
  if (code < 0 || code >= (1 << spec_.nbits)) {
    throw std::out_of_range("SegmentedDac::level: code out of range");
  }
  return code_level(unary_prefix_, errors_.binary, code, spec_.binary_bits);
}

std::vector<double> SegmentedDac::transfer() const {
  std::vector<double> out;
  transfer_into(out);
  return out;
}

void SegmentedDac::transfer_into(std::vector<double>& out) const {
  const int n_codes = 1 << spec_.nbits;
  out.resize(static_cast<std::size_t>(n_codes));
  for (int c = 0; c < n_codes; ++c) {
    out[static_cast<std::size_t>(c)] =
        code_level(unary_prefix_, errors_.binary, c, spec_.binary_bits);
  }
}

double SegmentedDac::unary_partial_sum(int k) const {
  if (k < 0 || k > spec_.num_unary()) {
    throw std::out_of_range("unary_partial_sum: bad k");
  }
  return unary_prefix_[static_cast<std::size_t>(k)];
}

}  // namespace csdac::dac
