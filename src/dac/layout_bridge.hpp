// Bridge between the physical design (layout module) and the behavioral
// converter model: builds a SegmentedDac whose unary sources carry BOTH the
// systematic gradient error implied by their array position / switching
// order AND a random Pelgrom draw — the complete static error budget of the
// fabricated chip (Sections 1 + 4 combined).
#pragma once

#include "dac/dac_model.hpp"
#include "layout/gradient.hpp"
#include "layout/switching.hpp"
#include "mathx/rng.hpp"

namespace csdac::dac {

/// Builds the per-source error set for a chip placed on `geo` with the
/// switching order `sequence` under systematic gradient `gradient`, with
/// random unit mismatch `sigma_unit` (0 disables the random part).
/// `double_centroid` applies the 16-sub-unit common-centroid split to the
/// systematic component. The binary sources sit in the dedicated center
/// columns (Fig. 5), i.e. at x ~ 0; their systematic error uses the array
/// center value.
SourceErrors source_errors_from_layout(const core::DacSpec& spec,
                                       const layout::ArrayGeometry& geo,
                                       const std::vector<int>& sequence,
                                       const layout::GradientSpec& gradient,
                                       double sigma_unit,
                                       mathx::Xoshiro256& rng,
                                       bool double_centroid = true);

/// Convenience: max |INL| (best-fit, LSB) of a chip with the given layout
/// and error budget.
double layout_chip_inl(const core::DacSpec& spec,
                       const layout::ArrayGeometry& geo,
                       const std::vector<int>& sequence,
                       const layout::GradientSpec& gradient,
                       double sigma_unit, mathx::Xoshiro256& rng,
                       bool double_centroid = true);

}  // namespace csdac::dac
