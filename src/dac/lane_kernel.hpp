// Chip-per-lane Monte-Carlo kernels: the SIMD counterpart of
// mc_chip_metrics. A LaneKernel evaluates `lanes` consecutive chips at
// once, one chip per vector lane, with every lane performing the scalar
// kernel's arithmetic in the scalar order — so the per-chip metrics are
// bit-identical to mc_chip_metrics / the calibration chip pass, which the
// equivalence tests enforce with EXPECT_EQ.
//
// Backends are separate translation units (lane_kernel_sse2.cpp with
// baseline flags — SSE2 is part of x86-64 —, lane_kernel_avx2.cpp compiled
// with -mavx2) instantiating the shared LaneKernelImpl template over the
// mathx Ops policies; active_lane_kernel() picks the widest one the
// runtime dispatch (mathx::simd_backend, CSDAC_SIMD override) allows.
#pragma once

#include <cstdint>
#include <vector>

#include "core/spec.hpp"
#include "dac/calibration.hpp"
#include "dac/static_analysis.hpp"
#include "mathx/simd.hpp"

namespace csdac::dac {

/// Widest lane count any backend uses (AVX2: 4 doubles). Callers size
/// stack output arrays with this.
inline constexpr int kMaxSimdLanes = 4;

/// Per-worker scratch for the lane-batched MC path: the widened
/// ChipWorkspace. Arrays are lane-interleaved — element i of lane l lives
/// at [i * lanes + l], so one vector load/store touches element i of every
/// lane at once. Also embeds a plain scalar ChipWorkspace for the
/// remainder chips of a run (chips % lanes) and for the per-lane scalar
/// calibration trim.
struct ChipWorkspaceXN {
  ChipWorkspaceXN(const core::DacSpec& spec, int lanes);

  core::DacSpec spec;   ///< validated copy
  int lanes;            ///< chips per block
  ChipWorkspace scalar; ///< tail chips + calibration gather/scatter
  std::vector<double> unary;          ///< num_unary() x lanes mismatch draw
  std::vector<double> binary;         ///< binary_bits x lanes
  std::vector<double> trimmed_unary;  ///< post-calibration unary weights
  std::vector<double> unary_prefix;   ///< (num_unary()+1) x lanes
  std::vector<double> binsum;         ///< 2^b x lanes partial sums
  std::vector<double> levels;         ///< 2^n x lanes transfer levels
};

/// Raw-pointer view of a ChipWorkspaceXN plus the spec numbers the kernels
/// need. The per-ISA translation units work exclusively through this view:
/// keeping std::vector/DacSpec member functions out of the -mavx2 TU means
/// no shared inline function is ever emitted with AVX2 code (which the
/// linker could otherwise pick for the whole program).
struct LaneView {
  int lanes = 0;
  int num_unary = 0;
  int binary_bits = 0;
  int n_codes = 0;
  double unary_weight = 0.0;
  double* unary = nullptr;
  double* binary = nullptr;
  double* trimmed_unary = nullptr;
  double* unary_prefix = nullptr;
  double* binsum = nullptr;
  double* levels = nullptr;
};

/// One SIMD backend's chip-block kernels, as plain function pointers so
/// the dispatch is a table lookup and the per-ISA code stays confined to
/// its own translation unit.
struct LaneKernel {
  mathx::SimdBackend backend = mathx::SimdBackend::kScalar;
  int lanes = 1;

  /// Evaluates chips [chip0, chip0 + lanes): per-lane mismatch draw
  /// (stream chip0 + l), transfer, INL/DNL maxima into out[0..lanes).
  /// Bit-identical to mc_chip_metrics(ws, sigma_unit, seed, chip0 + l).
  void (*mc_block)(ChipWorkspaceXN& ws, double sigma_unit,
                   std::uint64_t seed, std::int64_t chip0, InlReference ref,
                   StaticSummary* out) = nullptr;

  /// Calibration chip block: per-lane draw (stream 2*(chip0+l)), pre-cal
  /// pass/fail, scalar per-lane trim (stream 2*(chip0+l)+1), post-cal
  /// pass/fail. Bit-identical to the calibration_yield_mc chip body.
  void (*cal_block)(ChipWorkspaceXN& ws, double sigma_unit,
                    const CalibrationOptions& opts, std::uint64_t seed,
                    std::int64_t chip0, double inl_limit, bool* pass_before,
                    bool* pass_after) = nullptr;

  /// Test hooks: `count` lane-parallel draws from the (seed, index0 +
  /// stride*l) substreams, lane-interleaved into out[draw * lanes + l].
  /// Each lane must reproduce the scalar stream_rng / normal sequence.
  void (*draw_normals)(std::uint64_t seed, std::uint64_t index0,
                       std::uint64_t stride, int count, double* out) = nullptr;
  void (*draw_bits)(std::uint64_t seed, std::uint64_t index0,
                    std::uint64_t stride, int count,
                    std::uint64_t* out) = nullptr;
};

/// Kernel for a specific backend, or nullptr if this build/CPU cannot run
/// it (e.g. lane_kernel(kAvx2) on a non-x86 build). The scalar kernel is
/// always available: it is the shared LaneKernelImpl template instantiated
/// at width 1, so the template logic itself is testable everywhere.
const LaneKernel* lane_kernel(mathx::SimdBackend backend);

/// The kernel MC runs dispatch to: mathx::simd_backend() (CSDAC_SIMD
/// override included), downgraded along avx2 -> sse2 -> scalar if the
/// preferred backend has no kernel in this build.
const LaneKernel& active_lane_kernel();

/// Convenience wrapper over k.mc_block (ws.lanes must equal k.lanes).
void mc_chip_metrics_xN(const LaneKernel& k, ChipWorkspaceXN& ws,
                        double sigma_unit, std::uint64_t seed,
                        std::int64_t chip0, InlReference ref,
                        StaticSummary* out);

namespace detail {

/// Per-ISA kernel singletons (nullptr when compiled out).
const LaneKernel* lane_kernel_sse2();
const LaneKernel* lane_kernel_avx2();

/// Raw-pointer view of ws (out-of-line; see LaneView).
LaneView lane_view(ChipWorkspaceXN& ws);

/// Scalar per-lane calibration trim: gathers lane l's mismatch draw into
/// ws.scalar.errors, runs the real calibrate_into on the (seed,
/// 2*(chip0+l)+1) stream, scatters the trimmed unary weights into
/// ws.trimmed_unary. Scalar because the trim rounds with std::round
/// (half-away-from-zero) while SIMD rounding is to-nearest-even — the one
/// step of the chip pipeline with no bit-identical vector equivalent.
void cal_trim_lanes(ChipWorkspaceXN& ws, const CalibrationOptions& opts,
                    std::uint64_t seed, std::int64_t chip0);

/// Records one dispatched MC run in the simd.* metrics: bumps the
/// simd.dispatch.<backend> counter, adds the chips that went through
/// vector lanes (simd.lanes_utilized) and through the scalar remainder
/// path (simd.chips_scalar_tail), and sets the simd.lane_width gauge.
void record_lane_run(const LaneKernel& k, std::int64_t vector_chips,
                     std::int64_t scalar_tail_chips);

/// Out-of-line throw helpers so the per-ISA translation units never
/// instantiate exception-construction code.
[[noreturn]] void throw_bad_sigma();
[[noreturn]] void throw_degenerate();
[[noreturn]] void throw_flat();

}  // namespace detail

}  // namespace csdac::dac
