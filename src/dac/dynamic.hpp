// Dynamic behavioral model: turns a code sequence into an output-voltage
// waveform including the non-idealities the paper's design flow manages —
// finite settling (the eq. 13 time constant), code-dependent output
// impedance (the SFDR limiter of [7,8]), binary/thermometer timing skew and
// switch clock-feedthrough (glitch energy), and clock jitter (ref. [6]).
#pragma once

#include <vector>

#include "dac/dac_model.hpp"
#include "mathx/rng.hpp"

namespace csdac::dac {

struct DynamicParams {
  double fs = 300e6;        ///< sample rate [S/s]
  int oversample = 16;      ///< waveform points per sample period
  double tau = 0.25e-9;     ///< dominant settling time constant [s]
  /// Output resistance of one LSB unit [Ohm]; code-dependent droop comes
  /// from `level` units being on. Infinity-like values disable the effect.
  double rout_unit = 1e15;
  double binary_skew = 0.0;    ///< binary path extra latch delay [s]
  double jitter_sigma = 0.0;   ///< clock edge jitter sigma [s]
  /// Clock-feedthrough kick per switching unary source, in LSB of voltage.
  double feedthrough_lsb = 0.0;

  void validate() const;
};

/// Synthesizes waveforms for a given chip realization.
class DynamicSimulator {
 public:
  DynamicSimulator(SegmentedDac dac, DynamicParams params);

  const SegmentedDac& dac() const { return dac_; }
  const DynamicParams& params() const { return params_; }

  /// Static output voltage for a level (in LSB units), including the
  /// code-dependent output-conductance droop:
  ///   v = I * R_L / (1 + level * R_L / rout_unit).
  double v_of_level(double level_lsb) const;

  /// Output voltage of one LSB at mid-scale (for glitch normalization).
  double v_lsb() const;

  /// Full oversampled waveform for the code sequence. `rng` enables jitter
  /// (required if jitter_sigma > 0). The waveform starts settled at
  /// codes.front() and has codes.size() * oversample points.
  std::vector<double> waveform(const std::vector<int>& codes,
                               mathx::Xoshiro256* rng = nullptr) const;

  /// Differential waveform v(out_p) - v(out_n): the complementary switch
  /// steers every OFF source into out_n, so the rails carry `level` and
  /// `total - level` units. Both rails share the same clock edges (jitter)
  /// and the same common-mode feedthrough kick, which therefore cancels in
  /// the difference — the reason the paper evaluates SFDR differentially.
  std::vector<double> waveform_differential(
      const std::vector<int>& codes, mathx::Xoshiro256* rng = nullptr) const;

  /// Ideal (instantaneous, droop-free) waveform for comparison.
  std::vector<double> ideal_waveform(const std::vector<int>& codes) const;

  /// Glitch energy of a single code transition [V*s]: integral of
  /// |v(t) - v_ideal(t)| over one period after the step, where v_ideal is
  /// the single-pole settling response without skew or feedthrough.
  double glitch_energy(int code_from, int code_to) const;

 private:
  std::vector<double> waveform_impl(const std::vector<int>& codes,
                                    mathx::Xoshiro256* rng,
                                    bool differential) const;

  SegmentedDac dac_;
  DynamicParams params_;
};

/// Generates a coherently-sampled sine code sequence: `cycles` full periods
/// in `n_samples` samples (choose them coprime for coherent capture).
/// Amplitude spans [margin, 2^n - 1 - margin].
std::vector<int> sine_codes(const core::DacSpec& spec, int n_samples,
                            int cycles, int margin = 1);

/// Two-tone test signal (for intermodulation measurements): equal-amplitude
/// tones of `cycles1` and `cycles2` periods per record, each at just under
/// half scale so the sum stays in range.
std::vector<int> two_tone_codes(const core::DacSpec& spec, int n_samples,
                                int cycles1, int cycles2, int margin = 1);

}  // namespace csdac::dac
