// AVX2 instantiation of the chip-per-lane kernel (4 chips per block).
// This translation unit is compiled with -mavx2 (see CMakeLists.txt); it
// must stay lean — only the LaneKernelImpl<Avx2Ops> template members are
// emitted here (unique symbols), never shared inline functions, so the
// linker cannot pick AVX2 code for the rest of the program. Execution is
// guarded by the runtime dispatch: lane_kernel_avx2() is only called after
// mathx::simd_detect() confirmed the CPU has AVX2. When the compiler does
// not support -mavx2, __AVX2__ is undefined here and the kernel compiles
// to a nullptr stub; the dispatch then downgrades to SSE2.
#include "dac/lane_kernel.hpp"

#if defined(__AVX2__)

#include "dac/lane_kernel_impl.hpp"
#include "mathx/simd_avx2.hpp"

namespace csdac::dac::detail {

const LaneKernel* lane_kernel_avx2() {
  static const LaneKernel k =
      LaneKernelImpl<mathx::Avx2Ops>::kernel(mathx::SimdBackend::kAvx2);
  return &k;
}

}  // namespace csdac::dac::detail

#else

namespace csdac::dac::detail {

const LaneKernel* lane_kernel_avx2() { return nullptr; }

}  // namespace csdac::dac::detail

#endif
