#include "runtime/job.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "arch/ete.hpp"
#include "arch/instruments.hpp"
#include "dac/dac_model.hpp"
#include "dac/spectrum.hpp"
#include "mathx/rng.hpp"

namespace csdac::runtime {

std::string_view kind_name(JobKind kind) {
  switch (kind) {
    case JobKind::kInlYield: return "inl_yield";
    case JobKind::kCalYield: return "cal_yield";
    case JobKind::kSweepBasic: return "sweep_basic";
    case JobKind::kSweepCascode: return "sweep_cascode";
    case JobKind::kSpectrum: return "spectrum";
    case JobKind::kInlYieldIs: return "inl_yield_is";
    case JobKind::kInlYieldStrat: return "inl_yield_strat";
    case JobKind::kInlYieldBridge: return "inl_yield_bridge";
    case JobKind::kDynSpectrum: return "dyn_spectrum";
    case JobKind::kArchCompare: return "arch_compare";
    case JobKind::kSpiceMc: return "spice_mc";
  }
  return "unknown";
}

JobKind job_kind(const Job& job) {
  return std::visit(
      [](const auto& j) -> JobKind {
        using T = std::decay_t<decltype(j)>;
        if constexpr (std::is_same_v<T, InlYieldJob>) return JobKind::kInlYield;
        if constexpr (std::is_same_v<T, CalYieldJob>) return JobKind::kCalYield;
        if constexpr (std::is_same_v<T, SweepBasicJob>) {
          return JobKind::kSweepBasic;
        }
        if constexpr (std::is_same_v<T, SweepCascodeJob>) {
          return JobKind::kSweepCascode;
        }
        if constexpr (std::is_same_v<T, SpectrumJob>) return JobKind::kSpectrum;
        if constexpr (std::is_same_v<T, InlYieldIsJob>) {
          return JobKind::kInlYieldIs;
        }
        if constexpr (std::is_same_v<T, InlYieldStratJob>) {
          return JobKind::kInlYieldStrat;
        }
        if constexpr (std::is_same_v<T, InlYieldBridgeJob>) {
          return JobKind::kInlYieldBridge;
        }
        if constexpr (std::is_same_v<T, DynSpectrumJob>) {
          return JobKind::kDynSpectrum;
        }
        if constexpr (std::is_same_v<T, ArchCompareJob>) {
          return JobKind::kArchCompare;
        }
        if constexpr (std::is_same_v<T, SpiceMcJob>) {
          return JobKind::kSpiceMc;
        }
      },
      job);
}

namespace {

// Canonical serialization of the shared parameter structs. Every
// result-determining field, in declaration order, fixed width — adding a
// field here (because it gained influence on results) is a key change for
// every job that embeds the struct, which is exactly right.

void put(const core::DacSpec& s, mathx::ByteWriter& w) {
  w.i32(s.nbits);
  w.i32(s.binary_bits);
  w.f64(s.vdd);
  w.f64(s.v_swing);
  w.f64(s.v_out_min);
  w.f64(s.r_load);
  w.f64(s.c_load);
  w.f64(s.c_int);
  w.f64(s.inl_yield);
  w.f64(s.r_load_tol);
}

void put(const tech::MosTechParams& t, mathx::ByteWriter& w) {
  w.u8(static_cast<std::uint8_t>(t.type));
  w.f64(t.kp);
  w.f64(t.vt0);
  w.f64(t.lambda_l);
  w.f64(t.gamma);
  w.f64(t.phi_2f);
  w.f64(t.cox);
  w.f64(t.cgso);
  w.f64(t.cgdo);
  w.f64(t.cj);
  w.f64(t.cjsw);
  w.f64(t.l_diff);
  w.f64(t.a_vt);
  w.f64(t.a_beta);
  w.f64(t.l_min);
  w.f64(t.w_min);
}

void put(const core::GridAxis& a, mathx::ByteWriter& w) {
  w.f64(a.lo);
  w.f64(a.hi);
  w.i32(a.steps);
}

void put(const dac::CalibrationOptions& c, mathx::ByteWriter& w) {
  w.f64(c.range_lsb);
  w.i32(c.bits);
  w.f64(c.measure_noise_lsb);
}

void put(const dac::DynamicParams& d, mathx::ByteWriter& w) {
  w.f64(d.fs);
  w.i32(d.oversample);
  w.f64(d.tau);
  w.f64(d.rout_unit);
  w.f64(d.binary_skew);
  w.f64(d.jitter_sigma);
  w.f64(d.feedthrough_lsb);
}

void put_params(const InlYieldJob& j, mathx::ByteWriter& w) {
  put(j.spec, w);
  w.f64(j.sigma_unit);
  w.i32(j.chips);
  w.u64(j.seed);
  w.f64(j.limit);
  w.u8(static_cast<std::uint8_t>(j.ref));
  w.boolean(j.dnl);
  w.boolean(j.adaptive);
  w.i32(j.min_chips);
  w.i32(j.batch);
  w.f64(j.ci_half_width);
}

void put_params(const CalYieldJob& j, mathx::ByteWriter& w) {
  put(j.spec, w);
  w.f64(j.sigma_unit);
  put(j.cal, w);
  w.i32(j.chips);
  w.u64(j.seed);
  w.f64(j.limit);
}

void put_params(const SweepBasicJob& j, mathx::ByteWriter& w) {
  put(j.spec, w);
  put(j.tech, w);
  put(j.cs, w);
  put(j.sw, w);
  w.u8(static_cast<std::uint8_t>(j.policy));
  w.f64(j.fixed_margin);
}

void put_params(const SweepCascodeJob& j, mathx::ByteWriter& w) {
  put(j.spec, w);
  put(j.tech, w);
  put(j.cs, w);
  put(j.sw, w);
  put(j.cas, w);
  w.u8(static_cast<std::uint8_t>(j.policy));
  w.f64(j.fixed_margin);
  w.u8(static_cast<std::uint8_t>(j.agg));
}

void put_params(const SpectrumJob& j, mathx::ByteWriter& w) {
  put(j.spec, w);
  w.f64(j.sigma_unit);
  w.u64(j.seed);
  put(j.dyn, w);
  w.i32(j.n_samples);
  w.i32(j.cycles);
  w.boolean(j.differential);
}

void put_params(const InlYieldIsJob& j, mathx::ByteWriter& w) {
  put(j.spec, w);
  w.f64(j.sigma_unit);
  w.f64(j.sigma_scale);
  w.i32(j.modes);
  w.i32(j.chips);
  w.u64(j.seed);
  w.f64(j.limit);
  w.u8(static_cast<std::uint8_t>(j.ref));
}

void put_params(const InlYieldStratJob& j, mathx::ByteWriter& w) {
  put(j.spec, w);
  w.f64(j.sigma_unit);
  w.i32(j.strata);
  w.i32(j.chips);
  w.u64(j.seed);
  w.f64(j.limit);
  w.u8(static_cast<std::uint8_t>(j.ref));
}

void put_params(const InlYieldBridgeJob& j, mathx::ByteWriter& w) {
  put(j.spec, w);
  w.f64(j.sigma_unit);
  w.f64(j.limit);
}

void put(const arch::TimingParams& t, mathx::ByteWriter& w) {
  w.f64(t.fs);
  w.i32(t.oversample);
  w.f64(t.tau);
  w.f64(t.sigma_t);
  w.f64(t.asym_sigma);
}

void put_params(const DynSpectrumJob& j, mathx::ByteWriter& w) {
  put(j.spec, w);
  w.u8(static_cast<std::uint8_t>(j.scheme));
  w.i32(j.scheme_param);
  put(j.timing, w);
  w.i32(j.n_samples);
  w.i32(j.cycles);
  w.f64(j.sfdr_limit_db);
  w.i32(j.chips);
  w.u64(j.seed);
  w.boolean(j.adaptive);
  w.i32(j.min_chips);
  w.i32(j.batch);
  w.f64(j.ci_half_width);
}

void put_params(const ArchCompareJob& j, mathx::ByteWriter& w) {
  put(j.spec, w);
  w.f64(j.sigma_unit);
  put(j.timing, w);
  w.i32(j.n_samples);
  w.i32(j.cycles);
  w.i32(j.chips);
  w.i32(j.dyn_chips);
  w.u64(j.seed);
  w.f64(j.limit);
  w.i32(j.seg_lo);
  w.i32(j.seg_hi);
  w.boolean(j.include_unary);
  w.i32(j.opt_cells);
}

void put_params(const SpiceMcJob& j, mathx::ByteWriter& w) {
  put(j.spec, w);
  put(j.tech, w);
  w.f64(j.vod_cs);
  w.f64(j.vod_sw);
  w.f64(j.vod_cas);
  w.boolean(j.cascode);
  w.i32(j.chips);
  w.u64(j.seed);
  w.f64(j.limit);
  w.f64(j.sigma_scale);
  w.boolean(j.differential);
  w.boolean(j.with_caps);
}

// Result payload codec. Each kind carries its own schema version so a
// result-format change invalidates only that kind's entries (the reader
// rejects, the caller recomputes and overwrites).
constexpr std::uint8_t kYieldResultV = 1;
constexpr std::uint8_t kCalResultV = 1;
constexpr std::uint8_t kSweepResultV = 1;
constexpr std::uint8_t kSpectrumResultV = 1;
constexpr std::uint8_t kIsResultV = 1;
constexpr std::uint8_t kStratResultV = 1;
constexpr std::uint8_t kBridgeResultV = 1;
constexpr std::uint8_t kDynSpectrumResultV = 1;
constexpr std::uint8_t kArchCompareResultV = 1;
constexpr std::uint8_t kSpiceMcResultV = 1;

}  // namespace

void canonical_inputs(const Job& job, mathx::ByteWriter& w) {
  w.str(kEngineVersion);
  w.u8(static_cast<std::uint8_t>(job_kind(job)));
  std::visit([&w](const auto& j) { put_params(j, w); }, job);
}

mathx::HashKey128 job_key(const Job& job) {
  mathx::ByteWriter w;
  canonical_inputs(job, w);
  return w.hash();
}

void encode_value(const JobValue& value, mathx::ByteWriter& w) {
  std::visit(
      [&w](const auto& v) {
        using T = std::decay_t<decltype(v)>;
        if constexpr (std::is_same_v<T, YieldResult>) {
          w.u8(kYieldResultV);
          w.i64(v.chips);
          w.i64(v.pass);
          w.f64(v.yield);
          w.f64(v.ci95);
        } else if constexpr (std::is_same_v<T, CalYieldResult>) {
          w.u8(kCalResultV);
          w.i64(v.chips);
          w.f64(v.yield_before);
          w.f64(v.yield_after);
        } else if constexpr (std::is_same_v<T, SweepResult>) {
          w.u8(kSweepResultV);
          w.u32(static_cast<std::uint32_t>(v.points.size()));
          for (const auto& p : v.points) {
            w.f64(p.vod_cs);
            w.f64(p.vod_sw);
            w.f64(p.vod_cas);
            w.boolean(p.feasible);
            w.f64(p.margin);
            w.f64(p.area);
            w.f64(p.f_min_hz);
            w.f64(p.t_settle_s);
            w.f64(p.rout_unit);
          }
        } else if constexpr (std::is_same_v<T, SpectrumSummary>) {
          w.u8(kSpectrumResultV);
          w.f64(v.sfdr_db);
          w.f64(v.sndr_db);
          w.f64(v.thd_db);
          w.f64(v.enob);
        } else if constexpr (std::is_same_v<T, IsYieldResult>) {
          w.u8(kIsResultV);
          w.i64(v.chips);
          w.i64(v.fails);
          w.f64(v.yield);
          w.f64(v.ci95);
          w.f64(v.ess);
          w.f64(v.ess_fraction);
          w.f64(v.log_weight_max);
          w.f64(v.log_weight_min);
          w.boolean(v.low_ess);
        } else if constexpr (std::is_same_v<T, StratYieldResult>) {
          w.u8(kStratResultV);
          w.i64(v.chips);
          w.i64(v.pairs);
          w.i32(v.strata);
          w.f64(v.yield);
          w.f64(v.ci95);
        } else if constexpr (std::is_same_v<T, BridgeYieldResult>) {
          w.u8(kBridgeResultV);
          w.f64(v.yield);
          w.f64(v.c);
          w.f64(v.sigma_inl);
        } else if constexpr (std::is_same_v<T, DynSpectrumResult>) {
          w.u8(kDynSpectrumResultV);
          w.i64(v.chips);
          w.i64(v.pass);
          w.f64(v.yield);
          w.f64(v.ci95);
          w.f64(v.sfdr_mean_db);
          w.f64(v.sfdr_min_db);
          w.f64(v.sndr_mean_db);
          w.f64(v.ete_sfdr_mean_db);
          w.i32(v.cells);
        } else if constexpr (std::is_same_v<T, SpiceMcResult>) {
          w.u8(kSpiceMcResultV);
          w.i64(v.chips);
          w.i64(v.pass);
          w.f64(v.yield);
          w.f64(v.ci95);
          w.f64(v.inl_mean);
          w.f64(v.inl_worst);
          w.i64(v.newton_iters);
          w.i64(v.factorizations);
          w.i64(v.refactorizations);
          w.i64(v.warm_starts);
          w.i64(v.warm_start_hits);
          w.i64(v.device_evals);
          w.f64(v.warm_start_hit_rate);
        } else if constexpr (std::is_same_v<T, ArchCompareResult>) {
          w.u8(kArchCompareResultV);
          w.u32(static_cast<std::uint32_t>(v.points.size()));
          for (const auto& p : v.points) {
            w.u8(p.scheme);
            w.i32(p.param);
            w.i32(p.cells);
            w.f64(p.inl_yield);
            w.f64(p.inl_ci95);
            w.f64(p.sfdr_db);
            w.f64(p.ete_sfdr_db);
            w.f64(p.activity);
          }
        }
      },
      value);
}

bool decode_value(JobKind kind, mathx::ByteReader& r, JobValue& out) {
  switch (kind) {
    case JobKind::kInlYield: {
      if (r.u8() != kYieldResultV) return false;
      YieldResult v;
      v.chips = r.i64();
      v.pass = r.i64();
      v.yield = r.f64();
      v.ci95 = r.f64();
      out = v;
      break;
    }
    case JobKind::kCalYield: {
      if (r.u8() != kCalResultV) return false;
      CalYieldResult v;
      v.chips = r.i64();
      v.yield_before = r.f64();
      v.yield_after = r.f64();
      out = v;
      break;
    }
    case JobKind::kSweepBasic:
    case JobKind::kSweepCascode: {
      if (r.u8() != kSweepResultV) return false;
      SweepResult v;
      const std::uint32_t n = r.u32();
      if (n > r.remaining() / (8 * 8 + 1)) return false;
      v.points.resize(n);
      for (auto& p : v.points) {
        p.vod_cs = r.f64();
        p.vod_sw = r.f64();
        p.vod_cas = r.f64();
        p.feasible = r.boolean();
        p.margin = r.f64();
        p.area = r.f64();
        p.f_min_hz = r.f64();
        p.t_settle_s = r.f64();
        p.rout_unit = r.f64();
      }
      out = std::move(v);
      break;
    }
    case JobKind::kSpectrum: {
      if (r.u8() != kSpectrumResultV) return false;
      SpectrumSummary v;
      v.sfdr_db = r.f64();
      v.sndr_db = r.f64();
      v.thd_db = r.f64();
      v.enob = r.f64();
      out = v;
      break;
    }
    case JobKind::kInlYieldIs: {
      if (r.u8() != kIsResultV) return false;
      IsYieldResult v;
      v.chips = r.i64();
      v.fails = r.i64();
      v.yield = r.f64();
      v.ci95 = r.f64();
      v.ess = r.f64();
      v.ess_fraction = r.f64();
      v.log_weight_max = r.f64();
      v.log_weight_min = r.f64();
      v.low_ess = r.boolean();
      out = v;
      break;
    }
    case JobKind::kInlYieldStrat: {
      if (r.u8() != kStratResultV) return false;
      StratYieldResult v;
      v.chips = r.i64();
      v.pairs = r.i64();
      v.strata = r.i32();
      v.yield = r.f64();
      v.ci95 = r.f64();
      out = v;
      break;
    }
    case JobKind::kInlYieldBridge: {
      if (r.u8() != kBridgeResultV) return false;
      BridgeYieldResult v;
      v.yield = r.f64();
      v.c = r.f64();
      v.sigma_inl = r.f64();
      out = v;
      break;
    }
    case JobKind::kDynSpectrum: {
      if (r.u8() != kDynSpectrumResultV) return false;
      DynSpectrumResult v;
      v.chips = r.i64();
      v.pass = r.i64();
      v.yield = r.f64();
      v.ci95 = r.f64();
      v.sfdr_mean_db = r.f64();
      v.sfdr_min_db = r.f64();
      v.sndr_mean_db = r.f64();
      v.ete_sfdr_mean_db = r.f64();
      v.cells = r.i32();
      out = v;
      break;
    }
    case JobKind::kArchCompare: {
      if (r.u8() != kArchCompareResultV) return false;
      ArchCompareResult v;
      const std::uint32_t n = r.u32();
      // Bytes per encoded ArchPoint: u8 scheme + 2 * i32 + 5 * f64.
      if (n > r.remaining() / (5 * 8 + 2 * 4 + 1)) return false;
      v.points.resize(n);
      for (auto& p : v.points) {
        p.scheme = r.u8();
        p.param = r.i32();
        p.cells = r.i32();
        p.inl_yield = r.f64();
        p.inl_ci95 = r.f64();
        p.sfdr_db = r.f64();
        p.ete_sfdr_db = r.f64();
        p.activity = r.f64();
      }
      out = std::move(v);
      break;
    }
    case JobKind::kSpiceMc: {
      if (r.u8() != kSpiceMcResultV) return false;
      SpiceMcResult v;
      v.chips = r.i64();
      v.pass = r.i64();
      v.yield = r.f64();
      v.ci95 = r.f64();
      v.inl_mean = r.f64();
      v.inl_worst = r.f64();
      v.newton_iters = r.i64();
      v.factorizations = r.i64();
      v.refactorizations = r.i64();
      v.warm_starts = r.i64();
      v.warm_start_hits = r.i64();
      v.device_evals = r.i64();
      v.warm_start_hit_rate = r.f64();
      out = v;
      break;
    }
    default: return false;
  }
  return r.done();
}

namespace {

JobValue run_inl_yield(const InlYieldJob& j, int threads,
                       mathx::RunStats* stats) {
  dac::YieldEstimate y;
  if (j.adaptive) {
    dac::AdaptiveMcOptions o;
    o.max_chips = j.chips;
    o.min_chips = j.min_chips;
    o.batch = j.batch;
    o.ci_half_width = j.ci_half_width;
    o.threads = threads;
    y = j.dnl ? dac::dnl_yield_mc_adaptive(j.spec, j.sigma_unit, o, j.seed,
                                           j.limit)
              : dac::inl_yield_mc_adaptive(j.spec, j.sigma_unit, o, j.seed,
                                           j.limit, j.ref);
  } else {
    y = j.dnl ? dac::dnl_yield_mc(j.spec, j.sigma_unit, j.chips, j.seed,
                                  j.limit, threads)
              : dac::inl_yield_mc(j.spec, j.sigma_unit, j.chips, j.seed,
                                  j.limit, j.ref, threads);
  }
  if (stats) *stats = y.stats;
  YieldResult r;
  r.chips = y.chips;
  r.pass = y.pass;
  r.yield = y.yield;
  r.ci95 = y.ci95;
  return r;
}

JobValue run_cal_yield(const CalYieldJob& j, int threads,
                       mathx::RunStats* stats) {
  const dac::CalibratedYield y = dac::calibration_yield_mc(
      j.spec, j.sigma_unit, j.cal, j.chips, j.seed, j.limit, threads);
  if (stats) *stats = y.stats;
  CalYieldResult r;
  r.chips = y.chips;
  r.yield_before = y.yield_before;
  r.yield_after = y.yield_after;
  return r;
}

JobValue run_sweep_basic(const SweepBasicJob& j, int threads,
                         mathx::RunStats* stats) {
  const core::DesignSpaceExplorer ex(core::CellSizer(j.tech, j.spec));
  SweepResult r;
  r.points =
      ex.sweep_basic(j.cs, j.sw, j.policy, j.fixed_margin, threads, stats);
  return r;
}

JobValue run_sweep_cascode(const SweepCascodeJob& j, int threads,
                           mathx::RunStats* stats) {
  const core::DesignSpaceExplorer ex(core::CellSizer(j.tech, j.spec));
  SweepResult r;
  r.points = ex.sweep_cascode(j.cs, j.sw, j.cas, j.policy, j.fixed_margin,
                              j.agg, threads, stats);
  return r;
}

JobValue run_spectrum(const SpectrumJob& j, int threads,
                      mathx::RunStats* stats) {
  (void)threads;  // waveform synthesis is inherently sequential
  j.spec.validate();
  j.dyn.validate();
  if (j.n_samples < 8 || j.cycles < 1) {
    throw std::invalid_argument("spectrum job: bad record shape");
  }
  dac::SourceErrors errors;
  if (j.sigma_unit > 0.0) {
    mathx::Xoshiro256 rng = mathx::stream_rng(j.seed, 0);
    errors = dac::draw_source_errors(j.spec, j.sigma_unit, rng);
  } else {
    errors = dac::ideal_sources(j.spec);
  }
  const dac::SegmentedDac model(j.spec, std::move(errors));
  const dac::DynamicSimulator sim(model, j.dyn);
  const auto codes = dac::sine_codes(j.spec, j.n_samples, j.cycles);
  mathx::Xoshiro256 jitter_rng = mathx::stream_rng(j.seed, 1);
  mathx::Xoshiro256* rng_ptr =
      j.dyn.jitter_sigma > 0.0 ? &jitter_rng : nullptr;
  const auto wave = j.differential ? sim.waveform_differential(codes, rng_ptr)
                                   : sim.waveform(codes, rng_ptr);
  // Resample at the end of each sample period (settled value), as the
  // Fig. 8 bench does.
  std::vector<double> sampled;
  sampled.reserve(static_cast<std::size_t>(j.n_samples));
  const auto step = static_cast<std::size_t>(j.dyn.oversample);
  for (std::size_t i = step - 1; i < wave.size(); i += step) {
    sampled.push_back(wave[i]);
  }
  const dac::SpectrumResult s = dac::analyze_spectrum(sampled, j.dyn.fs);
  if (stats) {
    stats->evaluated = static_cast<std::int64_t>(sampled.size());
    stats->threads = 1;
  }
  SpectrumSummary r;
  r.sfdr_db = s.sfdr_db;
  r.sndr_db = s.sndr_db;
  r.thd_db = s.thd_db;
  r.enob = s.enob;
  return r;
}

JobValue run_inl_yield_is(const InlYieldIsJob& j, int threads,
                          mathx::RunStats* stats) {
  const dac::IsYieldEstimate y =
      dac::inl_yield_is(j.spec, j.sigma_unit, j.sigma_scale, j.modes, j.chips,
                        j.seed, j.limit, j.ref, threads);
  if (stats) *stats = y.stats;
  IsYieldResult r;
  r.chips = y.chips;
  r.fails = y.fails;
  r.yield = y.yield;
  r.ci95 = y.ci95;
  r.ess = y.ess;
  r.ess_fraction = y.ess_fraction;
  r.log_weight_max = y.log_weight_max;
  r.log_weight_min = y.log_weight_min;
  r.low_ess = y.low_ess;
  return r;
}

JobValue run_inl_yield_strat(const InlYieldStratJob& j, int threads,
                             mathx::RunStats* stats) {
  const dac::StratYieldEstimate y = dac::inl_yield_stratified(
      j.spec, j.sigma_unit, j.strata, j.chips, j.seed, j.limit, j.ref,
      threads);
  if (stats) *stats = y.stats;
  StratYieldResult r;
  r.chips = y.chips;
  r.pairs = y.pairs;
  r.strata = y.strata;
  r.yield = y.yield;
  r.ci95 = y.ci95;
  return r;
}

JobValue run_inl_yield_bridge(const InlYieldBridgeJob& j, int threads,
                              mathx::RunStats* stats) {
  (void)threads;  // closed form; nothing to parallelize
  const dac::BridgeYieldEstimate y =
      dac::inl_yield_bridge(j.spec, j.sigma_unit, j.limit);
  if (stats) {
    stats->evaluated = 0;  // no chips drawn: that is the whole point
    stats->threads = 1;
  }
  BridgeYieldResult r;
  r.yield = y.yield;
  r.c = y.c;
  r.sigma_inl = y.sigma_inl;
  return r;
}

/// Resolves the scheme-param defaults against the spec: segmented 0 means
/// the spec's own binary split; optimized 0 means "same cell count as the
/// spec's segmented architecture" so comparisons stay cell- and
/// area-matched.
arch::WeightingScheme resolve_weighting(const core::DacSpec& spec,
                                        arch::WeightingKind kind, int param) {
  int p = param;
  if (kind == arch::WeightingKind::kSegmented && p == 0) p = spec.binary_bits;
  if (kind == arch::WeightingKind::kOptimized && p == 0) {
    const int b = spec.binary_bits;
    p = ((1 << (spec.nbits - b)) - 1) + b;
  }
  if ((kind == arch::WeightingKind::kBinary ||
       kind == arch::WeightingKind::kUnary) &&
      p != 0) {
    throw std::invalid_argument("weighting scheme takes no parameter");
  }
  return arch::make_weighting(kind, spec.nbits, p);
}

void check_record_shape(int n_samples, int cycles) {
  if (n_samples < 32 || cycles < 1 || cycles >= n_samples / 2) {
    throw std::invalid_argument("arch job: bad record shape");
  }
}

JobValue run_dyn_spectrum(const DynSpectrumJob& j, int threads,
                          mathx::RunStats* stats) {
  j.spec.validate();
  j.timing.validate();
  check_record_shape(j.n_samples, j.cycles);
  if (j.chips < 1 || (j.adaptive && (j.min_chips < 1 || j.batch < 1))) {
    throw std::invalid_argument("dyn_spectrum job: bad chip counts");
  }
  const arch::CellArray arr(
      resolve_weighting(j.spec, j.scheme, j.scheme_param));
  const double v_lsb = j.spec.i_lsb() * j.spec.r_load;
  const arch::ArchSimulator sim(arr, j.timing, v_lsb);
  const std::vector<int> codes =
      dac::sine_codes(j.spec, j.n_samples, j.cycles);

  // Per-chip metrics land in index-addressed slots, so the means below are
  // reduced sequentially in chip order — bit-identical for any thread
  // count, like every other cached job.
  std::vector<double> sfdr(static_cast<std::size_t>(j.chips), 0.0);
  std::vector<double> sndr(static_cast<std::size_t>(j.chips), 0.0);
  std::vector<double> ete(static_cast<std::size_t>(j.chips), 0.0);
  const auto item = [&](std::int64_t i) -> bool {
    mathx::Xoshiro256 rng =
        mathx::stream_rng(j.seed, static_cast<std::uint64_t>(i));
    const arch::CellTiming t =
        arch::draw_cell_timing(arr.cells(), j.timing, rng);
    const dac::SpectrumResult s = sim.spectrum(codes, t, j.cycles);
    const arch::EtePrediction p =
        arch::ete_predict(arr, t, v_lsb, j.timing.fs, codes, j.cycles);
    const auto slot = static_cast<std::size_t>(i);
    sfdr[slot] = s.sfdr_db;
    sndr[slot] = s.sndr_db;
    ete[slot] = p.sfdr_db;
    return s.sfdr_db >= j.sfdr_limit_db;
  };
  mathx::EarlyStopOptions o;
  o.max_items = j.chips;
  o.min_items = j.adaptive
                    ? std::min<std::int64_t>(j.min_chips, j.chips)
                    : j.chips;
  o.batch = j.adaptive ? j.batch : j.chips;
  o.ci_half_width = j.adaptive ? j.ci_half_width : 0.0;
  const mathx::YieldRun y = mathx::adaptive_yield_run(o, threads, item);
  dac::detail::count_chip_evals(y.evaluated);

  DynSpectrumResult r;
  r.chips = y.evaluated;
  r.pass = y.passed;
  r.yield = y.yield;
  r.ci95 = y.ci95;
  r.cells = arr.cells();
  r.sfdr_min_db = sfdr[0];
  double sfdr_sum = 0.0, sndr_sum = 0.0, ete_sum = 0.0;
  for (std::int64_t i = 0; i < y.evaluated; ++i) {
    const auto slot = static_cast<std::size_t>(i);
    sfdr_sum += sfdr[slot];
    sndr_sum += sndr[slot];
    ete_sum += ete[slot];
    r.sfdr_min_db = std::min(r.sfdr_min_db, sfdr[slot]);
  }
  const double denom = static_cast<double>(y.evaluated);
  r.sfdr_mean_db = sfdr_sum / denom;
  r.sndr_mean_db = sndr_sum / denom;
  r.ete_sfdr_mean_db = ete_sum / denom;
  if (stats) *stats = y.stats;

  auto& m = arch::arch_instruments();
  m.dyn_runs.add(1);
  m.last_sfdr_db.set(r.sfdr_mean_db);
  m.last_yield.set(r.yield);
  return r;
}

JobValue run_arch_compare(const ArchCompareJob& j, int threads,
                          mathx::RunStats* stats) {
  j.spec.validate();
  j.timing.validate();
  check_record_shape(j.n_samples, j.cycles);
  if (j.chips < 1 || j.dyn_chips < 1) {
    throw std::invalid_argument("arch_compare job: bad chip counts");
  }
  if (!std::isfinite(j.sigma_unit) || j.sigma_unit < 0.0) {
    throw std::invalid_argument("arch_compare job: bad sigma_unit");
  }
  if (j.seg_lo < 1 || j.seg_hi < j.seg_lo || j.seg_hi >= j.spec.nbits) {
    throw std::invalid_argument("arch_compare job: bad segment range");
  }

  std::vector<arch::WeightingScheme> schemes;
  schemes.push_back(arch::make_weighting(arch::WeightingKind::kBinary,
                                         j.spec.nbits));
  if (j.include_unary) {
    schemes.push_back(arch::make_weighting(arch::WeightingKind::kUnary,
                                           j.spec.nbits));
  }
  for (int b = j.seg_lo; b <= j.seg_hi; ++b) {
    schemes.push_back(arch::make_weighting(arch::WeightingKind::kSegmented,
                                           j.spec.nbits, b));
  }
  schemes.push_back(resolve_weighting(j.spec, arch::WeightingKind::kOptimized,
                                      j.opt_cells));

  const std::vector<int> codes =
      dac::sine_codes(j.spec, j.n_samples, j.cycles);
  const double v_lsb = j.spec.i_lsb() * j.spec.r_load;
  const int total_units = (1 << j.spec.nbits) - 1;
  const int n_codes = 1 << j.spec.nbits;

  ArchCompareResult res;
  std::int64_t total_evals = 0;
  int run_threads = 1;
  for (std::size_t a = 0; a < schemes.size(); ++a) {
    const arch::CellArray arr(schemes[a]);
    ArchPoint p;
    p.scheme = static_cast<std::uint8_t>(arr.scheme().kind);
    p.param = arr.scheme().param;
    p.cells = arr.cells();
    p.activity = arch::switching_activity(arr, codes);

    // Cell c spans the unit interval [offset[c], offset[c+1]) of a shared
    // per-chip unit-error pool: every architecture sees the SAME wafer
    // (common random numbers), so yield differences between schemes are
    // not resampling noise.
    const auto& w = arr.weights();
    std::vector<int> offset(w.size() + 1, 0);
    for (std::size_t c = 0; c < w.size(); ++c) offset[c + 1] = offset[c] + w[c];

    struct Ws {
      std::vector<double> prefix;
      std::vector<double> levels;
      std::vector<std::uint8_t> on;
    };
    std::vector<std::uint8_t> pass(static_cast<std::size_t>(j.chips), 0);
    const mathx::RunStats rs = mathx::parallel_for_workspace(
        j.chips, threads,
        [&] {
          Ws ws;
          ws.prefix.resize(static_cast<std::size_t>(total_units) + 1);
          ws.levels.resize(static_cast<std::size_t>(n_codes));
          return ws;
        },
        [&](Ws& ws, std::int64_t chip) {
          mathx::Xoshiro256 rng =
              mathx::stream_rng(j.seed, static_cast<std::uint64_t>(chip));
          ws.prefix[0] = 0.0;
          for (int u = 0; u < total_units; ++u) {
            ws.prefix[static_cast<std::size_t>(u) + 1] =
                ws.prefix[static_cast<std::size_t>(u)] +
                j.sigma_unit * mathx::normal(rng);
          }
          for (int code = 0; code < n_codes; ++code) {
            arr.encode(code, ws.on);
            double level = 0.0;
            for (std::size_t c = 0; c < w.size(); ++c) {
              if (!ws.on[c]) continue;
              level += w[c] +
                       (ws.prefix[static_cast<std::size_t>(offset[c + 1])] -
                        ws.prefix[static_cast<std::size_t>(offset[c])]);
            }
            ws.levels[static_cast<std::size_t>(code)] = level;
          }
          const dac::StaticSummary s = dac::analyze_levels_summary(
              ws.levels, dac::InlReference::kBestFit);
          dac::detail::count_chip_eval();
          pass[static_cast<std::size_t>(chip)] = s.inl_max < j.limit ? 1 : 0;
        });
    run_threads = std::max(run_threads, rs.threads);
    total_evals += j.chips;
    std::int64_t passed = 0;
    for (std::uint8_t f : pass) passed += f;
    p.inl_yield = static_cast<double>(passed) / j.chips;
    p.inl_ci95 = mathx::wilson_half_width(passed, j.chips);

    // Timing MC on a distinct stream lane (per-architecture cell counts
    // differ, so timing draws cannot be shared across schemes).
    const arch::ArchSimulator sim(arr, j.timing, v_lsb);
    double sfdr_sum = 0.0, ete_sum = 0.0;
    for (int d = 0; d < j.dyn_chips; ++d) {
      mathx::Xoshiro256 rng = mathx::stream_rng(
          j.seed ^ 0x74696d696e67ULL,
          (static_cast<std::uint64_t>(a) << 32) |
              static_cast<std::uint64_t>(d));
      const arch::CellTiming t =
          arch::draw_cell_timing(arr.cells(), j.timing, rng);
      sfdr_sum += sim.spectrum(codes, t, j.cycles).sfdr_db;
      ete_sum +=
          arch::ete_predict(arr, t, v_lsb, j.timing.fs, codes, j.cycles)
              .sfdr_db;
    }
    p.sfdr_db = sfdr_sum / j.dyn_chips;
    p.ete_sfdr_db = ete_sum / j.dyn_chips;
    total_evals += j.dyn_chips;
    res.points.push_back(p);
  }
  if (stats) {
    stats->evaluated = total_evals;
    stats->threads = run_threads;
  }
  arch::arch_instruments().compare_runs.add(1);
  return res;
}

JobValue run_spice_mc(const SpiceMcJob& j, int threads,
                      mathx::RunStats* stats) {
  // Serial by design: the per-code symbolic-factorization reuse and
  // corner-to-corner warm starts are inherently sequential, and the result
  // must not depend on the thread count anyway.
  (void)threads;
  j.spec.validate();
  if (j.chips < 1) throw std::invalid_argument("spice_mc job: chips < 1");
  if (!std::isfinite(j.sigma_scale) || j.sigma_scale < 0.0) {
    throw std::invalid_argument("spice_mc job: bad sigma_scale");
  }
  const core::CellSizer sizer(j.tech, j.spec);
  const core::SizedCell cell =
      j.cascode ? sizer.size_cascode(j.vod_cs, j.vod_sw, j.vod_cas)
                : sizer.size_basic(j.vod_cs, j.vod_sw);
  dacgen::SpiceMcOptions o;
  o.chips = j.chips;
  o.seed = j.seed;
  o.limit = j.limit;
  o.sigma_scale = j.sigma_scale;
  o.differential = j.differential;
  o.with_caps = j.with_caps;
  const SpiceMcResult r = dacgen::spice_mismatch_mc(j.spec, cell, j.tech, o);
  if (stats) {
    stats->evaluated = r.chips;
    stats->threads = 1;
  }
  return r;
}

}  // namespace

JobValue execute_job(const Job& job, int threads, mathx::RunStats* stats) {
  return std::visit(
      [&](const auto& j) -> JobValue {
        using T = std::decay_t<decltype(j)>;
        if constexpr (std::is_same_v<T, InlYieldJob>) {
          return run_inl_yield(j, threads, stats);
        } else if constexpr (std::is_same_v<T, CalYieldJob>) {
          return run_cal_yield(j, threads, stats);
        } else if constexpr (std::is_same_v<T, SweepBasicJob>) {
          return run_sweep_basic(j, threads, stats);
        } else if constexpr (std::is_same_v<T, SweepCascodeJob>) {
          return run_sweep_cascode(j, threads, stats);
        } else if constexpr (std::is_same_v<T, InlYieldIsJob>) {
          return run_inl_yield_is(j, threads, stats);
        } else if constexpr (std::is_same_v<T, InlYieldStratJob>) {
          return run_inl_yield_strat(j, threads, stats);
        } else if constexpr (std::is_same_v<T, InlYieldBridgeJob>) {
          return run_inl_yield_bridge(j, threads, stats);
        } else if constexpr (std::is_same_v<T, DynSpectrumJob>) {
          return run_dyn_spectrum(j, threads, stats);
        } else if constexpr (std::is_same_v<T, ArchCompareJob>) {
          return run_arch_compare(j, threads, stats);
        } else if constexpr (std::is_same_v<T, SpiceMcJob>) {
          return run_spice_mc(j, threads, stats);
        } else {
          return run_spectrum(j, threads, stats);
        }
      },
      job);
}

}  // namespace csdac::runtime
