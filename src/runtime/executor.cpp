#include "runtime/executor.hpp"

#include <chrono>

#include "obs/span.hpp"

namespace csdac::runtime {

namespace {

/// Microseconds elapsed since `from`, advancing `from` to now — the stage
/// stopwatch: each stage costs one clock read beyond what run() already
/// paid for wall_seconds.
std::int64_t lap_us(std::chrono::steady_clock::time_point& from) {
  const auto now = std::chrono::steady_clock::now();
  const auto us =
      std::chrono::duration_cast<std::chrono::microseconds>(now - from)
          .count();
  from = now;
  return us;
}

}  // namespace

std::string_view tier_name(ResultTier tier) {
  switch (tier) {
    case ResultTier::kHot:
      return "hot";
    case ResultTier::kDisk:
      return "disk";
    case ResultTier::kComputed:
      break;
  }
  return "miss";
}

JobExecutor::JobExecutor(ExecutorOptions opts) : opts_(std::move(opts)) {
  if (!opts_.cache_dir.empty()) {
    CacheOptions co;
    co.dir = opts_.cache_dir;
    co.max_bytes = opts_.cache_max_bytes;
    disk_ = std::make_unique<ResultCache>(std::move(co));
  }
  if (opts_.hot_bytes > 0) {
    HotCacheOptions ho;
    ho.max_bytes = opts_.hot_bytes;
    ho.shards = opts_.hot_shards;
    hot_ = std::make_unique<HotCache>(ho);
  }
}

ExecResult JobExecutor::run(const Job& job, const mathx::HashKey128& key,
                            int threads, std::string_view trace_id) {
  const auto t0 = std::chrono::steady_clock::now();
  auto mark = t0;
  ExecResult r;
  const JobKind kind = job_kind(job);
  obs::ScopedSpan span("exec.job");
  span.attr("kind", kind_name(kind));
  if (!trace_id.empty()) span.attr("trace_id", trace_id);

  std::vector<unsigned char> payload;
  if (hot_) {
    if (hot_->get(key, payload)) {
      mathx::ByteReader reader(payload);
      if (decode_value(kind, reader, r.value)) {
        r.tier = ResultTier::kHot;
      }
      // A hot entry that fails the decode is impossible unless the process
      // mixes engine versions; fall through and recompute.
    }
    r.stages.hot_us = lap_us(mark);
  }
  if (r.tier == ResultTier::kComputed && disk_) {
    payload.clear();
    if (disk_->get(key, payload)) {
      mathx::ByteReader reader(payload);
      if (decode_value(kind, reader, r.value)) {
        r.tier = ResultTier::kDisk;
        // Promote so the next identical question never touches the disk.
        if (hot_) hot_->put(key, payload);
      }
      // Framing-valid but schema-stale entries miss and get overwritten.
    }
    r.stages.disk_us = lap_us(mark);
  }

  if (r.tier != ResultTier::kComputed) {
    r.stats = mathx::RunStats{};
    r.stats.cache_hits = 1;
  } else {
    r.value = execute_job(job, threads, &r.stats);
    r.stats.cache_hits = 0;
    r.stats.cache_misses = (disk_ || hot_) ? 1 : 0;
    r.stages.compute_us = lap_us(mark);
    if (disk_ || hot_) {
      mathx::ByteWriter w;
      encode_value(r.value, w);
      if (disk_) disk_->put(key, w.data());
      if (hot_) hot_->put(key, w.data());
      r.stages.store_us = lap_us(mark);
    }
  }
  span.attr("tier", tier_name(r.tier));
  r.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return r;
}

CacheCounters JobExecutor::disk_counters() const {
  return disk_ ? disk_->counters() : CacheCounters{};
}

HotCacheCounters JobExecutor::hot_counters() const {
  return hot_ ? hot_->counters() : HotCacheCounters{};
}

}  // namespace csdac::runtime
