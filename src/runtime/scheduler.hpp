// Long-lived shared scheduler: the execution backend of the persistent
// design server. Callers submit() jobs and get back a shared future; a
// fixed pool of worker threads drains the queues through a shared
// JobExecutor (hot tier + disk cache), so any number of concurrent clients
// multiplex over one set of cores and one result store.
//
// Three properties the serve path depends on:
//
//  * Cross-request single-flight dedup. Submissions are keyed by the job's
//    128-bit content hash; while a key is queued or running, every further
//    submit() of the same key attaches to the SAME task and resolves from
//    the same future — two clients asking the same question run it once.
//    After completion the task leaves the in-flight table and later
//    submissions are answered by the cache tiers instead.
//
//  * Per-client fairness. Each client id has its own FIFO queue; workers
//    pick the next task round-robin over the clients with pending work, so
//    a client flooding thousands of jobs cannot starve a client asking
//    one. Admission control backpressures at submit(): a client may have
//    at most max_inflight_per_client jobs queued+running; further submits
//    block until a slot frees (dedup attachments are free — they add no
//    work).
//
//  * Batch-lifetime independence. Nothing here is scoped to a request or
//    batch: futures resolve in completion order, a second batch submitted
//    while the first is in flight shares the workers and the cache but
//    never blocks on the first batch's completion.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "runtime/executor.hpp"
#include "runtime/job.hpp"
#include "runtime/trace.hpp"

namespace csdac::runtime {

struct SchedulerOptions {
  /// Worker threads draining the queues (0 = hardware concurrency).
  int workers = 0;
  /// Engine threads INSIDE each job. Servers keep this at 1 so concurrency
  /// comes from many independent jobs, not nested pools.
  int threads_per_job = 1;
  /// Max jobs queued+running per client id before submit() blocks.
  int max_inflight_per_client = 16;
  ExecutorOptions exec;
};

/// Counters of one scheduler instance (process-wide equivalents live in
/// the obs registry as sched.*).
struct SchedulerCounters {
  std::int64_t submitted = 0;
  std::int64_t completed = 0;
  std::int64_t dedup_inflight = 0;  ///< submissions attached to a live task
  std::int64_t admission_waits = 0;  ///< submits that blocked on the cap
};

class Scheduler {
 public:
  using ResultPtr = std::shared_ptr<const ExecResult>;

  /// Handle to a submitted (or deduplicated) job. future.get() rethrows
  /// any exception the job raised while executing.
  struct Ticket {
    mathx::HashKey128 key;
    std::shared_future<ResultPtr> future;
    bool deduped = false;  ///< attached to an already-in-flight task
  };

  /// Owns its executor (built from opts.exec) unless a shared one is
  /// given. Workers start immediately.
  explicit Scheduler(SchedulerOptions opts,
                     std::shared_ptr<JobExecutor> executor = nullptr);
  /// Drains nothing: pending tasks are abandoned with a broken-promise
  /// error only if the process is going down anyway — prefer waiting on
  /// your tickets before destruction.
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Enqueues `job` for `client` (any stable id — the server uses the
  /// connection id). Blocks while the client is at its admission cap.
  /// `trace_id` tags the job's sched.job/exec.job spans and flows into the
  /// flight recorder; `parent_span` cross-thread-parents the worker's
  /// sched.job span under the caller's span (a serve.request, typically).
  /// Deduped submissions join the FIRST submitter's task and keep its
  /// trace id — by design: one execution, one attribution.
  Ticket submit(Job job, std::uint64_t client = 0, std::string label = {},
                std::string trace_id = {}, std::uint64_t parent_span = 0);

  /// Optional JSONL trace (job_start/job_finish lines with client ids).
  /// Must be set before the first submit and outlive the scheduler.
  void set_trace(TraceLog* trace) { trace_ = trace; }

  JobExecutor& executor() { return *executor_; }
  SchedulerCounters counters() const;
  int workers() const { return static_cast<int>(threads_.size()); }
  /// Jobs queued or running right now.
  std::int64_t inflight() const;

 private:
  struct Task {
    Job job;
    mathx::HashKey128 key;
    std::string label;
    std::string trace_id;
    std::uint64_t parent_span = 0;
    std::uint64_t client = 0;
    std::uint64_t seq = 0;
    double submit_us = 0.0;
    std::int64_t admission_us = 0;  ///< time submit() blocked on the cap
    std::promise<ResultPtr> promise;
    std::shared_future<ResultPtr> future;
  };
  using TaskPtr = std::shared_ptr<Task>;

  void worker_loop(int worker);
  TaskPtr next_task_locked();

  SchedulerOptions opts_;
  std::shared_ptr<JobExecutor> executor_;
  TraceLog* trace_ = nullptr;

  mutable std::mutex mutex_;
  std::condition_variable cv_work_;  ///< workers wait for queued tasks
  std::condition_variable cv_slot_;  ///< submitters wait for client slots
  bool stop_ = false;
  std::uint64_t next_seq_ = 0;
  std::map<mathx::HashKey128, TaskPtr> inflight_;  ///< queued + running
  std::map<std::uint64_t, std::deque<TaskPtr>> queues_;
  std::map<std::uint64_t, int> client_load_;  ///< queued + running per client
  std::uint64_t rr_cursor_ = 0;  ///< last client served (round-robin)
  std::int64_t queued_ = 0;
  SchedulerCounters counters_;

  std::vector<std::thread> threads_;
};

}  // namespace csdac::runtime
