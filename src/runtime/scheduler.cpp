#include "runtime/scheduler.hpp"

#include <algorithm>
#include <chrono>

#include "mathx/parallel.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"

namespace csdac::runtime {

namespace {

struct SchedMetrics {
  obs::Counter& submitted;
  obs::Counter& completed;
  obs::Counter& dedup;
  obs::Counter& admission_waits;
  obs::Gauge& queue_depth;
  obs::Gauge& inflight;
  obs::Histogram& queue_us;
  obs::Histogram& job_us;

  static SchedMetrics& get() {
    obs::Registry& r = obs::Registry::global();
    static SchedMetrics m{
        r.counter("sched.submitted", "jobs submitted to the scheduler"),
        r.counter("sched.completed", "jobs completed by the scheduler"),
        r.counter("sched.dedup_inflight",
                  "submissions deduplicated onto an in-flight task"),
        r.counter("sched.admission_waits",
                  "submits that blocked on the per-client cap"),
        r.gauge("sched.queue_depth", "tasks queued (not yet running)"),
        r.gauge("sched.inflight", "tasks queued or running"),
        r.histogram("sched.queue_us", "task time from submit to start [us]"),
        r.histogram("sched.job_us", "task execution wall time [us]"),
    };
    return m;
  }
};

double now_us() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

Scheduler::Scheduler(SchedulerOptions opts,
                     std::shared_ptr<JobExecutor> executor)
    : opts_(std::move(opts)), executor_(std::move(executor)) {
  if (opts_.threads_per_job < 0 || opts_.max_inflight_per_client < 1) {
    throw std::invalid_argument("Scheduler: bad options");
  }
  if (!executor_) {
    executor_ = std::make_shared<JobExecutor>(opts_.exec);
  }
  const int n = mathx::resolve_threads(opts_.workers);
  opts_.workers = n;
  threads_.reserve(static_cast<std::size_t>(n));
  for (int w = 0; w < n; ++w) {
    threads_.emplace_back([this, w] { worker_loop(w); });
  }
}

Scheduler::~Scheduler() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_work_.notify_all();
  cv_slot_.notify_all();
  for (auto& t : threads_) t.join();
  // Anything still queued resolves to a broken promise for any holder of
  // its future; the server always waits on its tickets, so this only
  // triggers on teardown-with-abandoned-work.
}

Scheduler::Ticket Scheduler::submit(Job job, std::uint64_t client,
                                    std::string label, std::string trace_id,
                                    std::uint64_t parent_span) {
  const mathx::HashKey128 key = job_key(job);
  SchedMetrics& m = SchedMetrics::get();
  std::int64_t admission_us = 0;
  std::unique_lock<std::mutex> lock(mutex_);

  if (const auto it = inflight_.find(key); it != inflight_.end()) {
    ++counters_.dedup_inflight;
    m.dedup.add(1);
    return Ticket{key, it->second->future, true};
  }

  // Admission control: block while this client is at its cap. Re-check the
  // in-flight table after every wake — someone may have submitted the same
  // key meanwhile, which we can join for free.
  while (!stop_ &&
         client_load_[client] >= opts_.max_inflight_per_client) {
    ++counters_.admission_waits;
    m.admission_waits.add(1);
    const double wait0 = now_us();
    cv_slot_.wait(lock, [&] {
      return stop_ ||
             client_load_[client] < opts_.max_inflight_per_client ||
             inflight_.count(key) != 0;
    });
    admission_us += static_cast<std::int64_t>(now_us() - wait0);
    if (const auto it = inflight_.find(key); it != inflight_.end()) {
      ++counters_.dedup_inflight;
      m.dedup.add(1);
      return Ticket{key, it->second->future, true};
    }
  }
  if (stop_) {
    throw std::runtime_error("Scheduler::submit: scheduler stopped");
  }

  auto task = std::make_shared<Task>();
  task->job = std::move(job);
  task->key = key;
  task->label = label.empty()
                    ? std::string(kind_name(job_kind(task->job)))
                    : std::move(label);
  task->trace_id = std::move(trace_id);
  task->parent_span = parent_span;
  task->admission_us = admission_us;
  task->client = client;
  task->seq = next_seq_++;
  task->submit_us = now_us();
  task->future = task->promise.get_future().share();
  inflight_.emplace(key, task);
  queues_[client].push_back(task);
  ++client_load_[client];
  ++queued_;
  ++counters_.submitted;
  m.submitted.add(1);
  m.queue_depth.set(static_cast<double>(queued_));
  m.inflight.set(static_cast<double>(inflight_.size()));

  if (trace_ && trace_->enabled()) {
    trace_->emit(JsonLine()
                     .field("ev", "job_start")
                     .field("job", static_cast<std::int64_t>(task->seq))
                     .field("kind", kind_name(job_kind(task->job)))
                     .field("key", key.hex())
                     .field("label", task->label)
                     .field("client", static_cast<std::int64_t>(client)));
  }
  lock.unlock();
  cv_work_.notify_one();
  return Ticket{key, task->future, false};
}

/// Round-robin pick: the first non-empty client queue strictly after the
/// cursor, wrapping. Requires at least one queued task. Lock held.
Scheduler::TaskPtr Scheduler::next_task_locked() {
  auto it = queues_.upper_bound(rr_cursor_);
  for (std::size_t hops = 0; hops <= queues_.size(); ++hops) {
    if (it == queues_.end()) it = queues_.begin();
    if (!it->second.empty()) {
      TaskPtr task = std::move(it->second.front());
      it->second.pop_front();
      rr_cursor_ = it->first;
      --queued_;
      return task;
    }
    ++it;
  }
  return nullptr;
}

void Scheduler::worker_loop(int /*worker*/) {
  SchedMetrics& m = SchedMetrics::get();
  for (;;) {
    TaskPtr task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_work_.wait(lock, [&] { return stop_ || queued_ > 0; });
      if (stop_) return;
      task = next_task_locked();
      if (!task) continue;
      m.queue_depth.set(static_cast<double>(queued_));
    }

    const std::int64_t queue_us =
        static_cast<std::int64_t>(now_us() - task->submit_us);
    m.queue_us.observe(queue_us);
    ResultPtr result;
    std::exception_ptr error;
    const auto t0 = std::chrono::steady_clock::now();
    try {
      // Cross-thread parent: the submitting request's span, when given
      // (parent 0 keeps the span a root, which is what worker threads had
      // before trace propagation existed).
      obs::ScopedSpan span("sched.job", task->parent_span);
      span.attr("kind", kind_name(job_kind(task->job)))
          .attr("label", task->label)
          .attr("client", static_cast<std::int64_t>(task->client));
      if (!task->trace_id.empty()) span.attr("trace_id", task->trace_id);
      ExecResult er = executor_->run(task->job, task->key,
                                     opts_.threads_per_job, task->trace_id);
      // The scheduler alone can see the pre-execution waits; fold them
      // into the job's stage record before the future freezes it.
      er.stages.admission_us = task->admission_us;
      er.stages.queue_us = queue_us;
      result = std::make_shared<const ExecResult>(std::move(er));
    } catch (...) {
      error = std::current_exception();
    }
    const double wall_s = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - t0)
                              .count();
    m.job_us.observe(static_cast<std::int64_t>(wall_s * 1e6));

    // Resolve the future BEFORE leaving the in-flight table, so a
    // duplicate submit racing with completion either joins a resolved
    // task or misses the table and hits the cache tiers — never recomputes
    // a result that is milliseconds from materializing.
    if (error) {
      task->promise.set_exception(error);
    } else {
      task->promise.set_value(std::move(result));
    }

    if (trace_ && trace_->enabled()) {
      trace_->emit(JsonLine()
                       .field("ev", "job_finish")
                       .field("job", static_cast<std::int64_t>(task->seq))
                       .field("kind", kind_name(job_kind(task->job)))
                       .field("key", task->key.hex())
                       .field("label", task->label)
                       .field("client",
                              static_cast<std::int64_t>(task->client))
                       .field("error", error ? true : false)
                       .field("wall_s", wall_s));
    }

    {
      std::lock_guard<std::mutex> lock(mutex_);
      inflight_.erase(task->key);
      if (--client_load_[task->client] == 0) {
        client_load_.erase(task->client);
        // Queues for idle clients stay around (empty deques are cheap and
        // keep the round-robin order stable for returning clients).
      }
      ++counters_.completed;
      m.inflight.set(static_cast<double>(inflight_.size()));
    }
    m.completed.add(1);
    cv_slot_.notify_all();
  }
}

SchedulerCounters Scheduler::counters() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return counters_;
}

std::int64_t Scheduler::inflight() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<std::int64_t>(inflight_.size());
}

}  // namespace csdac::runtime
