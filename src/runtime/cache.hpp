// Persistent content-addressed result store. Entries are keyed by the
// 128-bit hash of a job's canonical input bytes (plus the engine version
// tag, see job.hpp) and live as one file each under the cache directory:
//
//   <dir>/<32-hex-key>.bin = magic "CSDC" | u32 format | u64 payload_fnv
//                            | u64 payload_size | payload bytes
//
// Writes go to a unique temp file followed by an atomic rename, so readers
// never observe a partial entry and concurrent writers of the same key
// simply race to produce identical content. Reads verify the full header
// and the payload FNV; anything inconsistent is deleted and reported as a
// miss (corruption must degrade to recomputation, never to a wrong result).
// The store is size-bounded: after each insert, least-recently-used entries
// (by file mtime, refreshed on every hit) are evicted until the byte budget
// holds.
#pragma once

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "mathx/hash.hpp"

namespace csdac::runtime {

struct CacheCounters {
  std::int64_t hits = 0;
  std::int64_t misses = 0;
  std::int64_t evictions = 0;
  std::int64_t corrupt = 0;  ///< entries dropped by validation (also missed)
  std::int64_t stores = 0;
  std::int64_t bytes_stored = 0;
};

struct CacheOptions {
  std::string dir = ".csdac-cache";
  /// Total on-disk byte budget (payload + headers). Default 256 MiB.
  std::uint64_t max_bytes = 256ull << 20;
};

class ResultCache {
 public:
  explicit ResultCache(CacheOptions opts);

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  /// On hit fills `payload`, refreshes the entry's LRU stamp and returns
  /// true. Misses (absent or failed validation) return false.
  bool get(const mathx::HashKey128& key, std::vector<unsigned char>& payload);

  /// Stores `payload` under `key` (atomic write-then-rename) and evicts
  /// LRU entries if the byte budget is now exceeded. Storing an existing
  /// key only refreshes its LRU stamp — content-addressed entries for the
  /// same key are identical by construction.
  void put(const mathx::HashKey128& key,
           const std::vector<unsigned char>& payload);

  CacheCounters counters() const;
  const CacheOptions& options() const { return opts_; }

  /// Invoked as on_evict(key_hex, bytes) for every evicted entry (the
  /// runtime wires this to the trace log). Set before first use; called
  /// with the cache lock held, so the callback must not reenter the cache.
  std::function<void(const std::string&, std::uint64_t)> on_evict;

 private:
  std::filesystem::path entry_path(const mathx::HashKey128& key) const;
  void evict_to_fit(const std::filesystem::path& keep);  // lock held

  CacheOptions opts_;
  mutable std::mutex mutex_;
  CacheCounters counters_;
  std::atomic<std::uint64_t> tmp_seq_{0};
};

}  // namespace csdac::runtime
