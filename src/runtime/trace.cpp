#include "runtime/trace.hpp"

#include <cstdio>
#include <stdexcept>

#include "runtime/json.hpp"

namespace csdac::runtime {

void JsonLine::key(std::string_view k) {
  if (!first_) s_ += ',';
  first_ = false;
  s_ += '"';
  append_json_escaped(s_, k);
  s_ += "\":";
}

JsonLine& JsonLine::field(std::string_view k, std::string_view v) {
  key(k);
  s_ += '"';
  append_json_escaped(s_, v);
  s_ += '"';
  return *this;
}

JsonLine& JsonLine::field(std::string_view k, double v) {
  key(k);
  char buf[40];
  if (v != v || v > 1.7e308 || v < -1.7e308) {
    s_ += "null";
  } else {
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    s_ += buf;
  }
  return *this;
}

JsonLine& JsonLine::field(std::string_view k, std::int64_t v) {
  key(k);
  s_ += std::to_string(v);
  return *this;
}

JsonLine& JsonLine::field(std::string_view k, bool v) {
  key(k);
  s_ += v ? "true" : "false";
  return *this;
}

void TraceLog::open(const std::string& path) {
  std::lock_guard<std::mutex> lock(mutex_);
  out_.open(path, std::ios::binary | std::ios::trunc);
  if (!out_) {
    throw std::runtime_error("TraceLog: cannot open " + path);
  }
  t0_ = std::chrono::steady_clock::now();
}

double TraceLog::elapsed_ms() const {
  if (!out_.is_open()) return 0.0;
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0_)
      .count();
}

void TraceSpanSink::on_span(const obs::SpanRecord& span) {
  if (!log_.enabled()) return;
  JsonLine line;
  line.field("ev", "span")
      .field("name", span.name)
      .field("id", static_cast<std::int64_t>(span.id))
      .field("parent", static_cast<std::int64_t>(span.parent))
      .field("depth", span.depth)
      .field("tid", static_cast<std::int64_t>(span.tid))
      .field("start_us", span.start_us)
      .field("dur_us", span.dur_us);
  for (const auto& [k, v] : span.attrs) {
    line.field("attr." + k, v);
  }
  log_.emit(line);
}

void TraceLog::emit(const JsonLine& line) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!out_.is_open()) return;
  JsonLine stamped = line;
  stamped.field("t_ms", std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - t0_)
                            .count());
  out_ << stamped.str() << '\n';
  out_.flush();  // the log is a liveness signal; don't buffer it
}

}  // namespace csdac::runtime
