#include "runtime/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>

#include "obs/json_escape.hpp"

namespace csdac::runtime {

const JsonValue* JsonValue::find(std::string_view key) const {
  if (type != Type::kObject) return nullptr;
  for (const auto& [k, v] : obj) {
    if (k == key) return &v;
  }
  return nullptr;
}

double JsonValue::number_or(std::string_view key, double def) const {
  const JsonValue* v = find(key);
  return v && v->is_number() ? v->num : def;
}

std::int64_t JsonValue::int_or(std::string_view key, std::int64_t def) const {
  const JsonValue* v = find(key);
  if (!v || !v->is_number()) return def;
  // Saturate before casting: converting a double beyond int64 range (a
  // hostile "chips": 1e999, or NaN) is undefined behavior. Saturated
  // values then fail the caller's bounds checks like any other
  // out-of-range input. The NaN comparison is deliberately inverted so
  // NaN lands in the first branch.
  const double n = v->num;
  if (!(n >= -9223372036854775808.0)) {
    return std::numeric_limits<std::int64_t>::min();
  }
  if (n >= 9223372036854775808.0) {
    return std::numeric_limits<std::int64_t>::max();
  }
  return static_cast<std::int64_t>(n);
}

bool JsonValue::bool_or(std::string_view key, bool def) const {
  const JsonValue* v = find(key);
  return v && v->type == Type::kBool ? v->b : def;
}

std::string JsonValue::string_or(std::string_view key,
                                 std::string_view def) const {
  const JsonValue* v = find(key);
  return v && v->is_string() ? v->str : std::string(def);
}

namespace {

class Parser {
 public:
  Parser(std::string_view text, std::string* err) : s_(text), err_(err) {}

  bool parse(JsonValue& out) {
    skip_ws();
    if (!value(out)) return false;
    skip_ws();
    if (pos_ != s_.size()) return fail("trailing characters");
    return true;
  }

 private:
  bool fail(const char* msg) {
    if (err_) {
      char buf[128];
      std::snprintf(buf, sizeof(buf), "%s at offset %zu", msg, pos_);
      *err_ = buf;
    }
    return false;
  }

  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool literal(std::string_view lit) {
    if (s_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  bool value(JsonValue& out) {
    if (++depth_ > 64) return fail("nesting too deep");
    bool ok = value_inner(out);
    --depth_;
    return ok;
  }

  bool value_inner(JsonValue& out) {
    if (pos_ >= s_.size()) return fail("unexpected end of input");
    const char c = s_[pos_];
    switch (c) {
      case '{': return object(out);
      case '[': return array(out);
      case '"':
        out.type = JsonValue::Type::kString;
        return string(out.str);
      case 't':
        out.type = JsonValue::Type::kBool;
        out.b = true;
        return literal("true") || fail("bad literal");
      case 'f':
        out.type = JsonValue::Type::kBool;
        out.b = false;
        return literal("false") || fail("bad literal");
      case 'n':
        out.type = JsonValue::Type::kNull;
        return literal("null") || fail("bad literal");
      default: return number(out);
    }
  }

  bool object(JsonValue& out) {
    out.type = JsonValue::Type::kObject;
    ++pos_;  // '{'
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      std::string key;
      if (pos_ >= s_.size() || s_[pos_] != '"') return fail("expected key");
      if (!string(key)) return false;
      skip_ws();
      if (pos_ >= s_.size() || s_[pos_] != ':') return fail("expected ':'");
      ++pos_;
      skip_ws();
      JsonValue v;
      if (!value(v)) return false;
      out.obj.emplace_back(std::move(key), std::move(v));
      skip_ws();
      if (pos_ >= s_.size()) return fail("unterminated object");
      if (s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (s_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or '}'");
    }
  }

  bool array(JsonValue& out) {
    out.type = JsonValue::Type::kArray;
    ++pos_;  // '['
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      JsonValue v;
      if (!value(v)) return false;
      out.arr.push_back(std::move(v));
      skip_ws();
      if (pos_ >= s_.size()) return fail("unterminated array");
      if (s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (s_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or ']'");
    }
  }

  bool string(std::string& out) {
    ++pos_;  // opening quote
    out.clear();
    while (pos_ < s_.size()) {
      const char c = s_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= s_.size()) break;
        const char e = s_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (s_.size() - pos_ < 4) return fail("bad \\u escape");
            unsigned cp = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = s_[pos_++];
              cp <<= 4;
              if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') cp |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') cp |= static_cast<unsigned>(h - 'A' + 10);
              else return fail("bad \\u escape");
            }
            // UTF-8 encode the BMP code point (surrogate pairs in request
            // files are not supported; they decode as two replacement-ish
            // 3-byte sequences, which is harmless for config text).
            if (cp < 0x80) {
              out += static_cast<char>(cp);
            } else if (cp < 0x800) {
              out += static_cast<char>(0xc0 | (cp >> 6));
              out += static_cast<char>(0x80 | (cp & 0x3f));
            } else {
              out += static_cast<char>(0xe0 | (cp >> 12));
              out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
              out += static_cast<char>(0x80 | (cp & 0x3f));
            }
            break;
          }
          default: return fail("bad escape");
        }
      } else {
        out += c;
      }
    }
    return fail("unterminated string");
  }

  bool number(JsonValue& out) {
    const std::size_t start = pos_;
    if (pos_ < s_.size() && (s_[pos_] == '-' || s_[pos_] == '+')) ++pos_;
    bool digits = false;
    auto eat_digits = [&] {
      while (pos_ < s_.size() && std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
        ++pos_;
        digits = true;
      }
    };
    eat_digits();
    if (pos_ < s_.size() && s_[pos_] == '.') {
      ++pos_;
      eat_digits();
    }
    if (pos_ < s_.size() && (s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < s_.size() && (s_[pos_] == '-' || s_[pos_] == '+')) ++pos_;
      eat_digits();
    }
    if (!digits) return fail("expected value");
    out.type = JsonValue::Type::kNumber;
    out.num = std::strtod(std::string(s_.substr(start, pos_ - start)).c_str(),
                          nullptr);
    if (!std::isfinite(out.num)) return fail("non-finite number");
    return true;
  }

  std::string_view s_;
  std::size_t pos_ = 0;
  int depth_ = 0;
  std::string* err_;
};

}  // namespace

bool parse_json(std::string_view text, JsonValue& out, std::string* err) {
  return Parser(text, err).parse(out);
}

void append_json_escaped(std::string& out, std::string_view s) {
  obs::append_json_escaped(out, s);
}

}  // namespace csdac::runtime
