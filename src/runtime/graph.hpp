// Job-graph runtime: deduplicating DAG executor over the typed jobs of
// job.hpp, with the persistent content-addressed cache and the JSONL trace
// wired in. Independent ready jobs are fanned out on the shared mathx
// thread pool (each then runs its own kernels single-threaded); a lone
// ready job gets the full pool for its internal Monte-Carlo parallelism.
// Either way every job is a pure function of its key, so the execution
// schedule can never change a result — only its wall time.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "runtime/cache.hpp"
#include "runtime/executor.hpp"
#include "runtime/job.hpp"
#include "runtime/trace.hpp"

namespace csdac::runtime {

struct RuntimeOptions {
  int threads = 0;  ///< engine workers (0 = hardware concurrency)
  /// Directory of the persistent result cache; empty disables caching.
  std::string cache_dir;
  std::uint64_t cache_max_bytes = 256ull << 20;
  /// In-memory hot tier above the disk cache; 0 keeps it disabled (the
  /// batch tools answer each unique question once per process, so RAM
  /// residency only pays off for long-lived servers).
  std::uint64_t hot_bytes = 0;
  /// JSONL trace file; empty disables tracing.
  std::string trace_path;
};

using JobId = int;

/// Everything known about one scheduled job after run_all().
struct JobRecord {
  Job job;
  mathx::HashKey128 key;
  std::string label;  ///< caller-supplied display name (or the kind name)
  JobValue value;     ///< valid once done
  /// Engine run record; on a cache hit it carries cache_hits = 1 and
  /// evaluated = 0 (nothing was recomputed).
  mathx::RunStats stats;
  double wall_seconds = 0.0;  ///< end-to-end, including cache I/O
  ResultTier tier = ResultTier::kComputed;  ///< where the value came from
  bool cache_hit = false;
  bool done = false;
};

class JobGraph {
 public:
  explicit JobGraph(RuntimeOptions opts = {});
  /// Runs against a SHARED executor (cache tiers owned elsewhere, e.g. by
  /// a Scheduler): graph execution is then fully decoupled from this
  /// graph's lifetime — any number of graphs may run against the executor
  /// concurrently. opts.cache_dir/hot_bytes are ignored in this form.
  JobGraph(RuntimeOptions opts, std::shared_ptr<JobExecutor> executor);
  /// Unregisters the trace span sink (when tracing was enabled).
  ~JobGraph();

  /// Adds a job, deduplicating by content key: adding an identical job
  /// returns the existing id (and the work runs once).
  JobId add(Job job, std::string label = {});

  /// Declares that `job` must run after `prerequisite`.
  void depend(JobId job, JobId prerequisite);

  /// Executes every pending job in dependency order. Safe to call again
  /// after adding more jobs; completed jobs are not re-run. Throws on
  /// dependency cycles.
  void run_all();

  const JobRecord& record(JobId id) const { return jobs_.at(id); }
  std::size_t size() const { return jobs_.size(); }

  /// Counters of the persistent cache (zeroes when caching is disabled).
  CacheCounters cache_counters() const;
  /// Counters of the in-memory hot tier (zeroes when disabled).
  HotCacheCounters hot_counters() const;

  const RuntimeOptions& options() const { return opts_; }
  TraceLog& trace() { return trace_; }
  const std::shared_ptr<JobExecutor>& executor() const { return executor_; }

 private:
  void run_one(JobId id, int threads);

  RuntimeOptions opts_;
  std::shared_ptr<JobExecutor> executor_;
  TraceLog trace_;
  /// Registered with obs::Tracer::global() while tracing, so engine and
  /// job spans land in the JSONL alongside the classic events.
  std::unique_ptr<TraceSpanSink> span_sink_;
  std::vector<JobRecord> jobs_;
  std::map<mathx::HashKey128, JobId> by_key_;
  std::vector<std::vector<JobId>> prereqs_;  ///< prereqs_[id] = dependencies
};

/// One-shot convenience: run a single job through a private graph with the
/// given options (cache and trace fully honored).
JobRecord run_job(const Job& job, const RuntimeOptions& opts = {});

}  // namespace csdac::runtime
