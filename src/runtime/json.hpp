// Minimal dependency-free JSON support for the runtime layer: a
// recursive-descent parser for the batch design-service request files and
// trace inspection, plus a tiny escaped-string helper shared with the JSONL
// trace writer. Numbers are doubles (the request schema never needs more
// than 53-bit integers); object keys keep insertion order.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace csdac::runtime {

struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool b = false;
  double num = 0.0;
  std::string str;
  std::vector<JsonValue> arr;
  std::vector<std::pair<std::string, JsonValue>> obj;

  bool is_null() const { return type == Type::kNull; }
  bool is_object() const { return type == Type::kObject; }
  bool is_array() const { return type == Type::kArray; }
  bool is_string() const { return type == Type::kString; }
  bool is_number() const { return type == Type::kNumber; }

  /// First member with the given key, or nullptr.
  const JsonValue* find(std::string_view key) const;

  // Typed getters with defaults, tolerant of missing keys (objects only;
  // return `def` otherwise). The service uses these to apply request
  // overrides on top of the library defaults.
  double number_or(std::string_view key, double def) const;
  std::int64_t int_or(std::string_view key, std::int64_t def) const;
  bool bool_or(std::string_view key, bool def) const;
  std::string string_or(std::string_view key, std::string_view def) const;
};

/// Parses `text` into `out`. On failure returns false and, if `err` is
/// non-null, stores a message with the byte offset of the problem.
bool parse_json(std::string_view text, JsonValue& out, std::string* err);

/// Appends `s` to `out` with JSON string escaping (no surrounding quotes).
/// Thin forwarder to obs::append_json_escaped — the single escaper shared
/// by the JSONL trace, the bench JsonWriter, and the obs exporters — kept
/// here so existing runtime call sites need no include changes.
void append_json_escaped(std::string& out, std::string_view s);

}  // namespace csdac::runtime
