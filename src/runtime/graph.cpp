#include "runtime/graph.hpp"

#include <chrono>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/span.hpp"

namespace csdac::runtime {

namespace {

/// Graph-level instruments in the process-wide registry.
struct GraphMetrics {
  obs::Counter& jobs;
  obs::Counter& waves;
  obs::Histogram& job_us;

  static GraphMetrics& get() {
    static GraphMetrics m{
        obs::Registry::global().counter("graph.jobs",
                                        "jobs executed by the job graph"),
        obs::Registry::global().counter(
            "graph.waves", "dependency waves dispatched by run_all"),
        obs::Registry::global().histogram(
            "graph.job_us", "per-job wall time incl. cache I/O [us]"),
    };
    return m;
  }
};

}  // namespace

JobGraph::JobGraph(RuntimeOptions opts) : opts_(std::move(opts)) {
  ExecutorOptions eo;
  eo.cache_dir = opts_.cache_dir;
  eo.cache_max_bytes = opts_.cache_max_bytes;
  eo.hot_bytes = opts_.hot_bytes;
  executor_ = std::make_shared<JobExecutor>(std::move(eo));
  if (!opts_.trace_path.empty()) {
    trace_.open(opts_.trace_path);
    span_sink_ = std::make_unique<TraceSpanSink>(trace_);
    obs::Tracer::global().add_sink(span_sink_.get());
  }
  // The graph owns this executor, so wiring the eviction trace callback
  // cannot race with another graph's trace (shared executors skip it).
  if (executor_->disk() && trace_.enabled()) {
    executor_->disk()->on_evict = [this](const std::string& key_hex,
                                         std::uint64_t bytes) {
      trace_.emit(JsonLine()
                      .field("ev", "cache_evict")
                      .field("key", key_hex)
                      .field("bytes", static_cast<std::int64_t>(bytes)));
    };
  }
}

JobGraph::JobGraph(RuntimeOptions opts, std::shared_ptr<JobExecutor> executor)
    : opts_(std::move(opts)), executor_(std::move(executor)) {
  if (!executor_) {
    throw std::invalid_argument("JobGraph: null shared executor");
  }
  if (!opts_.trace_path.empty()) {
    trace_.open(opts_.trace_path);
    span_sink_ = std::make_unique<TraceSpanSink>(trace_);
    obs::Tracer::global().add_sink(span_sink_.get());
  }
}

JobGraph::~JobGraph() {
  if (span_sink_) obs::Tracer::global().remove_sink(span_sink_.get());
}

JobId JobGraph::add(Job job, std::string label) {
  const mathx::HashKey128 key = job_key(job);
  if (const auto it = by_key_.find(key); it != by_key_.end()) {
    return it->second;
  }
  const JobId id = static_cast<JobId>(jobs_.size());
  JobRecord r;
  if (label.empty()) label = std::string(kind_name(job_kind(job)));
  r.label = std::move(label);
  r.key = key;
  r.job = std::move(job);
  jobs_.push_back(std::move(r));
  prereqs_.emplace_back();
  by_key_.emplace(key, id);
  return id;
}

void JobGraph::depend(JobId job, JobId prerequisite) {
  if (job < 0 || prerequisite < 0 ||
      static_cast<std::size_t>(job) >= jobs_.size() ||
      static_cast<std::size_t>(prerequisite) >= jobs_.size()) {
    throw std::out_of_range("JobGraph::depend: bad id");
  }
  if (job == prerequisite) {
    throw std::invalid_argument("JobGraph::depend: self-dependency");
  }
  prereqs_[static_cast<std::size_t>(job)].push_back(prerequisite);
}

void JobGraph::run_one(JobId id, int threads) {
  JobRecord& r = jobs_[static_cast<std::size_t>(id)];
  const std::string key_hex = r.key.hex();
  const std::string_view kind = kind_name(job_kind(r.job));
  if (trace_.enabled()) {
    trace_.emit(JsonLine()
                    .field("ev", "job_start")
                    .field("job", id)
                    .field("kind", kind)
                    .field("key", key_hex)
                    .field("label", r.label));
  }
  obs::ScopedSpan span("graph.job");
  span.attr("kind", kind).attr("label", r.label).attr("key", key_hex);

  ExecResult res = executor_->run(r.job, r.key, threads);
  const bool caching =
      executor_->disk() != nullptr || executor_->hot() != nullptr;
  r.value = std::move(res.value);
  r.stats = res.stats;
  r.tier = res.tier;
  r.cache_hit = res.cache_hit();
  r.wall_seconds = res.wall_seconds;
  r.done = true;
  const char* cache_str =
      caching ? (r.cache_hit ? "hit" : "miss") : "off";

  GraphMetrics& gm = GraphMetrics::get();
  gm.jobs.add(1);
  gm.job_us.observe(static_cast<std::int64_t>(r.wall_seconds * 1e6));
  span.attr("cache", cache_str).attr("tier", tier_name(r.tier))
      .attr("evaluated", r.stats.evaluated);

  if (trace_.enabled()) {
    trace_.emit(JsonLine()
                    .field("ev", "job_finish")
                    .field("job", id)
                    .field("kind", kind)
                    .field("key", key_hex)
                    .field("label", r.label)
                    .field("cache", cache_str)
                    .field("tier", tier_name(r.tier))
                    .field("wall_s", r.wall_seconds)
                    .field("evaluated", r.stats.evaluated)
                    .field("items_per_s", r.stats.items_per_second));
  }
}

void JobGraph::run_all() {
  const std::size_t n = jobs_.size();
  std::vector<int> waiting(n, 0);
  std::vector<std::vector<JobId>> dependents(n);
  std::size_t pending = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (jobs_[i].done) continue;
    ++pending;
    for (const JobId p : prereqs_[i]) {
      if (jobs_[static_cast<std::size_t>(p)].done) continue;
      ++waiting[i];
      dependents[static_cast<std::size_t>(p)].push_back(
          static_cast<JobId>(i));
    }
  }
  if (pending == 0) return;

  if (trace_.enabled()) {
    trace_.emit(JsonLine()
                    .field("ev", "run_start")
                    .field("schema", kTraceSchema)
                    .field("jobs", static_cast<std::int64_t>(pending))
                    .field("threads", opts_.threads)
                    .field("cache_dir", executor_->disk()
                                            ? executor_->disk()->options().dir
                                            : std::string()));
  }
  obs::ScopedSpan run_span("graph.run");
  run_span.attr("jobs", static_cast<std::int64_t>(pending))
      .attr("threads", opts_.threads);
  const auto t0 = std::chrono::steady_clock::now();
  const std::int64_t chips0 = dac::mc_chips_evaluated();

  std::vector<JobId> ready;
  for (std::size_t i = 0; i < n; ++i) {
    if (!jobs_[i].done && waiting[i] == 0) {
      ready.push_back(static_cast<JobId>(i));
    }
  }
  while (!ready.empty()) {
    const std::vector<JobId> wave = std::move(ready);
    ready.clear();
    GraphMetrics::get().waves.add(1);
    if (wave.size() == 1) {
      // A lone job gets the whole pool for its internal parallelism.
      run_one(wave[0], opts_.threads);
    } else {
      // Fan the wave out across the pool; each job runs its kernels
      // single-threaded. Results are schedule-invariant either way.
      mathx::parallel_for(
          static_cast<std::int64_t>(wave.size()), opts_.threads,
          [&](std::int64_t i) {
            run_one(wave[static_cast<std::size_t>(i)], 1);
          });
    }
    for (const JobId finished : wave) {
      --pending;
      for (const JobId d : dependents[static_cast<std::size_t>(finished)]) {
        if (--waiting[static_cast<std::size_t>(d)] == 0) {
          ready.push_back(d);
        }
      }
    }
  }
  if (pending != 0) {
    throw std::runtime_error("JobGraph::run_all: dependency cycle");
  }

  if (trace_.enabled()) {
    const CacheCounters c = cache_counters();
    trace_.emit(
        JsonLine()
            .field("ev", "run_finish")
            .field("wall_s", std::chrono::duration<double>(
                                 std::chrono::steady_clock::now() - t0)
                                 .count())
            .field("cache_hits", c.hits)
            .field("cache_misses", c.misses)
            .field("cache_evictions", c.evictions)
            .field("chip_evals", dac::mc_chips_evaluated() - chips0));
  }
}

CacheCounters JobGraph::cache_counters() const {
  return executor_->disk_counters();
}

HotCacheCounters JobGraph::hot_counters() const {
  return executor_->hot_counters();
}

JobRecord run_job(const Job& job, const RuntimeOptions& opts) {
  JobGraph g(opts);
  const JobId id = g.add(job);
  g.run_all();
  return g.record(id);
}

}  // namespace csdac::runtime
