// Shared job executor: the tiered result store (in-memory hot tier above
// the persistent disk cache) plus fresh execution, factored out of the
// batch-scoped JobGraph so that any number of concurrently-running graphs,
// scheduler workers, and server requests can share ONE set of cache tiers.
// run() is safe to call from many threads at once: the hot tier is sharded,
// the disk tier serializes internally, and execute_job is a pure function
// of (job, threads).
//
// Lookup order: hot tier -> disk tier -> compute. Disk hits are promoted
// into the hot tier; computed results are written to both, so a warm
// process answers from RAM and a warm cache directory answers a fresh
// process from disk exactly as before.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "runtime/cache.hpp"
#include "runtime/hot_cache.hpp"
#include "runtime/job.hpp"

namespace csdac::runtime {

struct ExecutorOptions {
  /// Directory of the persistent disk cache; empty disables the disk tier.
  std::string cache_dir;
  std::uint64_t cache_max_bytes = 256ull << 20;
  /// Byte budget of the in-memory hot tier; 0 disables it.
  std::uint64_t hot_bytes = 0;
  int hot_shards = 8;
};

/// Where a result came from.
enum class ResultTier : std::uint8_t {
  kComputed = 0,  ///< executed fresh (and stored, when tiers exist)
  kHot = 1,       ///< served from the in-memory tier, zero disk I/O
  kDisk = 2,      ///< served from the persistent store
};

std::string_view tier_name(ResultTier tier);

/// Per-stage latency attribution of one resolved job, microseconds. The
/// executor fills the lookup/compute/store stages; the scheduler adds the
/// admission and queue waits it alone can see. Stages a job never entered
/// stay 0 — a hot hit has compute_us == 0 by construction, which is
/// exactly what the warm-pass regression checks assert on.
struct StageTimes {
  std::int64_t admission_us = 0;  ///< blocked at the per-client cap
  std::int64_t queue_us = 0;      ///< submit -> worker pickup
  std::int64_t hot_us = 0;        ///< hot-tier lookup (hit or miss)
  std::int64_t disk_us = 0;       ///< disk-tier lookup incl. hot promote
  std::int64_t compute_us = 0;    ///< fresh execution
  std::int64_t store_us = 0;      ///< encode + write-through to the tiers
};

struct ExecResult {
  JobValue value;
  mathx::RunStats stats;  ///< cache_hits=1/evaluated=0 on any cache hit
  ResultTier tier = ResultTier::kComputed;
  double wall_seconds = 0.0;  ///< end-to-end, including cache I/O
  StageTimes stages;

  bool cache_hit() const { return tier != ResultTier::kComputed; }
};

class JobExecutor {
 public:
  explicit JobExecutor(ExecutorOptions opts);

  JobExecutor(const JobExecutor&) = delete;
  JobExecutor& operator=(const JobExecutor&) = delete;

  /// Resolves one job: tiered lookup, then fresh execution on `threads`
  /// engine workers. Thread-safe; concurrent callers with the same key
  /// may both compute (identical results race benignly into the store) —
  /// single-flight dedup is the Scheduler's job, not the executor's.
  /// `trace_id`, when non-empty, tags the exec.job span so the flight
  /// recorder and trace dumps can tie tier lookups back to the request.
  ExecResult run(const Job& job, const mathx::HashKey128& key, int threads,
                 std::string_view trace_id = {});

  /// Counters of the disk tier (zeroes when disabled).
  CacheCounters disk_counters() const;
  /// Counters of the hot tier (zeroes when disabled).
  HotCacheCounters hot_counters() const;

  ResultCache* disk() { return disk_.get(); }
  HotCache* hot() { return hot_.get(); }
  const ExecutorOptions& options() const { return opts_; }

 private:
  ExecutorOptions opts_;
  std::unique_ptr<ResultCache> disk_;
  std::unique_ptr<HotCache> hot_;
};

}  // namespace csdac::runtime
