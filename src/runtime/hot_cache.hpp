// In-memory hot tier above the persistent disk cache: a sharded map with a
// per-shard LRU list and a global byte budget, so repeated questions are
// answered from RAM without touching the filesystem at all. Keys are the
// same 128-bit content hashes as the disk tier; payloads are the encoded
// result bytes, stored verbatim, so hot hits and disk hits decode through
// the identical path and can never disagree.
//
// Sharding: key.lo (already avalanche-mixed, see mathx/hash.hpp) selects
// one of `shards` independent LRU maps, each behind its own mutex, so
// concurrent clients hitting different keys almost never contend. The byte
// budget is split evenly across shards; an entry larger than its shard's
// slice is simply not admitted (it would evict the whole shard for one
// resident). Hits refresh recency; eviction pops the least-recently-used
// entry until the shard fits.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "mathx/hash.hpp"

namespace csdac::runtime {

struct HotCacheCounters {
  std::int64_t hits = 0;
  std::int64_t misses = 0;
  std::int64_t evictions = 0;
  std::int64_t inserts = 0;
  std::int64_t rejected = 0;  ///< payloads larger than a shard's budget
  std::int64_t bytes = 0;     ///< resident payload bytes right now
};

struct HotCacheOptions {
  /// Total resident-byte budget across all shards. Default 64 MiB.
  std::uint64_t max_bytes = 64ull << 20;
  int shards = 8;
};

class HotCache {
 public:
  explicit HotCache(HotCacheOptions opts);

  HotCache(const HotCache&) = delete;
  HotCache& operator=(const HotCache&) = delete;

  /// On hit copies the payload out, refreshes recency, and returns true.
  bool get(const mathx::HashKey128& key, std::vector<unsigned char>& payload);

  /// Admits `payload` under `key` (no-op if already resident, which only
  /// refreshes recency — same-key payloads are identical by construction)
  /// and evicts LRU entries until the shard honors its budget slice.
  void put(const mathx::HashKey128& key,
           const std::vector<unsigned char>& payload);

  /// Aggregated over the shards; counters race with writers the same
  /// benign way the obs registry snapshots do.
  HotCacheCounters counters() const;

  const HotCacheOptions& options() const { return opts_; }

 private:
  struct Entry {
    mathx::HashKey128 key;
    std::vector<unsigned char> payload;
  };
  struct KeyHash {
    std::size_t operator()(const mathx::HashKey128& k) const noexcept {
      return static_cast<std::size_t>(k.lo);
    }
  };
  struct Shard {
    std::mutex mutex;
    std::list<Entry> lru;  ///< front = most recently used
    std::unordered_map<mathx::HashKey128, std::list<Entry>::iterator, KeyHash>
        by_key;
    std::uint64_t bytes = 0;
    HotCacheCounters counters;
  };

  Shard& shard_for(const mathx::HashKey128& key) {
    return *shards_[static_cast<std::size_t>(
        key.lo % static_cast<std::uint64_t>(shards_.size()))];
  }

  HotCacheOptions opts_;
  std::uint64_t shard_budget_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace csdac::runtime
