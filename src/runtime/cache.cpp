#include "runtime/cache.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <system_error>

#include "obs/metrics.hpp"

namespace csdac::runtime {

namespace {

constexpr char kMagic[4] = {'C', 'S', 'D', 'C'};
constexpr std::uint32_t kFormatVersion = 1;
constexpr std::size_t kHeaderBytes = 4 + 4 + 8 + 8;

/// Process-wide cache instruments: every ResultCache instance feeds the
/// same registry metrics (per-instance CacheCounters stay exact for the
/// trace's run_finish line; these power /metrics and the CI smoke checks).
struct CacheMetrics {
  obs::Counter& hits;
  obs::Counter& misses;
  obs::Counter& evictions;
  obs::Counter& corrupt;
  obs::Counter& stores;
  obs::Counter& bytes_stored;
  obs::Histogram& payload_bytes;

  static CacheMetrics& get() {
    auto& r = obs::Registry::global();
    static CacheMetrics m{
        r.counter("cache.hits", "result-cache lookups served from disk"),
        r.counter("cache.misses", "result-cache lookups that recomputed"),
        r.counter("cache.evictions", "entries evicted to honor the budget"),
        r.counter("cache.corrupt", "entries dropped by validation"),
        r.counter("cache.stores", "entries written to the store"),
        r.counter("cache.bytes_stored", "bytes written incl. headers"),
        r.histogram("cache.payload_bytes", "stored payload size [bytes]"),
    };
    return m;
  }
};

}  // namespace

ResultCache::ResultCache(CacheOptions opts) : opts_(std::move(opts)) {
  std::filesystem::create_directories(opts_.dir);
}

std::filesystem::path ResultCache::entry_path(
    const mathx::HashKey128& key) const {
  return std::filesystem::path(opts_.dir) / (key.hex() + ".bin");
}

bool ResultCache::get(const mathx::HashKey128& key,
                      std::vector<unsigned char>& payload) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto path = entry_path(key);
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    ++counters_.misses;
    CacheMetrics::get().misses.add(1);
    return false;
  }
  std::vector<unsigned char> file((std::istreambuf_iterator<char>(in)),
                                  std::istreambuf_iterator<char>());
  in.close();

  bool valid = file.size() >= kHeaderBytes;
  std::uint64_t payload_fnv = 0, payload_size = 0;
  if (valid) {
    mathx::ByteReader r(file);
    valid = r.u8() == static_cast<std::uint8_t>(kMagic[0]) &&
            r.u8() == static_cast<std::uint8_t>(kMagic[1]) &&
            r.u8() == static_cast<std::uint8_t>(kMagic[2]) &&
            r.u8() == static_cast<std::uint8_t>(kMagic[3]) &&
            r.u32() == kFormatVersion;
    payload_fnv = r.u64();
    payload_size = r.u64();
    valid = valid && r.ok() && payload_size == file.size() - kHeaderBytes;
  }
  if (valid) {
    valid = mathx::fnv1a64(file.data() + kHeaderBytes, payload_size) ==
            payload_fnv;
  }
  if (!valid) {
    // Corrupt or foreign file squatting on the entry name: drop it so the
    // slot heals on the next put.
    std::error_code ec;
    std::filesystem::remove(path, ec);
    ++counters_.corrupt;
    ++counters_.misses;
    CacheMetrics::get().corrupt.add(1);
    CacheMetrics::get().misses.add(1);
    return false;
  }

  payload.assign(file.begin() + kHeaderBytes, file.end());
  ++counters_.hits;
  CacheMetrics::get().hits.add(1);
  // Refresh the LRU stamp; failure (e.g. read-only store) only weakens
  // eviction ordering.
  std::error_code ec;
  std::filesystem::last_write_time(
      path, std::filesystem::file_time_type::clock::now(), ec);
  return true;
}

void ResultCache::put(const mathx::HashKey128& key,
                      const std::vector<unsigned char>& payload) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto path = entry_path(key);
  std::error_code ec;
  if (std::filesystem::exists(path, ec)) {
    std::filesystem::last_write_time(
        path, std::filesystem::file_time_type::clock::now(), ec);
    return;
  }

  mathx::ByteWriter header;
  header.bytes(kMagic, sizeof(kMagic));
  header.u32(kFormatVersion);
  header.u64(mathx::fnv1a64(payload.data(), payload.size()));
  header.u64(payload.size());

  char tmp_name[64];
  std::snprintf(tmp_name, sizeof(tmp_name), "tmp-%s-%llu",
                key.hex().c_str(),
                static_cast<unsigned long long>(
                    tmp_seq_.fetch_add(1, std::memory_order_relaxed)));
  const auto tmp = std::filesystem::path(opts_.dir) / tmp_name;
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return;  // cache unavailable: degrade silently to no-store
    out.write(reinterpret_cast<const char*>(header.data().data()),
              static_cast<std::streamsize>(header.size()));
    out.write(reinterpret_cast<const char*>(payload.data()),
              static_cast<std::streamsize>(payload.size()));
    if (!out) {
      out.close();
      std::filesystem::remove(tmp, ec);
      return;
    }
  }
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::filesystem::remove(tmp, ec);
    return;
  }
  ++counters_.stores;
  counters_.bytes_stored +=
      static_cast<std::int64_t>(kHeaderBytes + payload.size());
  CacheMetrics& cm = CacheMetrics::get();
  cm.stores.add(1);
  cm.bytes_stored.add(static_cast<std::int64_t>(kHeaderBytes + payload.size()));
  cm.payload_bytes.observe(static_cast<std::int64_t>(payload.size()));
  evict_to_fit(path);
}

void ResultCache::evict_to_fit(const std::filesystem::path& keep) {
  struct Entry {
    std::filesystem::path path;
    std::uint64_t bytes;
    std::filesystem::file_time_type mtime;
  };
  std::vector<Entry> entries;
  std::uint64_t total = 0;
  std::error_code ec;
  for (const auto& de :
       std::filesystem::directory_iterator(opts_.dir, ec)) {
    if (!de.is_regular_file(ec)) continue;
    if (de.path().extension() != ".bin") continue;
    const std::uint64_t bytes = de.file_size(ec);
    if (ec) continue;
    total += bytes;
    entries.push_back({de.path(), bytes, de.last_write_time(ec)});
  }
  if (total <= opts_.max_bytes) return;
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) { return a.mtime < b.mtime; });
  for (const auto& e : entries) {
    if (total <= opts_.max_bytes) break;
    if (e.path == keep) continue;  // never evict the entry just written
    std::filesystem::remove(e.path, ec);
    if (ec) continue;
    total -= e.bytes;
    ++counters_.evictions;
    CacheMetrics::get().evictions.add(1);
    if (on_evict) on_evict(e.path.stem().string(), e.bytes);
  }
}

CacheCounters ResultCache::counters() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return counters_;
}

}  // namespace csdac::runtime
