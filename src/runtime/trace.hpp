// Structured JSONL trace of a runtime session: one JSON object per line,
// written append-only through a mutex so concurrently-finishing jobs never
// interleave. Every event carries `t_ms` (milliseconds since the log was
// opened). The CI runtime-smoke job and the EXPERIMENTS.md recipes parse
// this log to prove warm-cache runs redo no Monte-Carlo work.
//
// Event vocabulary, schema "csdac-trace/2" (see graph.cpp for the
// emitting sites; /2 added the schema tag on run_start and the span
// events from the obs layer — tools/check_warm_trace.py validates both):
//   run_start   {schema, jobs, threads, cache_dir}
//   job_start   {job, kind, key, label}
//   job_finish  {job, kind, key, label, cache: "hit"|"miss"|"off",
//                wall_s, evaluated, items_per_s}
//   cache_evict {key, bytes}
//   span        {name, id, parent, depth, tid, start_us, dur_us, attrs...}
//   run_finish  {wall_s, cache_hits, cache_misses, cache_evictions,
//                chip_evals}
#pragma once

#include <cstdint>
#include <chrono>
#include <fstream>
#include <mutex>
#include <string>
#include <string_view>

#include "obs/span.hpp"

namespace csdac::runtime {

/// Schema tag stamped on the run_start event.
inline constexpr std::string_view kTraceSchema = "csdac-trace/2";

/// Builder for one trace line. The first field should be the event name
/// ("ev"); `str()` closes the object.
class JsonLine {
 public:
  JsonLine& field(std::string_view k, std::string_view v);
  JsonLine& field(std::string_view k, const char* v) {
    return field(k, std::string_view(v));
  }
  JsonLine& field(std::string_view k, double v);
  JsonLine& field(std::string_view k, std::int64_t v);
  JsonLine& field(std::string_view k, int v) {
    return field(k, static_cast<std::int64_t>(v));
  }
  JsonLine& field(std::string_view k, bool v);

  /// The finished object (idempotent).
  std::string str() const { return s_ + "}"; }

 private:
  void key(std::string_view k);

  std::string s_ = "{";
  bool first_ = true;
};

class TraceLog {
 public:
  TraceLog() = default;  ///< disabled: every emit() is a no-op

  /// Opens (truncates) the log file; throws on failure.
  void open(const std::string& path);

  bool enabled() const { return out_.is_open(); }

  /// Appends one event line, adding the `t_ms` timestamp. Thread-safe.
  void emit(const JsonLine& line);

  /// Milliseconds since open() (0 when disabled).
  double elapsed_ms() const;

 private:
  mutable std::mutex mutex_;
  std::ofstream out_;
  std::chrono::steady_clock::time_point t0_{};
};

/// obs::SpanSink that appends every finished span to a TraceLog as an
/// `ev:"span"` line (attributes become `attr.<key>` string fields). The
/// JobGraph registers one with the global tracer for the lifetime of a
/// traced run, which is what lands engine/graph/job spans in the JSONL.
class TraceSpanSink : public obs::SpanSink {
 public:
  explicit TraceSpanSink(TraceLog& log) : log_(log) {}
  void on_span(const obs::SpanRecord& span) override;

 private:
  TraceLog& log_;
};

}  // namespace csdac::runtime
