// Structured JSONL trace of a runtime session: one JSON object per line,
// written append-only through a mutex so concurrently-finishing jobs never
// interleave. Every event carries `t_ms` (milliseconds since the log was
// opened). The CI runtime-smoke job and the EXPERIMENTS.md recipes parse
// this log to prove warm-cache runs redo no Monte-Carlo work.
//
// Event vocabulary (see graph.cpp for the emitting sites):
//   run_start   {jobs, unique, threads, cache_dir}
//   job_start   {job, kind, key, label}
//   job_finish  {job, kind, key, label, cache: "hit"|"miss"|"off",
//                wall_s, evaluated, items_per_s}
//   cache_evict {key, bytes}
//   run_finish  {wall_s, cache_hits, cache_misses, cache_evictions,
//                chip_evals}
#pragma once

#include <cstdint>
#include <chrono>
#include <fstream>
#include <mutex>
#include <string>
#include <string_view>

namespace csdac::runtime {

/// Builder for one trace line. The first field should be the event name
/// ("ev"); `str()` closes the object.
class JsonLine {
 public:
  JsonLine& field(std::string_view k, std::string_view v);
  JsonLine& field(std::string_view k, const char* v) {
    return field(k, std::string_view(v));
  }
  JsonLine& field(std::string_view k, double v);
  JsonLine& field(std::string_view k, std::int64_t v);
  JsonLine& field(std::string_view k, int v) {
    return field(k, static_cast<std::int64_t>(v));
  }
  JsonLine& field(std::string_view k, bool v);

  /// The finished object (idempotent).
  std::string str() const { return s_ + "}"; }

 private:
  void key(std::string_view k);

  std::string s_ = "{";
  bool first_ = true;
};

class TraceLog {
 public:
  TraceLog() = default;  ///< disabled: every emit() is a no-op

  /// Opens (truncates) the log file; throws on failure.
  void open(const std::string& path);

  bool enabled() const { return out_.is_open(); }

  /// Appends one event line, adding the `t_ms` timestamp. Thread-safe.
  void emit(const JsonLine& line);

  /// Milliseconds since open() (0 when disabled).
  double elapsed_ms() const;

 private:
  mutable std::mutex mutex_;
  std::ofstream out_;
  std::chrono::steady_clock::time_point t0_{};
};

}  // namespace csdac::runtime
