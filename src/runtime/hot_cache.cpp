#include "runtime/hot_cache.hpp"

#include <algorithm>

#include "obs/metrics.hpp"

namespace csdac::runtime {

namespace {

/// Hot-tier instruments in the process-wide registry. The gauge tracks
/// resident bytes across every HotCache instance in the process (tests use
/// the per-instance counters when they need isolation).
struct HotMetrics {
  obs::Counter& hits;
  obs::Counter& misses;
  obs::Counter& evictions;
  obs::Counter& inserts;
  obs::Gauge& bytes;

  static HotMetrics& get() {
    obs::Registry& r = obs::Registry::global();
    static HotMetrics m{
        r.counter("cache.hot.hits", "hot-tier lookups served from memory"),
        r.counter("cache.hot.misses", "hot-tier lookups that fell through"),
        r.counter("cache.hot.evictions", "hot-tier entries evicted (LRU)"),
        r.counter("cache.hot.inserts", "hot-tier entries admitted"),
        r.gauge("cache.hot.bytes", "hot-tier resident payload bytes"),
    };
    return m;
  }
};

}  // namespace

HotCache::HotCache(HotCacheOptions opts) : opts_(opts) {
  const int n = std::max(opts_.shards, 1);
  opts_.shards = n;
  shard_budget_ = opts_.max_bytes / static_cast<std::uint64_t>(n);
  shards_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) shards_.push_back(std::make_unique<Shard>());
}

bool HotCache::get(const mathx::HashKey128& key,
                   std::vector<unsigned char>& payload) {
  Shard& s = shard_for(key);
  std::lock_guard<std::mutex> lock(s.mutex);
  const auto it = s.by_key.find(key);
  if (it == s.by_key.end()) {
    ++s.counters.misses;
    HotMetrics::get().misses.add(1);
    return false;
  }
  s.lru.splice(s.lru.begin(), s.lru, it->second);  // refresh recency
  payload = it->second->payload;
  ++s.counters.hits;
  HotMetrics::get().hits.add(1);
  return true;
}

void HotCache::put(const mathx::HashKey128& key,
                   const std::vector<unsigned char>& payload) {
  Shard& s = shard_for(key);
  HotMetrics& m = HotMetrics::get();
  std::lock_guard<std::mutex> lock(s.mutex);
  if (const auto it = s.by_key.find(key); it != s.by_key.end()) {
    s.lru.splice(s.lru.begin(), s.lru, it->second);
    return;
  }
  if (payload.size() > shard_budget_) {
    ++s.counters.rejected;
    return;
  }
  s.lru.push_front(Entry{key, payload});
  s.by_key.emplace(key, s.lru.begin());
  s.bytes += payload.size();
  ++s.counters.inserts;
  m.inserts.add(1);
  m.bytes.add(static_cast<double>(payload.size()));
  while (s.bytes > shard_budget_ && !s.lru.empty()) {
    const Entry& victim = s.lru.back();
    s.bytes -= victim.payload.size();
    m.bytes.add(-static_cast<double>(victim.payload.size()));
    s.by_key.erase(victim.key);
    s.lru.pop_back();
    ++s.counters.evictions;
    m.evictions.add(1);
  }
}

HotCacheCounters HotCache::counters() const {
  HotCacheCounters total;
  for (const auto& sp : shards_) {
    std::lock_guard<std::mutex> lock(sp->mutex);
    total.hits += sp->counters.hits;
    total.misses += sp->counters.misses;
    total.evictions += sp->counters.evictions;
    total.inserts += sp->counters.inserts;
    total.rejected += sp->counters.rejected;
    total.bytes += static_cast<std::int64_t>(sp->bytes);
  }
  return total;
}

}  // namespace csdac::runtime
