// Typed jobs of the runtime layer. A job is a pure, fully-specified unit
// of work: its result is determined by nothing but the fields serialized
// into its cache key (plus the engine version tag), and is bit-identical
// for any thread count — the property the whole caching design rests on,
// inherited from the mathx parallel engine's (seed, index) stream
// discipline. Thread count, cache location and trace settings are
// execution options and deliberately NOT part of the key.
#pragma once

#include <cstdint>
#include <string_view>
#include <variant>
#include <vector>

#include "arch/dyn_sim.hpp"
#include "arch/weighting.hpp"
#include "core/explorer.hpp"
#include "core/spec.hpp"
#include "dac/calibration.hpp"
#include "dac/dynamic.hpp"
#include "dac/rare_event.hpp"
#include "dac/static_analysis.hpp"
#include "dacgen/spice_mc.hpp"
#include "mathx/hash.hpp"
#include "mathx/parallel.hpp"
#include "tech/tech.hpp"

namespace csdac::runtime {

/// Version tag hashed into every cache key. Bump whenever ANY numeric
/// behavior of a job changes (kernel arithmetic, RNG streams, defaults
/// that leak into results): stale entries then miss naturally instead of
/// serving results the current code would not reproduce.
inline constexpr std::string_view kEngineVersion = "csdac-engine/1";

enum class JobKind : std::uint8_t {
  kInlYield = 1,
  kCalYield = 2,
  kSweepBasic = 3,
  kSweepCascode = 4,
  kSpectrum = 5,
  kInlYieldIs = 6,
  kInlYieldStrat = 7,
  kInlYieldBridge = 8,
  kDynSpectrum = 9,
  kArchCompare = 10,
  kSpiceMc = 11,
};

std::string_view kind_name(JobKind kind);

/// Monte-Carlo INL (or DNL) parametric yield. With `adaptive`, `chips` is
/// the hard cap and the Wilson-CI early-stopping rule decides the actual
/// count — still thread-count invariant, so still cacheable.
struct InlYieldJob {
  core::DacSpec spec;
  double sigma_unit = 0.0;
  int chips = 1000;
  std::uint64_t seed = 0;
  double limit = 0.5;  ///< pass limit [LSB]
  dac::InlReference ref = dac::InlReference::kBestFit;
  bool dnl = false;  ///< judge max|DNL| instead of max|INL| (best-fit ref)
  bool adaptive = false;
  int min_chips = 128;
  int batch = 128;
  double ci_half_width = 0.0;
};

/// Calibration-in-the-loop yield (pre/post trim).
struct CalYieldJob {
  core::DacSpec spec;
  double sigma_unit = 0.0;
  dac::CalibrationOptions cal;
  int chips = 1000;
  std::uint64_t seed = 0;
  double limit = 0.5;
};

/// Basic-cell design-space grid (row-major DesignPoint output).
struct SweepBasicJob {
  core::DacSpec spec;
  tech::MosTechParams tech;
  core::GridAxis cs;
  core::GridAxis sw;
  core::MarginPolicy policy = core::MarginPolicy::kStatistical;
  double fixed_margin = 0.5;
};

/// Cascode-cell design-space volume.
struct SweepCascodeJob {
  core::DacSpec spec;
  tech::MosTechParams tech;
  core::GridAxis cs;
  core::GridAxis sw;
  core::GridAxis cas;
  core::MarginPolicy policy = core::MarginPolicy::kStatistical;
  double fixed_margin = 0.5;
  core::SigmaAggregation agg = core::SigmaAggregation::kMax;
};

/// Behavioral-model spectrum of a coherent sine capture (Fig. 8 style):
/// one mismatch draw, dynamic waveform synthesis, DFT metrics.
struct SpectrumJob {
  core::DacSpec spec;
  double sigma_unit = 0.0;  ///< 0 = ideal (mismatch-free) sources
  std::uint64_t seed = 0;   ///< mismatch stream (and jitter stream if any)
  dac::DynamicParams dyn;
  int n_samples = 1024;
  int cycles = 181;  ///< coprime with n_samples for coherent capture
  bool differential = true;
};

/// Importance-sampled INL yield (rare-event tail): the mismatch draw is
/// tilted along the first `modes` bridge modes by `sigma_scale` and each
/// chip reweighted by the exact likelihood ratio (dac::inl_yield_is).
struct InlYieldIsJob {
  core::DacSpec spec;
  double sigma_unit = 0.0;
  double sigma_scale = 2.2;  ///< first-mode tilt, >= 1 (1 = plain MC)
  int modes = 8;             ///< tilted bridge modes, >= 1
  int chips = 1000;
  std::uint64_t seed = 0;
  double limit = 0.5;  ///< pass limit [LSB]
  dac::InlReference ref = dac::InlReference::kBestFit;
};

/// Stratified + antithetic INL yield (dac::inl_yield_stratified):
/// half-normal first-mode magnitude over `strata` equal-probability bins,
/// reflected within the bin for the antithetic pair member.
struct InlYieldStratJob {
  core::DacSpec spec;
  double sigma_unit = 0.0;
  int strata = 16;
  int chips = 1000;  ///< rounded down to a whole number of pairs
  std::uint64_t seed = 0;
  double limit = 0.5;
  dac::InlReference ref = dac::InlReference::kBestFit;
};

/// Closed-form Brownian-bridge INL-excursion surrogate (no sampling;
/// dac::inl_yield_bridge). sigma_unit must be > 0.
struct InlYieldBridgeJob {
  core::DacSpec spec;
  double sigma_unit = 0.0;
  double limit = 0.5;
};

/// Mismatch-MC yield over the timing-limited SFDR of an arbitrary cell
/// weighting (arch::ArchSimulator): each chip draws per-cell skew and
/// rise/fall asymmetry from the (seed, chip) stream, synthesizes the
/// oversampled waveform, and passes when in-band SFDR >= sfdr_limit_db.
/// The ETE prediction runs on the same draws as a cross-check. With
/// `adaptive`, Wilson-CI early stopping as in InlYieldJob.
struct DynSpectrumJob {
  core::DacSpec spec;
  arch::WeightingKind scheme = arch::WeightingKind::kSegmented;
  /// Segmented: binary split (0 = spec default). Optimized: cell budget
  /// (0 = match the default segmented cell count). Binary/unary: must be 0.
  int scheme_param = 0;
  arch::TimingParams timing;
  int n_samples = 256;
  int cycles = 21;  ///< coprime with n_samples for coherent capture
  double sfdr_limit_db = 60.0;
  int chips = 32;
  std::uint64_t seed = 0;
  bool adaptive = false;
  int min_chips = 8;
  int batch = 8;
  double ci_half_width = 0.0;
};

/// Architecture-comparison sweep: binary, segmented splits in
/// [seg_lo, seg_hi], optionally unary, and the optimized weighting, each
/// reporting amplitude-INL yield (common-random-numbers unit pool shared
/// across architectures) and timing-limited SFDR side by side.
struct ArchCompareJob {
  core::DacSpec spec;
  double sigma_unit = 0.0;  ///< relative unit-current mismatch sigma
  arch::TimingParams timing;
  int n_samples = 256;
  int cycles = 21;
  int chips = 200;     ///< amplitude-INL MC chips per architecture
  int dyn_chips = 4;   ///< timing-MC waveform draws per architecture
  std::uint64_t seed = 0;
  double limit = 0.5;  ///< INL pass limit [LSB]
  int seg_lo = 2;
  int seg_hi = 6;
  bool include_unary = false;
  int opt_cells = 0;  ///< 0 = match the default segmented cell count
};

/// SPICE-in-the-loop mismatch MC (dacgen::spice_mismatch_mc): each corner
/// perturbs every transistor of the netlist-level DAC with Pelgrom
/// Vth/beta draws from the (seed, corner) stream and judges max|INL| on
/// MNA-solved transfer functions. The unit cell is sized inside the job
/// from (spec, tech, vod_*), so the job stays fully value-specified.
struct SpiceMcJob {
  core::DacSpec spec;
  tech::MosTechParams tech;
  double vod_cs = 0.25;
  double vod_sw = 0.2;
  double vod_cas = 0.2;  ///< ignored when cascode = false
  bool cascode = true;
  int chips = 16;  ///< Monte-Carlo corners
  std::uint64_t seed = 0;
  double limit = 0.5;        ///< max|INL| pass limit [LSB]
  double sigma_scale = 1.0;  ///< scales the Pelgrom sigmas
  bool differential = true;
  bool with_caps = false;
};

using Job = std::variant<InlYieldJob, CalYieldJob, SweepBasicJob,
                         SweepCascodeJob, SpectrumJob, InlYieldIsJob,
                         InlYieldStratJob, InlYieldBridgeJob, DynSpectrumJob,
                         ArchCompareJob, SpiceMcJob>;

JobKind job_kind(const Job& job);

// --- Results ---------------------------------------------------------------

struct YieldResult {
  std::int64_t chips = 0;  ///< chips actually evaluated
  std::int64_t pass = 0;
  double yield = 0.0;
  double ci95 = 0.0;
};

struct CalYieldResult {
  std::int64_t chips = 0;
  double yield_before = 0.0;
  double yield_after = 0.0;
};

struct SweepResult {
  std::vector<core::DesignPoint> points;  ///< row-major over the axes
};

struct SpectrumSummary {
  double sfdr_db = 0.0;
  double sndr_db = 0.0;
  double thd_db = 0.0;
  double enob = 0.0;
};

struct IsYieldResult {
  std::int64_t chips = 0;
  std::int64_t fails = 0;  ///< raw failures under the inflated proposal
  double yield = 0.0;      ///< 1 - self-normalized failure probability
  double ci95 = 0.0;       ///< delta-method 95 % half-width
  double ess = 0.0;
  double ess_fraction = 0.0;
  double log_weight_max = 0.0;
  double log_weight_min = 0.0;
  bool low_ess = false;  ///< ess_fraction below the trust threshold
};

struct StratYieldResult {
  std::int64_t chips = 0;
  std::int64_t pairs = 0;
  std::int32_t strata = 0;
  double yield = 0.0;
  double ci95 = 0.0;
};

struct BridgeYieldResult {
  double yield = 0.0;
  double c = 0.0;          ///< normalized excursion limit
  double sigma_inl = 0.0;  ///< bridge scale [LSB]
};

struct DynSpectrumResult {
  std::int64_t chips = 0;  ///< chips actually evaluated
  std::int64_t pass = 0;
  double yield = 0.0;
  double ci95 = 0.0;
  double sfdr_mean_db = 0.0;  ///< waveform-MC mean in-band SFDR
  double sfdr_min_db = 0.0;
  double sndr_mean_db = 0.0;
  double ete_sfdr_mean_db = 0.0;  ///< ETE-predicted mean SFDR (cross-check)
  std::int32_t cells = 0;         ///< resolved cell count of the weighting
};

struct ArchPoint {
  std::uint8_t scheme = 0;  ///< arch::WeightingKind
  std::int32_t param = 0;   ///< resolved split / cell budget
  std::int32_t cells = 0;
  double inl_yield = 0.0;
  double inl_ci95 = 0.0;
  double sfdr_db = 0.0;      ///< mean waveform-MC SFDR over dyn_chips
  double ete_sfdr_db = 0.0;  ///< mean ETE-predicted SFDR, same draws
  double activity = 0.0;     ///< timing-distortion proxy sum w^2 N
};

struct ArchCompareResult {
  std::vector<ArchPoint> points;
};

/// kSpiceMc reuses the runner's own result struct (fixed-width fields).
using SpiceMcResult = dacgen::SpiceMcResult;

using JobValue =
    std::variant<YieldResult, CalYieldResult, SweepResult, SpectrumSummary,
                 IsYieldResult, StratYieldResult, BridgeYieldResult,
                 DynSpectrumResult, ArchCompareResult, SpiceMcResult>;

// --- Key and result codec --------------------------------------------------

/// Appends the canonical input bytes (engine version, kind tag, every
/// result-determining parameter in fixed order) to `w`.
void canonical_inputs(const Job& job, mathx::ByteWriter& w);

/// The job's cache key: hash128 of canonical_inputs.
mathx::HashKey128 job_key(const Job& job);

/// Result payload codec (the cache adds its own corruption framing).
void encode_value(const JobValue& value, mathx::ByteWriter& w);

/// Strict decode for `kind`; false on any mismatch (schema drift, trailing
/// bytes) — the caller then recomputes.
bool decode_value(JobKind kind, mathx::ByteReader& r, JobValue& out);

/// Executes the job fresh on `threads` engine workers (0 = hardware
/// concurrency). Fills `stats` with the engine run record when non-null.
JobValue execute_job(const Job& job, int threads, mathx::RunStats* stats);

}  // namespace csdac::runtime
