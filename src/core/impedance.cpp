#include "core/impedance.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace csdac::core {
namespace {

using Cplx = std::complex<double>;

Cplx parallel_cap(Cplx z, double c, double omega) {
  if (c <= 0.0) return z;
  const Cplx zc(0.0, -1.0 / (omega * c));
  return z * zc / (z + zc);
}

double ro_of(const tech::MosTechParams& t, double i, double l) {
  return 1.0 / (t.lambda(l) * i);
}

}  // namespace

std::complex<double> unit_zout(const tech::MosTechParams& t,
                               const DacSpec& spec, const CellSizing& cell,
                               double freq_hz, int weight) {
  if (!(freq_hz > 0.0)) throw std::invalid_argument("unit_zout: f <= 0");
  if (weight < 1) throw std::invalid_argument("unit_zout: weight < 1");
  const double omega = 2.0 * std::numbers::pi * freq_hz;
  const double wt = weight;
  const double i = cell.i_unit * wt;

  const double gm_sw = 2.0 * i / cell.vod_sw;
  const double ro_sw = ro_of(t, i, cell.sw.l);
  const double ro_cs = ro_of(t, i, cell.cs.l);

  if (cell.topology == CellTopology::kCsSw) {
    // Internal node: CS drain junction + SW gate-source + array wiring.
    const double c1 = tech::cj_diffusion(t, cell.cs.w * wt) +
                      tech::cgs_sat(t, cell.sw.w * wt, cell.sw.l) +
                      spec.c_int;
    const Cplx z1 = parallel_cap(Cplx(ro_cs, 0.0), c1, omega);
    return Cplx(ro_sw, 0.0) + (1.0 + gm_sw * ro_sw) * z1;
  }

  const double gm_cas = 2.0 * i / cell.vod_cas;
  const double ro_cas = ro_of(t, i, cell.cas.l);
  // CS drain node: CS junction + CAS gate-source.
  const double c1 = tech::cj_diffusion(t, cell.cs.w * wt) +
                    tech::cgs_sat(t, cell.cas.w * wt, cell.cas.l);
  const Cplx z1 = parallel_cap(Cplx(ro_cs, 0.0), c1, omega);
  const Cplx z_mid = Cplx(ro_cas, 0.0) + (1.0 + gm_cas * ro_cas) * z1;
  // CAS drain node: CAS junction + SW gate-source + array wiring.
  const double c2 = tech::cj_diffusion(t, cell.cas.w * wt) +
                    tech::cgs_sat(t, cell.sw.w * wt, cell.sw.l) + spec.c_int;
  const Cplx z2 = parallel_cap(z_mid, c2, omega);
  return Cplx(ro_sw, 0.0) + (1.0 + gm_sw * ro_sw) * z2;
}

double unit_zout_mag(const tech::MosTechParams& t, const DacSpec& spec,
                     const CellSizing& cell, double freq_hz, int weight) {
  return std::abs(unit_zout(t, spec, cell, freq_hz, weight));
}

double impedance_bandwidth(const tech::MosTechParams& t, const DacSpec& spec,
                           const CellSizing& cell, double r_required,
                           double f_min, double f_max, int weight) {
  if (!(r_required > 0.0) || !(f_min > 0.0) || !(f_max > f_min)) {
    throw std::invalid_argument("impedance_bandwidth: bad arguments");
  }
  if (unit_zout_mag(t, spec, cell, f_min, weight) < r_required) return 0.0;
  if (unit_zout_mag(t, spec, cell, f_max, weight) >= r_required) return f_max;
  // |Z| decreases monotonically through the crossover; bisect in log f.
  double lo = std::log(f_min), hi = std::log(f_max);
  for (int it = 0; it < 100 && hi - lo > 1e-9; ++it) {
    const double mid = 0.5 * (lo + hi);
    if (unit_zout_mag(t, spec, cell, std::exp(mid), weight) >= r_required) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return std::exp(0.5 * (lo + hi));
}

}  // namespace csdac::core
