// Design-space exploration (Section 3): sweep the overdrive plane/volume,
// mark feasibility under a saturation policy, and select the optimum under
// an area or speed criterion (Fig. 3 lower graph, Fig. 4 volume).
#pragma once

#include <optional>
#include <vector>

#include "core/sizer.hpp"
#include "mathx/parallel.hpp"

namespace csdac::core {

/// One evaluated grid point (a flattened SizedCell for plotting).
struct DesignPoint {
  double vod_cs = 0.0;
  double vod_sw = 0.0;
  double vod_cas = 0.0;  ///< 0 for the basic topology
  bool feasible = false;
  double margin = 0.0;        ///< saturation margin at this point [V]
  double area = 0.0;          ///< cell active area [m^2]
  double f_min_hz = 0.0;      ///< limiting pole
  double t_settle_s = 0.0;    ///< settling to 0.5 LSB
  double rout_unit = 0.0;     ///< unit output resistance [Ohm]
};

struct GridAxis {
  double lo = 0.05;
  double hi = 0.95;
  int steps = 40;

  double at(int i) const {
    if (steps <= 1) return lo;  // a 1-point axis is just its lower bound
    return lo + (hi - lo) * static_cast<double>(i) /
                    static_cast<double>(steps - 1);
  }
};

enum class Objective { kMinArea, kMaxSpeed };

class DesignSpaceExplorer {
 public:
  explicit DesignSpaceExplorer(CellSizer sizer) : sizer_(std::move(sizer)) {}

  const CellSizer& sizer() const { return sizer_; }

  /// Full grid over (VOD_cs, VOD_sw) for the basic cell. Grid points are
  /// independent and evaluated on the shared parallel engine (threads = 0
  /// uses the hardware concurrency); the output order is row-major in
  /// (i, j) regardless of the thread count. `stats` (optional) receives
  /// the engine run record.
  std::vector<DesignPoint> sweep_basic(const GridAxis& cs, const GridAxis& sw,
                                       MarginPolicy policy,
                                       double fixed_margin = 0.5,
                                       int threads = 1,
                                       mathx::RunStats* stats = nullptr) const;

  /// Full grid over (VOD_cs, VOD_sw, VOD_cas) for the cascode cell.
  std::vector<DesignPoint> sweep_cascode(
      const GridAxis& cs, const GridAxis& sw, const GridAxis& cas,
      MarginPolicy policy, double fixed_margin = 0.5,
      SigmaAggregation agg = SigmaAggregation::kMax, int threads = 1,
      mathx::RunStats* stats = nullptr) const;

  /// Best feasible point of a sweep under the objective (nullopt if no
  /// feasible point exists).
  static std::optional<DesignPoint> select(
      const std::vector<DesignPoint>& points, Objective obj);

  /// Convenience: sweep + select for the basic cell.
  std::optional<DesignPoint> optimize_basic(const GridAxis& cs,
                                            const GridAxis& sw,
                                            MarginPolicy policy,
                                            Objective obj,
                                            double fixed_margin = 0.5,
                                            int threads = 1) const;

  /// Convenience: sweep + select for the cascode cell.
  std::optional<DesignPoint> optimize_cascode(
      const GridAxis& cs, const GridAxis& sw, const GridAxis& cas,
      MarginPolicy policy, Objective obj, double fixed_margin = 0.5,
      SigmaAggregation agg = SigmaAggregation::kMax, int threads = 1) const;

 private:
  static DesignPoint flatten(const SizedCell& s);

  CellSizer sizer_;
};

}  // namespace csdac::core
