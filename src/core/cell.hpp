// The unit current cell: topologies (Fig. 2), transistor sizing (eq. 2 for
// the CS device, current/overdrive sizing for SW and CAS), and the optimum
// gate bias voltages (eqs. 5 and 10, equal-slack form).
#pragma once

#include "core/spec.hpp"
#include "tech/tech.hpp"

namespace csdac::core {

/// Fig. 2 topologies: (a) current source + switches, (b) adds a cascode.
enum class CellTopology { kCsSw, kCsSwCas };

struct DeviceSize {
  double w = 0.0;  ///< [m]
  double l = 0.0;  ///< [m]
  double area() const { return w * l; }
  double aspect() const { return w / l; }
};

/// A fully-sized unit cell (Table 1's unknowns, solved).
struct CellSizing {
  CellTopology topology = CellTopology::kCsSw;
  double i_unit = 0.0;  ///< LSB current the cell carries [A]

  DeviceSize cs, sw, cas;            ///< cas is all-zero for kCsSw
  double vod_cs = 0, vod_sw = 0, vod_cas = 0;  ///< design overdrives [V]
  double vg_cs = 0, vg_sw = 0, vg_cas = 0;     ///< gate bias voltages [V]

  /// Saturation slack: V_o minus the sum of overdrives [V].
  double slack = 0.0;

  /// Active gate area of the cell: CS + 2 switches (+ cascode) [m^2].
  double active_area() const {
    return cs.area() + 2.0 * sw.area() +
           (topology == CellTopology::kCsSwCas ? cas.area() : 0.0);
  }
};

/// eq. (2): the UNIQUE (W, L) of the current-source transistor that meets a
/// relative current accuracy `sigma_i_rel` at overdrive `vod` while carrying
/// current `i`:
///   W*L  = (A_beta^2 + 4 A_VT^2 / vod^2) / sigma^2     (mismatch)
///   W/L  = 2 i / (K' vod^2)                            (square law)
DeviceSize size_current_source(const tech::MosTechParams& t, double i,
                               double vod, double sigma_i_rel);

/// Sizes a switch/cascode transistor from its overdrive at fixed channel
/// length (the paper picks L = L_min for the switches to maximize speed and
/// W = W_min consideration for the cascode):  W = 2 i L / (K' vod^2).
DeviceSize size_for_current(const tech::MosTechParams& t, double i,
                            double vod, double l);

/// Effective threshold of a device whose source sits at `vsb` above bulk.
double vt_at_vsb(const tech::MosTechParams& t, double vsb);

/// Solves the self-consistent source-node voltage of a stacked device whose
/// gate is at vg and which carries overdrive vod: vs = vg - vt(vs) - vod.
double source_node_voltage(const tech::MosTechParams& t, double vg,
                           double vod);

/// eq. (5) (equal-slack form): optimum SW gate bias of the basic cell.
/// The saturation slack D = V_o - vod_cs - vod_sw is split equally between
/// the two devices, maximizing the DC output impedance:
///   vg_sw = vt_sw(vsb) + vod_sw + vod_cs + D/2, with vsb = vod_cs + D/2.
double optimal_vg_sw_basic(const tech::MosTechParams& t, double v_o,
                           double vod_cs, double vod_sw);

/// eq. (10) (equal-slack form) for the cascode cell: D split three ways.
struct CascodeBias {
  double vg_cas = 0.0;
  double vg_sw = 0.0;
};
CascodeBias optimal_vg_cascode(const tech::MosTechParams& t, double v_o,
                               double vod_cs, double vod_cas, double vod_sw);

/// CS gate bias for a grounded-source CS device: vg_cs = vt0 + vod_cs.
double vg_cs_for(const tech::MosTechParams& t, double vod_cs);

}  // namespace csdac::core
