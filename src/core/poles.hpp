// Settling-speed model, eq. (13): two real poles, one at the output node
// (R_L against the load plus every switch drain), one at the cell-internal
// node (switch source), plus — for the cascode topology — the CS-drain /
// CAS-source node. The minimum pole frequency sets the settling time.
#pragma once

#include "core/cell.hpp"
#include "core/spec.hpp"
#include "tech/tech.hpp"

namespace csdac::core {

struct PoleEstimate {
  double p1_hz = 0.0;  ///< output node pole
  double p2_hz = 0.0;  ///< switch-source internal node pole
  double p3_hz = 0.0;  ///< CS/CAS node pole (cascode only; 0 otherwise)

  /// The bandwidth-limiting (lowest) pole.
  double min_hz() const;
  /// Time constant of the limiting pole [s].
  double tau() const { return 1.0 / (2.0 * 3.14159265358979323846 * min_hz()); }
  /// Single-pole settling time to within 0.5 LSB of an n-bit full scale:
  /// t = tau * ln(2^(n+1)).
  double settling_time(int nbits) const;
};

/// Total junction capacitance hanging on ONE output rail from all switch
/// drains: the unary sources use switches scaled by the unary weight, the
/// binary sources by powers of two.
double total_switch_drain_cap(const tech::MosTechParams& t,
                              const DacSpec& spec, double w_sw_unit);

/// eq. (13) for a sized cell. `weight` scales the cell to a binary/unary
/// weight (current, device widths and junction caps scale together; the
/// array wiring c_int does not): weight = 1 analyses the LSB cell,
/// weight = 2^b the unary cell whose switching dominates the settling.
PoleEstimate estimate_poles(const tech::MosTechParams& t, const DacSpec& spec,
                            const CellSizing& cell, int weight = 1);

}  // namespace csdac::core
