#include "core/cell.hpp"

#include <cmath>
#include <stdexcept>

#include "tech/mismatch.hpp"

namespace csdac::core {

DeviceSize size_current_source(const tech::MosTechParams& t, double i,
                               double vod, double sigma_i_rel) {
  if (!(i > 0.0) || !(vod > 0.0) || !(sigma_i_rel > 0.0)) {
    throw std::invalid_argument("size_current_source: bad arguments");
  }
  const double wl = tech::min_gate_area(t, vod, sigma_i_rel);
  const double w_over_l = 2.0 * i / (t.kp * vod * vod);
  DeviceSize d;
  d.w = std::sqrt(wl * w_over_l);
  d.l = std::sqrt(wl / w_over_l);
  return d;
}

DeviceSize size_for_current(const tech::MosTechParams& t, double i, double vod,
                            double l) {
  if (!(i > 0.0) || !(vod > 0.0) || !(l > 0.0)) {
    throw std::invalid_argument("size_for_current: bad arguments");
  }
  DeviceSize d;
  d.l = l;
  d.w = std::max(2.0 * i * l / (t.kp * vod * vod), t.w_min);
  return d;
}

double vt_at_vsb(const tech::MosTechParams& t, double vsb) {
  const double arg = std::max(t.phi_2f + vsb, 0.0);
  return t.vt0 + t.gamma * (std::sqrt(arg) - std::sqrt(t.phi_2f));
}

double source_node_voltage(const tech::MosTechParams& t, double vg,
                           double vod) {
  // vs = vg - vt(vs) - vod, solved by a short fixed-point iteration (the
  // body-effect correction is a mild contraction).
  double vs = vg - t.vt0 - vod;
  for (int i = 0; i < 30; ++i) {
    const double next = vg - vt_at_vsb(t, std::max(vs, 0.0)) - vod;
    if (std::abs(next - vs) < 1e-12) return next;
    vs = next;
  }
  return vs;
}

double optimal_vg_sw_basic(const tech::MosTechParams& t, double v_o,
                           double vod_cs, double vod_sw) {
  const double slack = v_o - vod_cs - vod_sw;
  // Internal node (CS drain / SW source) sits at vod_cs + slack/2.
  const double v_int = vod_cs + 0.5 * slack;
  return v_int + vt_at_vsb(t, v_int) + vod_sw;
}

CascodeBias optimal_vg_cascode(const tech::MosTechParams& t, double v_o,
                               double vod_cs, double vod_cas, double vod_sw) {
  const double slack = v_o - vod_cs - vod_cas - vod_sw;
  const double third = slack / 3.0;
  // CS drain at vod_cs + third; CAS drain (SW source) a cascode VDS higher.
  const double v1 = vod_cs + third;                   // CAS source node
  const double v2 = v1 + vod_cas + third;             // SW source node
  CascodeBias b;
  b.vg_cas = v1 + vt_at_vsb(t, v1) + vod_cas;
  b.vg_sw = v2 + vt_at_vsb(t, v2) + vod_sw;
  return b;
}

double vg_cs_for(const tech::MosTechParams& t, double vod_cs) {
  return t.vt0 + vod_cs;
}

}  // namespace csdac::core
