#include "core/explorer.hpp"

namespace csdac::core {

DesignPoint DesignSpaceExplorer::flatten(const SizedCell& s) {
  DesignPoint p;
  p.vod_cs = s.cell.vod_cs;
  p.vod_sw = s.cell.vod_sw;
  p.vod_cas = s.cell.vod_cas;
  p.feasible = s.feasible();
  p.margin = s.sat.margin;
  p.area = s.cell.active_area();
  p.f_min_hz = s.poles.min_hz();
  p.t_settle_s = s.poles.settling_time(
      /*nbits=*/12);  // overwritten below with the spec's resolution
  p.rout_unit = s.rout_unit;
  return p;
}

std::vector<DesignPoint> DesignSpaceExplorer::sweep_basic(
    const GridAxis& cs, const GridAxis& sw, MarginPolicy policy,
    double fixed_margin, int threads, mathx::RunStats* stats) const {
  const auto n = static_cast<std::int64_t>(cs.steps) * sw.steps;
  // Grid points are pure in their index: safe to evaluate in any order.
  return mathx::parallel_map(
      n, threads,
      [&](std::int64_t idx) {
        const int i = static_cast<int>(idx / sw.steps);
        const int j = static_cast<int>(idx % sw.steps);
        const SizedCell s =
            sizer_.size_basic(cs.at(i), sw.at(j), policy, fixed_margin);
        DesignPoint p = flatten(s);
        p.t_settle_s = s.poles.settling_time(sizer_.spec().nbits);
        return p;
      },
      stats, /*chunk=*/4);
}

std::vector<DesignPoint> DesignSpaceExplorer::sweep_cascode(
    const GridAxis& cs, const GridAxis& sw, const GridAxis& cas,
    MarginPolicy policy, double fixed_margin, SigmaAggregation agg,
    int threads, mathx::RunStats* stats) const {
  const auto n =
      static_cast<std::int64_t>(cs.steps) * sw.steps * cas.steps;
  return mathx::parallel_map(
      n, threads,
      [&](std::int64_t idx) {
        const int k = static_cast<int>(idx % cas.steps);
        const int j = static_cast<int>((idx / cas.steps) % sw.steps);
        const int i = static_cast<int>(idx / (cas.steps * sw.steps));
        const SizedCell s = sizer_.size_cascode(cs.at(i), sw.at(j), cas.at(k),
                                                policy, fixed_margin, agg);
        DesignPoint p = flatten(s);
        p.t_settle_s = s.poles.settling_time(sizer_.spec().nbits);
        return p;
      },
      stats, /*chunk=*/4);
}

std::optional<DesignPoint> DesignSpaceExplorer::select(
    const std::vector<DesignPoint>& points, Objective obj) {
  std::optional<DesignPoint> best;
  for (const auto& p : points) {
    if (!p.feasible) continue;
    if (!best) {
      best = p;
      continue;
    }
    const bool better = obj == Objective::kMinArea ? p.area < best->area
                                                   : p.f_min_hz > best->f_min_hz;
    if (better) best = p;
  }
  return best;
}

std::optional<DesignPoint> DesignSpaceExplorer::optimize_basic(
    const GridAxis& cs, const GridAxis& sw, MarginPolicy policy, Objective obj,
    double fixed_margin, int threads) const {
  return select(sweep_basic(cs, sw, policy, fixed_margin, threads), obj);
}

std::optional<DesignPoint> DesignSpaceExplorer::optimize_cascode(
    const GridAxis& cs, const GridAxis& sw, const GridAxis& cas,
    MarginPolicy policy, Objective obj, double fixed_margin,
    SigmaAggregation agg, int threads) const {
  return select(sweep_cascode(cs, sw, cas, policy, fixed_margin, agg, threads),
                obj);
}

}  // namespace csdac::core
