#include "core/explorer.hpp"

namespace csdac::core {

DesignPoint DesignSpaceExplorer::flatten(const SizedCell& s) {
  DesignPoint p;
  p.vod_cs = s.cell.vod_cs;
  p.vod_sw = s.cell.vod_sw;
  p.vod_cas = s.cell.vod_cas;
  p.feasible = s.feasible();
  p.margin = s.sat.margin;
  p.area = s.cell.active_area();
  p.f_min_hz = s.poles.min_hz();
  p.t_settle_s = s.poles.settling_time(
      /*nbits=*/12);  // overwritten below with the spec's resolution
  p.rout_unit = s.rout_unit;
  return p;
}

std::vector<DesignPoint> DesignSpaceExplorer::sweep_basic(
    const GridAxis& cs, const GridAxis& sw, MarginPolicy policy,
    double fixed_margin) const {
  std::vector<DesignPoint> out;
  out.reserve(static_cast<std::size_t>(cs.steps) *
              static_cast<std::size_t>(sw.steps));
  for (int i = 0; i < cs.steps; ++i) {
    for (int j = 0; j < sw.steps; ++j) {
      const SizedCell s =
          sizer_.size_basic(cs.at(i), sw.at(j), policy, fixed_margin);
      DesignPoint p = flatten(s);
      p.t_settle_s = s.poles.settling_time(sizer_.spec().nbits);
      out.push_back(p);
    }
  }
  return out;
}

std::vector<DesignPoint> DesignSpaceExplorer::sweep_cascode(
    const GridAxis& cs, const GridAxis& sw, const GridAxis& cas,
    MarginPolicy policy, double fixed_margin, SigmaAggregation agg) const {
  std::vector<DesignPoint> out;
  out.reserve(static_cast<std::size_t>(cs.steps) *
              static_cast<std::size_t>(sw.steps) *
              static_cast<std::size_t>(cas.steps));
  for (int i = 0; i < cs.steps; ++i) {
    for (int j = 0; j < sw.steps; ++j) {
      for (int k = 0; k < cas.steps; ++k) {
        const SizedCell s = sizer_.size_cascode(cs.at(i), sw.at(j), cas.at(k),
                                                policy, fixed_margin, agg);
        DesignPoint p = flatten(s);
        p.t_settle_s = s.poles.settling_time(sizer_.spec().nbits);
        out.push_back(p);
      }
    }
  }
  return out;
}

std::optional<DesignPoint> DesignSpaceExplorer::select(
    const std::vector<DesignPoint>& points, Objective obj) {
  std::optional<DesignPoint> best;
  for (const auto& p : points) {
    if (!p.feasible) continue;
    if (!best) {
      best = p;
      continue;
    }
    const bool better = obj == Objective::kMinArea ? p.area < best->area
                                                   : p.f_min_hz > best->f_min_hz;
    if (better) best = p;
  }
  return best;
}

std::optional<DesignPoint> DesignSpaceExplorer::optimize_basic(
    const GridAxis& cs, const GridAxis& sw, MarginPolicy policy, Objective obj,
    double fixed_margin) const {
  return select(sweep_basic(cs, sw, policy, fixed_margin), obj);
}

std::optional<DesignPoint> DesignSpaceExplorer::optimize_cascode(
    const GridAxis& cs, const GridAxis& sw, const GridAxis& cas,
    MarginPolicy policy, Objective obj, double fixed_margin,
    SigmaAggregation agg) const {
  return select(sweep_cascode(cs, sw, cas, policy, fixed_margin, agg), obj);
}

}  // namespace csdac::core
