#include "core/saturation.hpp"

#include <cmath>
#include <stdexcept>

namespace csdac::core {
namespace {

void check_margin(double m) {
  if (!(m >= 0.0)) throw std::invalid_argument("saturation: margin < 0");
}

}  // namespace

SaturationCheck check_basic_classic(const DacSpec& spec, double vod_cs,
                                    double vod_sw, double fixed_margin) {
  check_margin(fixed_margin);
  SaturationCheck c;
  c.budget = spec.v_out_min;
  c.vod_sum = vod_cs + vod_sw;
  c.margin = fixed_margin;
  return c;
}

SaturationCheck check_basic_statistical(const tech::MosTechParams& t,
                                        const DacSpec& spec,
                                        const CellSizing& cell,
                                        double sigma_unit, double s_coeff) {
  const BasicBounds b = basic_cell_bounds(t, spec, cell, sigma_unit);
  SaturationCheck c;
  c.budget = spec.v_out_min;
  c.vod_sum = cell.vod_cs + cell.vod_sw;
  c.margin = s_coeff * b.sigma_sum();
  return c;
}

SaturationCheck check_cascode_classic(const DacSpec& spec, double vod_cs,
                                      double vod_sw, double vod_cas,
                                      double fixed_margin) {
  check_margin(fixed_margin);
  SaturationCheck c;
  c.budget = spec.v_out_min;
  c.vod_sum = vod_cs + vod_sw + vod_cas;
  c.margin = fixed_margin;
  return c;
}

SaturationCheck check_cascode_statistical(const tech::MosTechParams& t,
                                          const DacSpec& spec,
                                          const CellSizing& cell,
                                          double sigma_unit, double s_coeff,
                                          SigmaAggregation agg) {
  const CascodeBounds b = cascode_cell_bounds(t, spec, cell, sigma_unit);
  SaturationCheck c;
  c.budget = spec.v_out_min;
  c.vod_sum = cell.vod_cs + cell.vod_sw + cell.vod_cas;
  // Three saturation margins stack through the two gate windows; the paper
  // bounds them by three times the worst bound sigma (eq. 11).
  c.margin = agg == SigmaAggregation::kMax
                 ? 3.0 * s_coeff * b.sigma_max()
                 : std::sqrt(3.0) * s_coeff * b.sigma_rss();
  return c;
}

}  // namespace csdac::core
