// The saturation constraints that bound the design space — the paper's
// central contribution. Three policies:
//   kNone        : the deterministic limit, eq. (4)  (VOD sum <= V_o)
//   kFixedMargin : prior art [9,11], eq. (4) with an arbitrary V_safe
//   kStatistical : the paper's eqs. (9)/(11), margin = S * (bound sigmas)
#pragma once

#include "core/cell.hpp"
#include "core/gate_bounds.hpp"
#include "core/spec.hpp"

namespace csdac::core {

enum class MarginPolicy { kNone, kFixedMargin, kStatistical };

/// How the four cascode-cell bound sigmas are aggregated in eq. (11).
enum class SigmaAggregation {
  kMax,  ///< the paper: 3 * S * max(sigma_i)
  kRss   ///< ablation: sqrt(3) * S * rss(sigma_i) equivalent margin
};

/// Result of evaluating a saturation condition at a design point.
struct SaturationCheck {
  double budget = 0.0;   ///< V_o (spec.v_out_min)
  double vod_sum = 0.0;  ///< sum of design overdrives
  double margin = 0.0;   ///< subtracted safety margin [V]
  double slack() const { return budget - margin - vod_sum; }
  bool feasible() const { return slack() >= -1e-12; }
};

/// eq. (4) family for the basic cell (margin = 0 or V_safe).
SaturationCheck check_basic_classic(const DacSpec& spec, double vod_cs,
                                    double vod_sw, double fixed_margin);

/// eq. (9): margin = S * (sigma_U + sigma_L) for the given sized cell.
SaturationCheck check_basic_statistical(const tech::MosTechParams& t,
                                        const DacSpec& spec,
                                        const CellSizing& cell,
                                        double sigma_unit, double s_coeff);

/// eq. (4)-analog for the cascode cell.
SaturationCheck check_cascode_classic(const DacSpec& spec, double vod_cs,
                                      double vod_sw, double vod_cas,
                                      double fixed_margin);

/// eq. (11): margin = 3 * S * sigma_bound (max or rss aggregation).
SaturationCheck check_cascode_statistical(
    const tech::MosTechParams& t, const DacSpec& spec, const CellSizing& cell,
    double sigma_unit, double s_coeff,
    SigmaAggregation agg = SigmaAggregation::kMax);

}  // namespace csdac::core
