// Static-accuracy design equations:
//  - eq. (1): unit-current accuracy required for INL < 0.5 LSB at a given
//    parametric yield (Van den Bosch et al. [10]),
//  - the yield_V / S coefficient of the statistical saturation condition
//    (eqs. 9 and 11),
//  - INL contributed by finite unit output impedance (Razavi [7],
//    Van den Bosch [8]) which decides that the 12-bit design needs the
//    cascode topology.
#pragma once

namespace csdac::core {

/// eq. (1): maximum relative sigma of a unit current source,
/// sigma(I)/I <= 1 / (2 * C * sqrt(2^n)), C = inv_norm((1 + yield)/2).
double unit_sigma_spec(int nbits, double inl_yield);

/// Inverse of eq. (1): the INL yield achieved by a given unit sigma.
double inl_yield_from_sigma(int nbits, double sigma_rel);

/// yield_V of Section 2: the per-bound one-sided yield such that the LSB
/// cell's two complementary switch transistors each meet both of their gate
/// bounds: yield = yield_V^4  =>  yield_V = yield^(1/4).
double bound_yield(double inl_yield);

/// S of eqs. (9)/(11): one-sided normal quantile of bound_yield.
double s_coefficient(double inl_yield);

/// Worst-case INL (in LSB, at mid-scale) caused by the finite output
/// resistance of the current cells, single-ended output:
///   INL ~ N^2 * R_L / (4 * R_out,unit),  N = 2^n - 1.
/// R_out,unit is the impedance of ONE LSB unit looking into its switch drain.
double inl_from_unit_rout(int nbits, double r_load, double r_out_unit);

/// Unit output resistance required to keep the impedance-induced INL below
/// `inl_lsb` (inverse of inl_from_unit_rout).
double required_unit_rout(int nbits, double r_load, double inl_lsb);

/// First-order SFDR estimate [dB] for a single-ended full-scale sine limited
/// by code-dependent output conductance (after [8]): the HD2 amplitude
/// relative to the fundamental is ~ N*R_L / (4*R_out,unit)... expressed here
/// as SFDR = 20*log10(4 * R_out,unit / (N * R_L)).
double sfdr_single_ended_db(int nbits, double r_load, double r_out_unit);

}  // namespace csdac::core
