// Converter-level specification of the segmented current-steering DAC under
// design. Defaults reproduce the paper's Section 3 design case: 12 bit,
// b = 4 binary + m = 8 thermometer, 0.35 um CMOS, VDD = 3.3 V, V_o = 1 V,
// R_L = 50 Ohm, C_int = 100 fF, C_L = 2 pF, 99.7 % INL yield.
#pragma once

#include <cmath>
#include <stdexcept>

namespace csdac::core {

struct DacSpec {
  int nbits = 12;        ///< total resolution n
  int binary_bits = 4;   ///< b least-significant binary-weighted bits
  double vdd = 3.3;      ///< supply [V]
  /// Full-scale output swing I_FS * R_L [V]. The output node moves in
  /// [v_out_min, v_out_min + v_swing] (NMOS cell sinking through R_L tied
  /// to a termination rail at v_out_min + v_swing).
  double v_swing = 1.0;
  /// The paper's V_o: the MINIMUM voltage at the output node, i.e. the
  /// headroom budget the stacked overdrives must fit into (eq. 4):
  ///   VOD_cs + VOD_sw (+ VOD_cas) <= v_out_min.
  double v_out_min = 1.0;
  double r_load = 50.0;      ///< load resistance R_L [Ohm]
  double c_load = 2e-12;     ///< output load capacitance C_L [F]
  double c_int = 100e-15;    ///< latch/switch-to-CS-array wiring cap [F]
  double inl_yield = 0.997;  ///< target parametric yield for INL < 0.5 LSB
  double r_load_tol = 0.01;  ///< relative sigma of R_L (process tolerance)

  int unary_bits() const { return nbits - binary_bits; }
  /// Number of unary (thermometer) current sources: 2^m - 1.
  int num_unary() const { return (1 << unary_bits()) - 1; }
  /// Unit weight of a unary source in LSBs: 2^b.
  int unary_weight() const { return 1 << binary_bits; }
  /// Total number of LSB units: 2^n - 1.
  int total_units() const { return (1 << nbits) - 1; }
  /// Full-scale current I_FS = V_o / R_L [A].
  double i_fs() const { return v_swing / r_load; }
  /// LSB unit current [A].
  double i_lsb() const { return i_fs() / total_units(); }

  void validate() const {
    if (nbits < 2 || nbits > 20) throw std::invalid_argument("bad nbits");
    if (binary_bits < 0 || binary_bits >= nbits) {
      throw std::invalid_argument("bad binary_bits");
    }
    if (!(vdd > 0) || !(v_swing > 0) || !(v_swing < vdd) ||
        !(v_out_min > 0) || !(v_out_min + v_swing <= vdd)) {
      throw std::invalid_argument("bad voltage spec");
    }
    if (!(r_load > 0) || !(c_load >= 0) || !(c_int >= 0)) {
      throw std::invalid_argument("bad load spec");
    }
    if (!(inl_yield > 0) || !(inl_yield < 1)) {
      throw std::invalid_argument("bad yield");
    }
  }
};

}  // namespace csdac::core
