#include "core/accuracy.hpp"

#include <cmath>
#include <stdexcept>

#include "mathx/stats.hpp"

namespace csdac::core {

using mathx::normal_cdf;
using mathx::yield_coefficient_one_sided;
using mathx::yield_coefficient_two_sided;

double unit_sigma_spec(int nbits, double inl_yield) {
  if (nbits < 2) throw std::invalid_argument("unit_sigma_spec: bad nbits");
  const double c = yield_coefficient_two_sided(inl_yield);
  return 1.0 / (2.0 * c * std::sqrt(std::ldexp(1.0, nbits)));
}

double inl_yield_from_sigma(int nbits, double sigma_rel) {
  if (!(sigma_rel > 0.0)) {
    throw std::invalid_argument("inl_yield_from_sigma: sigma <= 0");
  }
  const double c = 1.0 / (2.0 * sigma_rel * std::sqrt(std::ldexp(1.0, nbits)));
  return 2.0 * normal_cdf(c) - 1.0;
}

double bound_yield(double inl_yield) {
  if (!(inl_yield > 0.0 && inl_yield < 1.0)) {
    throw std::invalid_argument("bound_yield: yield out of (0,1)");
  }
  return std::pow(inl_yield, 0.25);
}

double s_coefficient(double inl_yield) {
  return yield_coefficient_one_sided(bound_yield(inl_yield));
}

double inl_from_unit_rout(int nbits, double r_load, double r_out_unit) {
  if (!(r_out_unit > 0.0)) {
    throw std::invalid_argument("inl_from_unit_rout: r_out <= 0");
  }
  const double n_units = std::ldexp(1.0, nbits) - 1.0;
  return n_units * n_units * r_load / (4.0 * r_out_unit);
}

double required_unit_rout(int nbits, double r_load, double inl_lsb) {
  if (!(inl_lsb > 0.0)) {
    throw std::invalid_argument("required_unit_rout: inl <= 0");
  }
  const double n_units = std::ldexp(1.0, nbits) - 1.0;
  return n_units * n_units * r_load / (4.0 * inl_lsb);
}

double sfdr_single_ended_db(int nbits, double r_load, double r_out_unit) {
  const double n_units = std::ldexp(1.0, nbits) - 1.0;
  return 20.0 * std::log10(4.0 * r_out_unit / (n_units * r_load));
}

}  // namespace csdac::core
