// Frequency-dependent unit-cell output impedance and the SFDR-bandwidth
// figure of merit (after Van den Bosch et al. [8], "SFDR-Bandwidth
// Limitations for High Speed High Resolution Current Steering CMOS D/A
// Converters"). At DC even the basic cell's saturated switch cascodes the
// current source, so the static Rout is huge for both topologies; the
// limitation appears at signal frequencies where the internal-node
// capacitances shunt the cascoding action. The cascode topology pushes the
// frequency at which |Z_out(f)| falls below the 0.5 LSB INL requirement —
// its "SFDR bandwidth" — well beyond the basic cell's, which is the Section
// 2 argument for adopting it at 12 bits.
#pragma once

#include <complex>

#include "core/cell.hpp"
#include "core/spec.hpp"
#include "tech/tech.hpp"

namespace csdac::core {

/// Complex output impedance of one weighted cell at frequency f [Hz],
/// looking into the ON switch drain. Ladder model with the junction/gate/
/// wiring capacitance at each internal node. `weight` scales the cell to a
/// binary/unary weight (current and widths scale; the array wiring c_int
/// does not). The distinction matters: for the minimum-size LSB cell the
/// fixed 100 fF wiring swamps both topologies, whereas the unary cell
/// (weight 2^b) is device-cap dominated and shows the cascode's benefit.
std::complex<double> unit_zout(const tech::MosTechParams& t,
                               const DacSpec& spec, const CellSizing& cell,
                               double freq_hz, int weight = 1);

/// |unit_zout|.
double unit_zout_mag(const tech::MosTechParams& t, const DacSpec& spec,
                     const CellSizing& cell, double freq_hz, int weight = 1);

/// Highest frequency at which |Z_out(f)| still meets `r_required`
/// (log-bisection). Pass the requirement for the SAME weight: a source of
/// weight w carries w units of current, so it must hold
/// required_unit_rout(...) / w. Returns 0 if even f_min fails, f_max if the
/// impedance never falls below the requirement within [f_min, f_max].
double impedance_bandwidth(const tech::MosTechParams& t, const DacSpec& spec,
                           const CellSizing& cell, double r_required,
                           double f_min = 1e3, double f_max = 1e10,
                           int weight = 1);

}  // namespace csdac::core
