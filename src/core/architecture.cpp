#include "core/architecture.hpp"

#include <cmath>
#include <stdexcept>

#include "mathx/stats.hpp"

namespace csdac::core {

std::vector<SegmentationPoint> explore_segmentation(
    int nbits, double unit_cell_area, double sigma_unit,
    const SegmentationCosts& costs) {
  if (nbits < 2 || !(unit_cell_area > 0.0) || !(sigma_unit > 0.0)) {
    throw std::invalid_argument("explore_segmentation: bad arguments");
  }
  std::vector<SegmentationPoint> out;
  const double total_units = std::ldexp(1.0, nbits) - 1.0;
  for (int b = 0; b < nbits; ++b) {
    const int m = nbits - b;
    SegmentationPoint p;
    p.binary_bits = b;
    p.unary_bits = m;
    const double num_unary = std::ldexp(1.0, m) - 1.0;
    // Thermometer decoder plus the delay-equalizing dummy decoder in the
    // binary path (Fig. 1): both scale with the thermometer complexity.
    p.decoder_area = 2.0 * costs.decoder_gate_area *
                     costs.decoder_gate_factor * m * std::ldexp(1.0, m);
    p.latch_area = costs.latch_area * (num_unary + b);
    p.analog_area = total_units * unit_cell_area;
    p.total_area = p.decoder_area + p.latch_area + p.analog_area;
    // sigma_unit is the per-unit relative error and one LSB equals one
    // unit, so the major-carry DNL sigma in LSB is sqrt(2^(b+1)-1)*sigma_u.
    p.dnl_sigma_lsb = std::sqrt(std::ldexp(1.0, b + 1) - 1.0) * sigma_unit;
    p.glitch_metric = std::ldexp(1.0, b);
    out.push_back(p);
  }
  return out;
}

int optimal_binary_bits(const std::vector<SegmentationPoint>& points,
                        double inl_yield, double max_glitch) {
  const double c = mathx::yield_coefficient_two_sided(inl_yield);
  int best = -1;
  double best_area = 0.0;
  for (const auto& p : points) {
    if (p.dnl_sigma_lsb * c > 0.5) continue;  // DNL yield constraint
    if (p.glitch_metric > max_glitch) continue;  // glitch budget
    if (best < 0 || p.total_area < best_area) {
      best = p.binary_bits;
      best_area = p.total_area;
    }
  }
  return best;
}

}  // namespace csdac::core
