#include "core/poles.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace csdac::core {

namespace {
constexpr double kTwoPi = 2.0 * std::numbers::pi;
}

double PoleEstimate::min_hz() const {
  double m = std::min(p1_hz, p2_hz);
  if (p3_hz > 0.0) m = std::min(m, p3_hz);
  return m;
}

double PoleEstimate::settling_time(int nbits) const {
  return tau() * std::log(std::ldexp(1.0, nbits + 1));
}

double total_switch_drain_cap(const tech::MosTechParams& t,
                              const DacSpec& spec, double w_sw_unit) {
  double cap = 0.0;
  // Unary segment: 2^m - 1 sources, each switch scaled by the unary weight.
  cap += spec.num_unary() *
         tech::cj_diffusion(t, w_sw_unit * spec.unary_weight());
  // Binary segment: weights 1, 2, 4, ... 2^(b-1).
  for (int k = 0; k < spec.binary_bits; ++k) {
    cap += tech::cj_diffusion(t, w_sw_unit * std::ldexp(1.0, k));
  }
  return cap;
}

PoleEstimate estimate_poles(const tech::MosTechParams& t, const DacSpec& spec,
                            const CellSizing& cell, int weight) {
  if (weight < 1) throw std::invalid_argument("estimate_poles: weight < 1");
  PoleEstimate p;
  const double wt = weight;

  // p1: output node. R_L against C_L plus every switch drain junction.
  const double c_out = spec.c_load + total_switch_drain_cap(t, spec, cell.sw.w);
  p.p1_hz = 1.0 / (kTwoPi * spec.r_load * c_out);

  // p2: switch source node of the weighted cell. Conductance (gm + gmb) of
  // the switch, capacitance = junction of the device below (CS or CAS) +
  // C_gs of the switch + interconnect between the arrays.
  const double gm_sw = 2.0 * wt * cell.i_unit / cell.vod_sw;
  // Source of the switch sits at v_src above bulk: body effect conductance.
  const double v_src =
      cell.vg_sw - vt_at_vsb(t, 0.0) - cell.vod_sw;  // first-order estimate
  const double vsb = std::max(v_src, 0.0);
  const double gmb_sw =
      gm_sw * t.gamma / (2.0 * std::sqrt(t.phi_2f + vsb));
  const bool cascode = cell.topology == CellTopology::kCsSwCas;
  const double w_below = (cascode ? cell.cas.w : cell.cs.w) * wt;
  const double c_int_node = tech::cj_diffusion(t, w_below) +
                            tech::cgs_sat(t, cell.sw.w * wt, cell.sw.l) +
                            spec.c_int;
  p.p2_hz = (gm_sw + gmb_sw) / (kTwoPi * c_int_node);

  // p3 (cascode only): CS drain / CAS source node.
  if (cascode) {
    const double gm_cas = 2.0 * wt * cell.i_unit / cell.vod_cas;
    const double v_src_cas =
        cell.vg_cas - vt_at_vsb(t, 0.0) - cell.vod_cas;
    const double vsb_cas = std::max(v_src_cas, 0.0);
    const double gmb_cas =
        gm_cas * t.gamma / (2.0 * std::sqrt(t.phi_2f + vsb_cas));
    const double c_node = tech::cj_diffusion(t, cell.cs.w * wt) +
                          tech::cgs_sat(t, cell.cas.w * wt, cell.cas.l);
    p.p3_hz = (gm_cas + gmb_cas) / (kTwoPi * c_node);
  }
  return p;
}

}  // namespace csdac::core
