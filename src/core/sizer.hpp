// The sizing engine of Section 2: given a candidate overdrive point it
// produces the complete cell (device sizes, bias voltages, bound statistics,
// saturation check, pole estimate, output impedance). The design-space
// explorer sweeps it; the benches plot it.
#pragma once

#include <optional>

#include "core/accuracy.hpp"
#include "core/cell.hpp"
#include "core/gate_bounds.hpp"
#include "core/poles.hpp"
#include "core/saturation.hpp"
#include "core/spec.hpp"
#include "tech/tech.hpp"

namespace csdac::core {

/// Everything known about a sized design point.
struct SizedCell {
  CellSizing cell;
  SaturationCheck sat;
  PoleEstimate poles;
  double sigma_unit = 0.0;  ///< eq. (1) design value used
  double rout_unit = 0.0;   ///< small-signal unit output resistance [Ohm]
  /// Bound statistics; basic cells leave the cascode entries zeroed.
  BasicBounds basic_bounds;
  CascodeBounds cascode_bounds;

  bool feasible() const { return sat.feasible(); }
};

class CellSizer {
 public:
  CellSizer(const tech::MosTechParams& t, const DacSpec& spec);

  const DacSpec& spec() const { return spec_; }
  const tech::MosTechParams& tech_params() const { return tech_; }
  /// eq. (1): relative unit-current sigma the CS area is designed for.
  double sigma_unit() const { return sigma_unit_; }
  /// eq. (9)/(11) one-sided yield coefficient S.
  double s_coeff() const { return s_coeff_; }

  /// Sizes the basic (CS+SW) cell at a design point and evaluates the given
  /// saturation policy.
  SizedCell size_basic(double vod_cs, double vod_sw,
                       MarginPolicy policy = MarginPolicy::kStatistical,
                       double fixed_margin = 0.5) const;

  /// Sizes the cascode cell at a design point.
  SizedCell size_cascode(double vod_cs, double vod_sw, double vod_cas,
                         MarginPolicy policy = MarginPolicy::kStatistical,
                         double fixed_margin = 0.5,
                         SigmaAggregation agg = SigmaAggregation::kMax) const;

  /// Saturation boundary of Fig. 3 (upper): the largest feasible VOD_sw at a
  /// given VOD_cs under the policy. Returns nullopt when no positive VOD_sw
  /// is feasible. For kStatistical the margin depends on the sizes, so the
  /// boundary is solved self-consistently.
  std::optional<double> max_vod_sw_basic(double vod_cs, MarginPolicy policy,
                                         double fixed_margin = 0.5) const;

  /// Design-space surface of Fig. 4: the largest feasible VOD_cs at a given
  /// (VOD_sw, VOD_cas) pair under the policy.
  std::optional<double> max_vod_cs_cascode(
      double vod_sw, double vod_cas, MarginPolicy policy,
      double fixed_margin = 0.5,
      SigmaAggregation agg = SigmaAggregation::kMax) const;

 private:
  CellSizing build_basic(double vod_cs, double vod_sw) const;
  CellSizing build_cascode(double vod_cs, double vod_sw, double vod_cas) const;

  tech::MosTechParams tech_;
  DacSpec spec_;
  double sigma_unit_ = 0.0;
  double s_coeff_ = 0.0;
};

}  // namespace csdac::core
