// Statistical models of the switch/cascode gate-voltage bounds (eqs. 6, 7
// and 12). Each saturation constraint of Section 2 is a window
//   L <= V_g <= U
// whose endpoints are random variables under process variation. This file
// computes the nominal endpoints and their standard deviations; the
// saturation module turns them into the statistical margin of eqs. (9)/(11).
//
// Derivation notes (the source text's equations are OCR-damaged; these are
// reconstructed from first principles and cross-validated by Monte-Carlo
// tests in tests/core/gate_bounds_test.cpp):
//
// Basic cell (CS + SW), NMOS stack sinking through R_L tied to VDD:
//  U_sw = VDD - I_FS*R_L + VT_sw
//    var = V_o^2 * [ (s_u^2 / Ntot) + (sR/R)^2 ] + A_VT^2/(W_sw L_sw)
//    (the full-scale current averages Ntot = 2^n - 1 unit draws)
//  L_sw = VOD_cs + VT_sw + VOD_sw
//    var = A_VT^2/(W_cs L_cs)                  [dVT_cs shifts the required
//                                               CS saturation voltage]
//        + A_VT^2/(W_sw L_sw)                  [dVT_sw]
//        + (VOD_sw^2/4) * (s_u^2 + A_b^2/(W_sw L_sw))
//                                              [dVOD_sw from dI and dBeta_sw]
// with s_u = relative sigma of the unit current (eq. 2's design value).
//
// Cascode cell adds two bounds for the CAS gate; see the .cpp.
#pragma once

#include "core/cell.hpp"
#include "core/spec.hpp"
#include "tech/tech.hpp"

namespace csdac::core {

/// One stochastic bound: nominal value and standard deviation.
struct StochasticBound {
  double nominal = 0.0;
  double sigma = 0.0;
};

/// The bound set of the basic (CS + SW) cell: eq. (3) endpoints with
/// eqs. (6)-(7) variances.
struct BasicBounds {
  StochasticBound sw_upper;  ///< eq. (6)
  StochasticBound sw_lower;  ///< eq. (7)
  /// Width of the deterministic window: upper.nominal - lower.nominal.
  double window() const { return sw_upper.nominal - sw_lower.nominal; }
  /// Sum of the two bound sigmas (the eq. (9) margin divisor).
  double sigma_sum() const { return sw_upper.sigma + sw_lower.sigma; }
};

/// The four bounds of the cascode cell (eq. 12).
struct CascodeBounds {
  StochasticBound sw_upper;
  StochasticBound sw_lower;
  StochasticBound cas_upper;
  StochasticBound cas_lower;
  /// Largest of the four sigmas (the paper's eq. (11) aggregation).
  double sigma_max() const;
  /// Root-sum-square of the four sigmas (ablation alternative).
  double sigma_rss() const;
};

/// Computes eqs. (6)-(7) for a sized basic cell. `sigma_unit` is the
/// relative sigma of the unit current (normally the eq. (1) spec value).
BasicBounds basic_cell_bounds(const tech::MosTechParams& t,
                              const DacSpec& spec, const CellSizing& cell,
                              double sigma_unit);

/// Computes eq. (12) for a sized cascode cell.
CascodeBounds cascode_cell_bounds(const tech::MosTechParams& t,
                                  const DacSpec& spec, const CellSizing& cell,
                                  double sigma_unit);

/// Decomposition of the basic cell's bound variances into physical causes —
/// the diagnostic that tells a designer WHERE the statistical margin comes
/// from (for the minimum-size LSB switch, its own V_T mismatch typically
/// dominates, which is precisely the paper's point about modelling every
/// transistor of the cell). Entries are VARIANCES [V^2]; they sum to
/// sigma_U^2 + sigma_L^2.
struct MarginBreakdown {
  double load_tolerance = 0.0;   ///< R_L tolerance through the IR drop
  double full_scale_current = 0.0;  ///< averaged unit errors in I_FS
  double vt_switch = 0.0;        ///< switch V_T mismatch (both bounds)
  double vt_cs = 0.0;            ///< CS V_T mismatch
  double vod_switch = 0.0;       ///< switch overdrive variation (dI, dBeta)

  double total() const {
    return load_tolerance + full_scale_current + vt_switch + vt_cs +
           vod_switch;
  }
  /// The single largest contributor's share of the total.
  double dominant_fraction() const;
};

MarginBreakdown basic_margin_breakdown(const tech::MosTechParams& t,
                                       const DacSpec& spec,
                                       const CellSizing& cell,
                                       double sigma_unit);

}  // namespace csdac::core
