#include "core/sizer.hpp"

#include <cmath>
#include <stdexcept>

#include "mathx/fit.hpp"

namespace csdac::core {
namespace {

/// Small-signal ro of a saturated device carrying i with channel length l:
/// gds = lambda * i / (1 + lambda*vds) ~ lambda * i.
double ro_of(const tech::MosTechParams& t, double i, double l) {
  const double lam = t.lambda(l);
  return 1.0 / (lam * i);
}

/// Unit output resistance looking into the top switch drain.
double unit_rout(const tech::MosTechParams& t, const CellSizing& c) {
  const double gm_sw = 2.0 * c.i_unit / c.vod_sw;
  const double ro_sw = ro_of(t, c.i_unit, c.sw.l);
  const double ro_cs = ro_of(t, c.i_unit, c.cs.l);
  if (c.topology == CellTopology::kCsSw) {
    // Cascode formula with the switch as the (only) cascoding device.
    return ro_sw + (1.0 + gm_sw * ro_sw) * ro_cs;
  }
  const double gm_cas = 2.0 * c.i_unit / c.vod_cas;
  const double ro_cas = ro_of(t, c.i_unit, c.cas.l);
  const double r_below = ro_cas + (1.0 + gm_cas * ro_cas) * ro_cs;
  return ro_sw + (1.0 + gm_sw * ro_sw) * r_below;
}

void check_vod(double v, const char* what) {
  if (!(v > 0.0) || !(v < 3.0)) {
    throw std::invalid_argument(std::string("CellSizer: bad overdrive ") +
                                what);
  }
}

}  // namespace

CellSizer::CellSizer(const tech::MosTechParams& t, const DacSpec& spec)
    : tech_(t), spec_(spec) {
  spec_.validate();
  sigma_unit_ = unit_sigma_spec(spec_.nbits, spec_.inl_yield);
  s_coeff_ = s_coefficient(spec_.inl_yield);
}

CellSizing CellSizer::build_basic(double vod_cs, double vod_sw) const {
  check_vod(vod_cs, "vod_cs");
  check_vod(vod_sw, "vod_sw");
  CellSizing c;
  c.topology = CellTopology::kCsSw;
  c.i_unit = spec_.i_lsb();
  c.vod_cs = vod_cs;
  c.vod_sw = vod_sw;
  c.cs = size_current_source(tech_, c.i_unit, vod_cs, sigma_unit_);
  // Switches at minimum length for speed (Section 2).
  c.sw = size_for_current(tech_, c.i_unit, vod_sw, tech_.l_min);
  c.vg_cs = vg_cs_for(tech_, vod_cs);
  c.vg_sw = optimal_vg_sw_basic(tech_, spec_.v_out_min, vod_cs, vod_sw);
  c.slack = spec_.v_out_min - vod_cs - vod_sw;
  return c;
}

CellSizing CellSizer::build_cascode(double vod_cs, double vod_sw,
                                    double vod_cas) const {
  check_vod(vod_cs, "vod_cs");
  check_vod(vod_sw, "vod_sw");
  check_vod(vod_cas, "vod_cas");
  CellSizing c;
  c.topology = CellTopology::kCsSwCas;
  c.i_unit = spec_.i_lsb();
  c.vod_cs = vod_cs;
  c.vod_sw = vod_sw;
  c.vod_cas = vod_cas;
  c.cs = size_current_source(tech_, c.i_unit, vod_cs, sigma_unit_);
  c.sw = size_for_current(tech_, c.i_unit, vod_sw, tech_.l_min);
  // Minimum-width criterion for the cascode (Section 2.2): smallest area
  // that still delivers the overdrive at minimum length.
  c.cas = size_for_current(tech_, c.i_unit, vod_cas, tech_.l_min);
  c.vg_cs = vg_cs_for(tech_, vod_cs);
  const CascodeBias bias =
      optimal_vg_cascode(tech_, spec_.v_out_min, vod_cs, vod_cas, vod_sw);
  c.vg_cas = bias.vg_cas;
  c.vg_sw = bias.vg_sw;
  c.slack = spec_.v_out_min - vod_cs - vod_sw - vod_cas;
  return c;
}

SizedCell CellSizer::size_basic(double vod_cs, double vod_sw,
                                MarginPolicy policy,
                                double fixed_margin) const {
  SizedCell s;
  s.cell = build_basic(vod_cs, vod_sw);
  s.sigma_unit = sigma_unit_;
  s.basic_bounds = basic_cell_bounds(tech_, spec_, s.cell, sigma_unit_);
  switch (policy) {
    case MarginPolicy::kNone:
      s.sat = check_basic_classic(spec_, vod_cs, vod_sw, 0.0);
      break;
    case MarginPolicy::kFixedMargin:
      s.sat = check_basic_classic(spec_, vod_cs, vod_sw, fixed_margin);
      break;
    case MarginPolicy::kStatistical:
      s.sat = check_basic_statistical(tech_, spec_, s.cell, sigma_unit_,
                                      s_coeff_);
      break;
  }
  // Settling is dominated by the unary cells (weight 2^b) that switch at
  // the thermometer transitions.
  s.poles = estimate_poles(tech_, spec_, s.cell, spec_.unary_weight());
  s.rout_unit = unit_rout(tech_, s.cell);
  return s;
}

SizedCell CellSizer::size_cascode(double vod_cs, double vod_sw, double vod_cas,
                                  MarginPolicy policy, double fixed_margin,
                                  SigmaAggregation agg) const {
  SizedCell s;
  s.cell = build_cascode(vod_cs, vod_sw, vod_cas);
  s.sigma_unit = sigma_unit_;
  s.cascode_bounds = cascode_cell_bounds(tech_, spec_, s.cell, sigma_unit_);
  switch (policy) {
    case MarginPolicy::kNone:
      s.sat = check_cascode_classic(spec_, vod_cs, vod_sw, vod_cas, 0.0);
      break;
    case MarginPolicy::kFixedMargin:
      s.sat =
          check_cascode_classic(spec_, vod_cs, vod_sw, vod_cas, fixed_margin);
      break;
    case MarginPolicy::kStatistical:
      s.sat = check_cascode_statistical(tech_, spec_, s.cell, sigma_unit_,
                                        s_coeff_, agg);
      break;
  }
  s.poles = estimate_poles(tech_, spec_, s.cell, spec_.unary_weight());
  s.rout_unit = unit_rout(tech_, s.cell);
  return s;
}

std::optional<double> CellSizer::max_vod_sw_basic(double vod_cs,
                                                  MarginPolicy policy,
                                                  double fixed_margin) const {
  const double budget = spec_.v_out_min;
  constexpr double kVodMin = 1e-3;
  if (policy != MarginPolicy::kStatistical) {
    const double margin =
        policy == MarginPolicy::kFixedMargin ? fixed_margin : 0.0;
    const double v = budget - margin - vod_cs;
    if (v <= kVodMin) return std::nullopt;
    return v;
  }
  // Statistical boundary: vod_sw such that
  //   vod_cs + vod_sw + S*(sigma_U(vod_sw) + sigma_L(vod_sw)) = budget.
  auto slack = [&](double vod_sw) {
    const SizedCell s =
        size_basic(vod_cs, vod_sw, MarginPolicy::kStatistical);
    return s.sat.slack();
  };
  const double hi = budget - vod_cs - kVodMin;
  if (hi <= kVodMin || slack(kVodMin) < 0.0) return std::nullopt;
  if (slack(hi) >= 0.0) return hi;  // margin never binds (unlikely)
  return mathx::bisect([&](double v) { return slack(v); }, kVodMin, hi, 1e-9);
}

std::optional<double> CellSizer::max_vod_cs_cascode(double vod_sw,
                                                    double vod_cas,
                                                    MarginPolicy policy,
                                                    double fixed_margin,
                                                    SigmaAggregation agg) const {
  const double budget = spec_.v_out_min;
  constexpr double kVodMin = 1e-3;
  if (policy != MarginPolicy::kStatistical) {
    const double margin =
        policy == MarginPolicy::kFixedMargin ? fixed_margin : 0.0;
    const double v = budget - margin - vod_sw - vod_cas;
    if (v <= kVodMin) return std::nullopt;
    return v;
  }
  auto slack = [&](double vod_cs) {
    const SizedCell s = size_cascode(vod_cs, vod_sw, vod_cas,
                                     MarginPolicy::kStatistical, 0.0, agg);
    return s.sat.slack();
  };
  const double hi = budget - vod_sw - vod_cas - kVodMin;
  if (hi <= kVodMin || slack(kVodMin) < 0.0) return std::nullopt;
  if (slack(hi) >= 0.0) return hi;
  return mathx::bisect([&](double v) { return slack(v); }, kVodMin, hi, 1e-9);
}

}  // namespace csdac::core
