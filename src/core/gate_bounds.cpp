#include "core/gate_bounds.hpp"

#include <algorithm>
#include <cmath>

namespace csdac::core {
namespace {

double sq(double v) { return v * v; }

/// Variance of a device threshold: A_VT^2 / (W L).
double var_vt(const tech::MosTechParams& t, const DeviceSize& d) {
  return sq(t.a_vt) / d.area();
}

/// Variance of a device's relative beta: A_beta^2 / (W L).
double var_beta(const tech::MosTechParams& t, const DeviceSize& d) {
  return sq(t.a_beta) / d.area();
}

/// Variance of the overdrive of a stacked device forced to carry the cell
/// current: dVOD = (VOD/2) * (dI/I - dBeta/Beta).
double var_vod(const tech::MosTechParams& t, const DeviceSize& d, double vod,
               double sigma_unit) {
  return sq(vod) / 4.0 * (sq(sigma_unit) + var_beta(t, d));
}

}  // namespace

double CascodeBounds::sigma_max() const {
  return std::max({sw_upper.sigma, sw_lower.sigma, cas_upper.sigma,
                   cas_lower.sigma});
}

double CascodeBounds::sigma_rss() const {
  return std::sqrt(sq(sw_upper.sigma) + sq(sw_lower.sigma) +
                   sq(cas_upper.sigma) + sq(cas_lower.sigma));
}

BasicBounds basic_cell_bounds(const tech::MosTechParams& t,
                              const DacSpec& spec, const CellSizing& cell,
                              double sigma_unit) {
  BasicBounds b;
  const double n_tot = static_cast<double>(spec.total_units());

  // eq. (6): U = V_out,min + VT_sw, with V_out,min = V_term - I_FS*R_L.
  // The random part is the full-scale IR drop (swing) plus the SW threshold.
  b.sw_upper.nominal = spec.v_out_min + t.vt0;
  b.sw_upper.sigma = std::sqrt(
      sq(spec.v_swing) * (sq(sigma_unit) / n_tot + sq(spec.r_load_tol)) +
      var_vt(t, cell.sw));

  // eq. (7): L = VOD_cs + VT_sw + VOD_sw (referenced to the cell ground;
  // VT values here use vt0 -- the body-effect shift is deterministic and
  // common to both bound and bias, so it cancels in the margin).
  b.sw_lower.nominal = cell.vod_cs + t.vt0 + cell.vod_sw;
  b.sw_lower.sigma =
      std::sqrt(var_vt(t, cell.cs) + var_vt(t, cell.sw) +
                var_vod(t, cell.sw, cell.vod_sw, sigma_unit));
  return b;
}

double MarginBreakdown::dominant_fraction() const {
  const double m = std::max({load_tolerance, full_scale_current, vt_switch,
                             vt_cs, vod_switch});
  const double tot = total();
  return tot > 0.0 ? m / tot : 0.0;
}

MarginBreakdown basic_margin_breakdown(const tech::MosTechParams& t,
                                       const DacSpec& spec,
                                       const CellSizing& cell,
                                       double sigma_unit) {
  MarginBreakdown b;
  const double n_tot = static_cast<double>(spec.total_units());
  b.load_tolerance = sq(spec.v_swing * spec.r_load_tol);
  b.full_scale_current = sq(spec.v_swing) * sq(sigma_unit) / n_tot;
  // The switch V_T enters BOTH the upper and the lower bound.
  b.vt_switch = 2.0 * var_vt(t, cell.sw);
  b.vt_cs = var_vt(t, cell.cs);
  b.vod_switch = var_vod(t, cell.sw, cell.vod_sw, sigma_unit);
  return b;
}

CascodeBounds cascode_cell_bounds(const tech::MosTechParams& t,
                                  const DacSpec& spec, const CellSizing& cell,
                                  double sigma_unit) {
  CascodeBounds b;
  const double n_tot = static_cast<double>(spec.total_units());

  // SW upper: as eq. (6).
  b.sw_upper.nominal = spec.v_out_min + t.vt0;
  b.sw_upper.sigma = std::sqrt(
      sq(spec.v_swing) * (sq(sigma_unit) / n_tot + sq(spec.r_load_tol)) +
      var_vt(t, cell.sw));

  // SW lower: the SW source node must stay above the CAS saturation level
  // set by the CAS gate: L_sw = Vg_cas - VT_cas + VT_sw + VOD_sw.
  b.sw_lower.nominal = cell.vod_cs + cell.vod_cas + t.vt0 + cell.vod_sw;
  b.sw_lower.sigma =
      std::sqrt(var_vt(t, cell.cas) + var_vt(t, cell.sw) +
                var_vod(t, cell.sw, cell.vod_sw, sigma_unit));

  // CAS upper: the CAS drain (= SW source) is set by the SW gate; with the
  // SW gate at its own upper bound, U_cas = V_out,min + VT_cas - VOD_sw.
  b.cas_upper.nominal = spec.v_out_min + t.vt0 - cell.vod_sw;
  b.cas_upper.sigma =
      std::sqrt(var_vt(t, cell.sw) + var_vt(t, cell.cas) +
                var_vod(t, cell.sw, cell.vod_sw, sigma_unit));

  // CAS lower: keep the CS in saturation:
  // L_cas = VOD_cs + VT_cas + VOD_cas.
  b.cas_lower.nominal = cell.vod_cs + t.vt0 + cell.vod_cas;
  b.cas_lower.sigma =
      std::sqrt(var_vt(t, cell.cs) + var_vt(t, cell.cas) +
                var_vod(t, cell.cas, cell.vod_cas, sigma_unit));
  return b;
}

}  // namespace csdac::core
