// Architecture-level segmentation exploration (Section 1, after [4,5,6]):
// choosing how many of the n bits are thermometer-decoded (m) versus
// binary-weighted (b = n - m). The analog accuracy (INL) does not depend on
// the split; the digital decoder area grows ~ m * 2^m, the worst-case DNL
// and the glitch energy grow with 2^b.
#pragma once

#include <vector>

#include "core/spec.hpp"

namespace csdac::core {

/// Cost-model constants (normalized units; defaults give the classic
/// area-optimal segmentation around b = 3..5 for 12-bit converters).
struct SegmentationCosts {
  /// Area of one thermometer-decoder gate-equivalent [m^2].
  double decoder_gate_area = 120e-12;
  /// Decoder gate count model: gates ~ k * m * 2^m.
  double decoder_gate_factor = 1.0;
  /// Area of one latch + switch-driver block [m^2].
  double latch_area = 400e-12;
};

struct SegmentationPoint {
  int binary_bits = 0;     ///< b
  int unary_bits = 0;      ///< m = n - b
  double decoder_area = 0; ///< thermometer + dummy decoder [m^2]
  double latch_area = 0;   ///< one latch per unary source + per binary bit
  double analog_area = 0;  ///< current-source array (split-independent)
  double total_area = 0;
  /// Worst-case DNL sigma in LSB: the major-carry transition swaps the
  /// largest binary source (2^b - 1 units) against one unary source (2^b
  /// units): sigma_DNL = sqrt(2^(b+1) - 1) * sigma_unit.
  double dnl_sigma_lsb = 0;
  /// Glitch-energy proxy ~ the weight switched non-synchronously: 2^b.
  double glitch_metric = 0;
};

/// Evaluates every segmentation 0 <= b <= n-1 of an n-bit converter.
/// `unit_cell_area` is the active area of one LSB unit cell (from the
/// sizing engine); `sigma_unit` the eq. (1) accuracy.
std::vector<SegmentationPoint> explore_segmentation(
    int nbits, double unit_cell_area, double sigma_unit,
    const SegmentationCosts& costs = {});

/// The b minimizing total area subject to (a) a DNL yield constraint
/// (dnl_sigma_lsb * C <= 0.5, i.e. |DNL| < 0.5 LSB at the same yield level
/// used for INL) and (b) a glitch budget: glitch_metric <= max_glitch
/// (the glitch-energy minimization the paper defers to circuit level still
/// caps the binary segment at architecture level; the paper's design uses
/// b = 4, i.e. a budget of 16). Returns -1 if nothing satisfies both.
int optimal_binary_bits(const std::vector<SegmentationPoint>& points,
                        double inl_yield, double max_glitch = 16.0);

}  // namespace csdac::core
