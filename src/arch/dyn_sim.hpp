#pragma once

// Per-cell dynamic-error simulator for an arbitrary cell weighting.
//
// Unlike dac::DynamicSimulator (one global binary skew, therm/binary edge
// pair), every cell here carries its own switching-instant offset and its
// own rise/fall asymmetry, drawn from deterministic (seed,index) streams
// like the amplitude MC.  A per-cell skew makes the timing error
// code-dependent — that is what turns a linear settling response into
// distortion (Beauchamp–Chugg, arXiv 2203.08939) — so the output must be
// analyzed as a full oversampled waveform: sampling at the end of each
// period would see settled values and hide the effect entirely.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "arch/weighting.hpp"
#include "dac/spectrum.hpp"
#include "mathx/rng.hpp"

namespace csdac::arch {

struct TimingParams {
  double fs = 300e6;        ///< sample rate [S/s]
  int oversample = 16;      ///< waveform points per sample period
  double tau = 0.25e-9;     ///< shared settling time constant [s]
  double sigma_t = 0.0;     ///< per-cell switching-instant skew sigma [s]
  /// Per-cell rise/fall asymmetry sigma [s]: a cell's ON edge fires
  /// asym/2 later and its OFF edge asym/2 earlier (asym is signed), the
  /// classic glitch-energy mechanism of mismatched complementary switches.
  double asym_sigma = 0.0;

  /// Throws std::invalid_argument on non-finite or out-of-range values.
  void validate() const;
};

/// One chip realization of the timing errors: per-cell edge delay and
/// signed rise/fall asymmetry, both in seconds.
struct CellTiming {
  std::vector<double> dt;
  std::vector<double> asym;
};

CellTiming ideal_cell_timing(int cells);
CellTiming draw_cell_timing(int cells, const TimingParams& params,
                            mathx::Xoshiro256& rng);

/// All edges sit at a common nominal delay of 0.125 * ts.  A shared delay
/// is pure LTI delay (no distortion) but keeps the signed Gaussian skews
/// from being truncated by the t >= 0 clamp below.
inline constexpr double kNominalEdgeFrac = 0.125;

/// Edge instant of cell `c` within a sample period of length `ts`:
/// nominal + dt + asym/2 for a turn-ON, nominal + dt - asym/2 for a
/// turn-OFF, clamped to [0, 0.45 * ts] so edges stay inside the first half
/// of the period.  Shared by the waveform simulator and the ETE predictor
/// so both see exactly the same effective delays.
double edge_time(const CellTiming& t, std::size_t c, bool turning_on,
                 double ts);

/// Event-driven waveform synthesis: per period, the switching cells are
/// sorted by edge instant and the shared single-pole settling state is
/// advanced between events, sampling on the oversample grid.
class ArchSimulator {
 public:
  ArchSimulator(CellArray array, TimingParams params, double v_lsb);

  const CellArray& array() const { return array_; }
  const TimingParams& params() const { return params_; }
  double v_lsb() const { return v_lsb_; }

  /// Oversampled waveform (codes.size() * oversample points at rate
  /// fs * oversample) in periodic steady state: the walk starts settled
  /// at codes.back() and period 0 carries the wrap-around transition to
  /// codes.front(), so a coherent record matches the DFT's periodic
  /// extension (no start-up transient polluting the noise floor).
  std::vector<double> waveform(const std::vector<int>& codes,
                               const CellTiming& timing) const;

  /// Glitch energy of one code transition [V*s]: integral of |v - v_ref|
  /// over the transition period, where v_ref is the same transition with
  /// ideal (zero-error) cell timing.  Zero timing errors give exactly 0.
  double glitch_energy(const CellTiming& timing, int code_from,
                       int code_to) const;

  /// Spectrum of the full oversampled waveform, restricted to the
  /// converter's own band (max_freq = fs/2) and told where the fundamental
  /// is (`fund_cycles` coherent cycles per record).
  dac::SpectrumResult spectrum(const std::vector<int>& codes,
                               const CellTiming& timing,
                               int fund_cycles) const;

 private:
  CellArray array_;
  TimingParams params_;
  double v_lsb_ = 0.0;
};

}  // namespace csdac::arch
