#pragma once

#include "obs/metrics.hpp"

namespace csdac::arch {

/// Process-wide instruments for the dynamic-error architecture engine,
/// registered once on first use (same idiom as RareInstruments).
struct ArchInstruments {
  obs::Counter& waveforms;     ///< waveform syntheses (ArchSimulator)
  obs::Counter& ete_evals;     ///< equivalent-timing-error predictions
  obs::Counter& opt_searches;  ///< optimize_weighting invocations
  obs::Counter& dyn_runs;      ///< DynSpectrumJob executions
  obs::Counter& compare_runs;  ///< ArchCompareJob executions
  obs::Gauge& last_sfdr_db;    ///< mean SFDR of the last dyn-spectrum run
  obs::Gauge& last_yield;      ///< yield of the last dyn-spectrum run
};

ArchInstruments& arch_instruments();

}  // namespace csdac::arch
