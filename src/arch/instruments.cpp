#include "arch/instruments.hpp"

namespace csdac::arch {

ArchInstruments& arch_instruments() {
  auto& reg = obs::Registry::global();
  static ArchInstruments m{
      reg.counter("arch.waveforms", "Dynamic waveform syntheses"),
      reg.counter("arch.ete_evals", "Equivalent-timing-error predictions"),
      reg.counter("arch.opt_searches", "Weighting optimizations run"),
      reg.counter("arch.dyn_runs", "Dynamic-spectrum yield runs"),
      reg.counter("arch.compare_runs", "Architecture-comparison sweeps"),
      reg.gauge("arch.last_sfdr_db", "Mean SFDR of last dyn-spectrum run"),
      reg.gauge("arch.last_yield", "Yield of last dyn-spectrum run"),
  };
  return m;
}

}  // namespace csdac::arch
