#include "arch/dyn_sim.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "arch/instruments.hpp"

namespace csdac::arch {

void TimingParams::validate() const {
  if (!std::isfinite(fs) || !(fs > 0.0)) {
    throw std::invalid_argument("TimingParams: fs must be finite and > 0");
  }
  if (oversample < 2 || oversample > 1024) {
    throw std::invalid_argument(
        "TimingParams: oversample must be in [2, 1024]");
  }
  if (!std::isfinite(tau) || !(tau > 0.0)) {
    throw std::invalid_argument("TimingParams: tau must be finite and > 0");
  }
  const double ts = 1.0 / fs;
  if (!std::isfinite(sigma_t) || sigma_t < 0.0 || sigma_t >= ts) {
    throw std::invalid_argument(
        "TimingParams: sigma_t must be finite, >= 0 and < 1/fs");
  }
  if (!std::isfinite(asym_sigma) || asym_sigma < 0.0 || asym_sigma >= ts) {
    throw std::invalid_argument(
        "TimingParams: asym_sigma must be finite, >= 0 and < 1/fs");
  }
}

CellTiming ideal_cell_timing(int cells) {
  CellTiming t;
  t.dt.assign(static_cast<std::size_t>(cells), 0.0);
  t.asym.assign(static_cast<std::size_t>(cells), 0.0);
  return t;
}

CellTiming draw_cell_timing(int cells, const TimingParams& params,
                            mathx::Xoshiro256& rng) {
  CellTiming t;
  t.dt.resize(static_cast<std::size_t>(cells));
  t.asym.resize(static_cast<std::size_t>(cells));
  for (int c = 0; c < cells; ++c) {
    t.dt[static_cast<std::size_t>(c)] =
        params.sigma_t * mathx::normal(rng);
    t.asym[static_cast<std::size_t>(c)] =
        params.asym_sigma * mathx::normal(rng);
  }
  return t;
}

double edge_time(const CellTiming& t, std::size_t c, bool turning_on,
                 double ts) {
  const double half_asym = 0.5 * t.asym[c];
  const double raw =
      kNominalEdgeFrac * ts + t.dt[c] + (turning_on ? half_asym : -half_asym);
  return std::clamp(raw, 0.0, 0.45 * ts);
}

ArchSimulator::ArchSimulator(CellArray array, TimingParams params,
                             double v_lsb)
    : array_(std::move(array)), params_(params), v_lsb_(v_lsb) {
  params_.validate();
  if (!std::isfinite(v_lsb_) || !(v_lsb_ > 0.0)) {
    throw std::invalid_argument("ArchSimulator: v_lsb must be > 0");
  }
}

std::vector<double> ArchSimulator::waveform(const std::vector<int>& codes,
                                            const CellTiming& timing) const {
  const std::size_t n_cells = static_cast<std::size_t>(array_.cells());
  if (timing.dt.size() != n_cells || timing.asym.size() != n_cells) {
    throw std::invalid_argument("ArchSimulator: timing size != cell count");
  }
  if (codes.empty()) return {};
  arch_instruments().waveforms.add(1);

  const int os = params_.oversample;
  const double ts = 1.0 / params_.fs;
  const double dt_sub = ts / os;
  const double tau = params_.tau;
  const auto& w = array_.weights();

  std::vector<double> out;
  out.reserve(codes.size() * static_cast<std::size_t>(os));

  // The record is the periodic steady state: the walk starts settled at
  // codes.back() and period 0 carries the wrap-around transition to
  // codes.front().  A coherent record then matches the DFT's periodic
  // extension exactly — starting cold at codes.front() instead leaves a
  // one-off start-up transient that smears ~-60 dB/bin of broadband
  // error across the whole band and buries the quantization floor.
  std::vector<std::uint8_t> prev;
  std::vector<std::uint8_t> cur;
  array_.encode(codes.back(), prev);

  struct Edge {
    double t;
    int dlevel;  // signed weight of the switching cell [LSB]
  };
  std::vector<Edge> events;

  double target = static_cast<double>(codes.back()) * v_lsb_;
  double v = target;  // start settled
  for (std::size_t k = 0; k < codes.size(); ++k) {
    events.clear();
    array_.encode(codes[k], cur);
    for (std::size_t c = 0; c < n_cells; ++c) {
      if (cur[c] == prev[c]) continue;
      const bool on = cur[c] != 0;
      events.push_back(Edge{edge_time(timing, c, on, ts),
                            on ? w[c] : -w[c]});
    }
    // stable: equal instants keep cell-index order, so the walk is
    // deterministic for any timing draw.
    std::stable_sort(events.begin(), events.end(),
                     [](const Edge& a, const Edge& b) { return a.t < b.t; });
    std::swap(prev, cur);
    std::size_t e = 0;
    double t_cur = 0.0;
    for (int s = 0; s < os; ++s) {
      const double t_end = (s + 1) * dt_sub;
      while (e < events.size() && events[e].t <= t_end) {
        v = target + (v - target) * std::exp(-(events[e].t - t_cur) / tau);
        t_cur = events[e].t;
        target += events[e].dlevel * v_lsb_;
        ++e;
      }
      v = target + (v - target) * std::exp(-(t_end - t_cur) / tau);
      t_cur = t_end;
      out.push_back(v);
    }
  }
  return out;
}

double ArchSimulator::glitch_energy(const CellTiming& timing, int code_from,
                                    int code_to) const {
  const std::vector<int> codes = {code_from, code_to};
  const std::vector<double> actual = waveform(codes, timing);
  const std::vector<double> ref =
      waveform(codes, ideal_cell_timing(array_.cells()));
  const int os = params_.oversample;
  const double dt_sub = 1.0 / (params_.fs * os);
  double energy = 0.0;
  for (std::size_t i = static_cast<std::size_t>(os); i < actual.size(); ++i) {
    energy += std::abs(actual[i] - ref[i]) * dt_sub;
  }
  return energy;
}

dac::SpectrumResult ArchSimulator::spectrum(const std::vector<int>& codes,
                                            const CellTiming& timing,
                                            int fund_cycles) const {
  const std::vector<double> wave = waveform(codes, timing);
  dac::SpectrumOptions opts;
  // The record is oversampled by `oversample`; only the converter's own
  // band matters (the zero-order-hold images above fs/2 are not spurs).
  opts.max_freq = params_.fs / 2.0;
  return dac::analyze_spectrum(wave, params_.fs * params_.oversample, opts,
                               static_cast<std::size_t>(fund_cycles));
}

}  // namespace csdac::arch
