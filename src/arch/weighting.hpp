#pragma once

// Searchable cell-weighting / segmentation architectures for the
// current-steering array.
//
// A weighting scheme assigns an integer weight (in unit currents) to each
// switchable cell.  Classic choices are binary (n cells, weights 2^k),
// unary/thermometer (2^n-1 cells of weight 1) and segmented (thermometer
// MSB bank + binary LSB tail).  Babaee et al. (arXiv 2512.08903) show that
// the weight vector itself is a design axis: among all "complete" weight
// sequences that cover every code exactly, some have far lower
// timing-mismatch distortion because they concentrate the switching
// activity on low-weight cells.  `optimize_weighting` searches that space
// deterministically.
//
// A weight multiset {w_1 <= w_2 <= ...} is *complete* when w_1 = 1 and
// w_{k+1} <= 1 + sum_{i<=k} w_i.  Completeness makes every integer in
// [0, sum w_i] exactly representable, and the greedy
// largest-weight-first encoder is exact (induction over the sorted
// sequence).  Note a corollary used by the tests: a complete sequence
// with exactly n cells summing to 2^n - 1 is forced to be the binary
// sequence, so "optimized" weightings only exist at cell budgets larger
// than n (equal total unit count = equal area, more cells).

#include <cstdint>
#include <string_view>
#include <vector>

namespace csdac::arch {

enum class WeightingKind : std::uint8_t {
  kBinary = 1,
  kUnary = 2,
  kSegmented = 3,
  kOptimized = 4,
};

std::string_view weighting_name(WeightingKind kind);

/// Parses "binary" / "unary" / "segmented" / "optimized"; returns false on
/// unknown names (serve-layer friendly: no exception).
bool parse_weighting_kind(std::string_view name, WeightingKind& out);

struct WeightingScheme {
  WeightingKind kind = WeightingKind::kSegmented;
  int nbits = 12;
  /// Segmented: number of binary LSBs. Optimized: total cell budget.
  /// Binary / unary: unused (0).
  int param = 0;
  /// Cell weights in unit currents, descending, sum = 2^nbits - 1.
  std::vector<int> weights;
};

/// True when the multiset `weights` is a complete sequence (sorts a copy).
bool is_complete_sequence(std::vector<int> weights);

/// Builds the weight vector for a scheme.  `param` is the binary split for
/// kSegmented (default: nbits/3 like core::DacSpec) and the cell budget for
/// kOptimized (default/0: the cell count of the segmented scheme at the
/// default split).  Throws std::invalid_argument on bad arguments.
WeightingScheme make_weighting(WeightingKind kind, int nbits, int param = 0);

/// Options for the deterministic weighting search.
struct OptimizeOptions {
  int cells = 0;       ///< total cell budget (> nbits); 0 = default
  int n_samples = 128; ///< reference sine record length for the activity metric
  int cycles = 7;      ///< coherent cycles in the reference record
  int max_rounds = 256;
};

/// Deterministic first-improvement local search minimizing the
/// timing-distortion proxy sum_c w_c^2 N_c (N_c = toggle count of cell c
/// over a reference full-scale sine), over complete weight sequences with
/// `cells` cells summing to 2^nbits - 1.  Same inputs always return the
/// same weights (no RNG), so cached job keys stay stable.
WeightingScheme optimize_weighting(int nbits, const OptimizeOptions& opts);

/// Immutable cell array: validates the scheme and encodes codes onto cells.
class CellArray {
 public:
  explicit CellArray(WeightingScheme scheme);

  const WeightingScheme& scheme() const { return scheme_; }
  int nbits() const { return scheme_.nbits; }
  int cells() const { return static_cast<int>(scheme_.weights.size()); }
  int full_scale() const { return full_scale_; }
  const std::vector<int>& weights() const { return scheme_.weights; }

  /// Greedy largest-first encoding of `code` in [0, full_scale()]; exact
  /// for complete sequences.  `on` is resized to cells().  Equal-weight
  /// cells turn on in index order, so a unary bank behaves as a
  /// thermometer.
  void encode(int code, std::vector<std::uint8_t>& on) const;
  std::vector<std::uint8_t> encode(int code) const;

 private:
  WeightingScheme scheme_;
  int full_scale_ = 0;
};

/// Per-cell toggle counts over a code sequence (state changes between
/// consecutive codes; the initial state is not a toggle).
std::vector<std::int64_t> switching_counts(const CellArray& arr,
                                           const std::vector<int>& codes);

/// Timing-distortion proxy sum_c w_c^2 N_c for a code sequence: the
/// expected error power of per-cell timing skew is proportional to it
/// (each toggle of cell c injects an error impulse of area w_c * t_c).
double switching_activity(const CellArray& arr, const std::vector<int>& codes);

}  // namespace csdac::arch
