#include "arch/ete.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "arch/instruments.hpp"

namespace csdac::arch {

EtePrediction ete_predict(const CellArray& arr, const CellTiming& timing,
                          double v_lsb, double fs,
                          const std::vector<int>& codes, int fund_cycles) {
  const std::size_t n_cells = static_cast<std::size_t>(arr.cells());
  if (timing.dt.size() != n_cells || timing.asym.size() != n_cells) {
    throw std::invalid_argument("ete_predict: timing size != cell count");
  }
  if (codes.empty()) return {};
  arch_instruments().ete_evals.add(1);

  const double ts = 1.0 / fs;
  const auto& w = arr.weights();
  std::vector<double> record(codes.size());
  std::vector<std::uint8_t> prev;
  std::vector<std::uint8_t> cur;
  // Like ArchSimulator::waveform, the record is the periodic steady
  // state: sample 0 carries the error of the wrap-around transition from
  // codes.back(), so coherent records have no start-up transient.
  arr.encode(codes.back(), prev);
  for (std::size_t k = 0; k < codes.size(); ++k) {
    arr.encode(codes[k], cur);
    double err = 0.0;
    for (std::size_t c = 0; c < n_cells; ++c) {
      if (cur[c] == prev[c]) continue;
      const bool on = cur[c] != 0;
      const double te = edge_time(timing, c, on, ts);
      const double delta = on ? 1.0 : -1.0;
      err -= fs * delta * w[c] * v_lsb * te;
    }
    record[k] = static_cast<double>(codes[k]) * v_lsb + err;
    std::swap(prev, cur);
  }

  const dac::SpectrumResult r = dac::analyze_spectrum(
      record, fs, {}, static_cast<std::size_t>(fund_cycles));
  EtePrediction p;
  p.record = std::move(record);
  p.sfdr_db = r.sfdr_db;
  p.sndr_db = r.sndr_db;
  return p;
}

double ete_expected_sndr_db(const CellArray& arr,
                            const std::vector<int>& codes,
                            const TimingParams& params) {
  params.validate();
  if (codes.empty()) return 300.0;
  const auto [lo, hi] = std::minmax_element(codes.begin(), codes.end());
  const double amp = 0.5 * (*hi - *lo);
  const double sigma_eff2 = params.sigma_t * params.sigma_t +
                            0.25 * params.asym_sigma * params.asym_sigma;
  const double activity = switching_activity(arr, codes);
  const double noise = params.fs * params.fs * sigma_eff2 * activity /
                       static_cast<double>(codes.size());
  if (!(noise > 0.0) || !(amp > 0.0)) return 300.0;
  return 10.0 * std::log10(0.5 * amp * amp / noise);
}

}  // namespace csdac::arch
