#include "arch/weighting.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>

#include "arch/instruments.hpp"

namespace csdac::arch {
namespace {

int full_scale_for(int nbits) { return (1 << nbits) - 1; }

void check_nbits(int nbits) {
  if (nbits < 2 || nbits > 16) {
    throw std::invalid_argument("WeightingScheme: nbits must be in [2, 16]");
  }
}

/// Full-swing coherent sine rounded to codes — the reference record the
/// activity metric and the optimizer score against.  Local (not
/// dac::sine_codes) so the weighting layer stays free of dac:: types.
std::vector<int> reference_sine_codes(int nbits, int n_samples, int cycles) {
  const int fs = full_scale_for(nbits);
  const double mid = 0.5 * fs;
  const double amp = mid - 1.0;
  std::vector<int> codes(static_cast<std::size_t>(n_samples));
  for (int i = 0; i < n_samples; ++i) {
    const double phase = 2.0 * M_PI * cycles * i / n_samples;
    double v = mid + amp * std::sin(phase);
    int c = static_cast<int>(std::lround(v));
    codes[static_cast<std::size_t>(i)] = std::clamp(c, 0, fs);
  }
  return codes;
}

/// sum_c w_c^2 N_c over `codes` for a descending-sorted weight vector.
/// Shared by switching_activity and the optimizer inner loop.
double activity_of(int nbits, const std::vector<int>& weights,
                   const std::vector<int>& codes) {
  CellArray arr(WeightingScheme{WeightingKind::kOptimized, nbits, 0, weights});
  return switching_activity(arr, codes);
}

}  // namespace

std::string_view weighting_name(WeightingKind kind) {
  switch (kind) {
    case WeightingKind::kBinary: return "binary";
    case WeightingKind::kUnary: return "unary";
    case WeightingKind::kSegmented: return "segmented";
    case WeightingKind::kOptimized: return "optimized";
  }
  return "unknown";
}

bool parse_weighting_kind(std::string_view name, WeightingKind& out) {
  if (name == "binary") { out = WeightingKind::kBinary; return true; }
  if (name == "unary") { out = WeightingKind::kUnary; return true; }
  if (name == "segmented") { out = WeightingKind::kSegmented; return true; }
  if (name == "optimized") { out = WeightingKind::kOptimized; return true; }
  return false;
}

bool is_complete_sequence(std::vector<int> weights) {
  if (weights.empty()) return false;
  std::sort(weights.begin(), weights.end());
  long long prefix = 0;
  for (int w : weights) {
    if (w < 1 || static_cast<long long>(w) > prefix + 1) return false;
    prefix += w;
  }
  return true;
}

WeightingScheme make_weighting(WeightingKind kind, int nbits, int param) {
  check_nbits(nbits);
  WeightingScheme s;
  s.kind = kind;
  s.nbits = nbits;
  const int fs = full_scale_for(nbits);
  switch (kind) {
    case WeightingKind::kBinary: {
      if (param != 0) {
        throw std::invalid_argument("binary weighting takes no parameter");
      }
      for (int k = nbits - 1; k >= 0; --k) s.weights.push_back(1 << k);
      break;
    }
    case WeightingKind::kUnary: {
      if (param != 0) {
        throw std::invalid_argument("unary weighting takes no parameter");
      }
      s.weights.assign(static_cast<std::size_t>(fs), 1);
      break;
    }
    case WeightingKind::kSegmented: {
      int b = param;
      if (b == 0 && nbits >= 3) b = nbits / 3;
      if (b < 0 || b >= nbits) {
        throw std::invalid_argument(
            "segmented split must be in [0, nbits)");
      }
      s.param = b;
      const int therm = (1 << (nbits - b)) - 1;
      s.weights.assign(static_cast<std::size_t>(therm), 1 << b);
      for (int k = b - 1; k >= 0; --k) s.weights.push_back(1 << k);
      break;
    }
    case WeightingKind::kOptimized: {
      OptimizeOptions opts;
      opts.cells = param;
      return optimize_weighting(nbits, opts);
    }
  }
  return s;
}

WeightingScheme optimize_weighting(int nbits, const OptimizeOptions& opts) {
  check_nbits(nbits);
  const int fs = full_scale_for(nbits);
  int cells = opts.cells;
  if (cells == 0) {
    // Default budget: match the cell count of the default segmented split,
    // so optimized-vs-segmented comparisons are area- and cell-matched.
    const int b = nbits >= 3 ? nbits / 3 : 0;
    cells = ((1 << (nbits - b)) - 1) + b;
  }
  if (cells < nbits || cells > fs) {
    throw std::invalid_argument(
        "optimized weighting: cell budget must be in [nbits, 2^nbits - 1]");
  }
  if (opts.n_samples < 16 || opts.cycles < 1 ||
      opts.cycles >= opts.n_samples / 2) {
    throw std::invalid_argument("optimized weighting: bad reference record");
  }
  arch_instruments().opt_searches.add(1);

  // Start from binary and split the largest cell until the budget is
  // reached.  Splitting w into ceil(w/2)+floor(w/2) preserves completeness
  // (any representation using w can use the two halves instead).
  std::vector<int> w;
  for (int k = nbits - 1; k >= 0; --k) w.push_back(1 << k);
  while (static_cast<int>(w.size()) < cells) {
    auto it = std::max_element(w.begin(), w.end());
    const int big = *it;
    // cells <= fs guarantees a splittable (> 1) cell exists here.
    *it = (big + 1) / 2;
    w.push_back(big / 2);
  }
  std::sort(w.begin(), w.end(), std::greater<int>());

  const std::vector<int> codes =
      reference_sine_codes(nbits, opts.n_samples, opts.cycles);
  double best = activity_of(nbits, w, codes);

  // First-improvement descent: move delta units of weight from cell i to
  // cell j (keeping every weight >= 1 and the multiset complete).  Fully
  // deterministic scan order; terminates because the integer-valued metric
  // strictly decreases on every accepted move.
  const int n = static_cast<int>(w.size());
  for (int round = 0; round < opts.max_rounds; ++round) {
    bool improved = false;
    for (int i = 0; i < n && !improved; ++i) {
      for (int j = 0; j < n && !improved; ++j) {
        if (i == j) continue;
        for (int delta = 1; delta < w[static_cast<std::size_t>(i)];
             delta *= 2) {
          std::vector<int> cand = w;
          cand[static_cast<std::size_t>(i)] -= delta;
          cand[static_cast<std::size_t>(j)] += delta;
          if (!is_complete_sequence(cand)) continue;
          std::sort(cand.begin(), cand.end(), std::greater<int>());
          const double m = activity_of(nbits, cand, codes);
          if (m < best) {
            best = m;
            w = std::move(cand);
            improved = true;
            break;
          }
        }
      }
    }
    if (!improved) break;
  }

  WeightingScheme s;
  s.kind = WeightingKind::kOptimized;
  s.nbits = nbits;
  s.param = cells;
  s.weights = std::move(w);
  return s;
}

CellArray::CellArray(WeightingScheme scheme) : scheme_(std::move(scheme)) {
  check_nbits(scheme_.nbits);
  const int fs = full_scale_for(scheme_.nbits);
  long long sum = 0;
  for (int w : scheme_.weights) sum += w;
  if (sum != fs) {
    throw std::invalid_argument("CellArray: weights must sum to 2^nbits - 1");
  }
  if (!std::is_sorted(scheme_.weights.begin(), scheme_.weights.end(),
                      std::greater<int>())) {
    throw std::invalid_argument("CellArray: weights must be descending");
  }
  if (!is_complete_sequence(scheme_.weights)) {
    throw std::invalid_argument(
        "CellArray: weights are not a complete sequence");
  }
  full_scale_ = fs;
}

void CellArray::encode(int code, std::vector<std::uint8_t>& on) const {
  if (code < 0 || code > full_scale_) {
    throw std::out_of_range("CellArray::encode: code out of range");
  }
  const auto& w = scheme_.weights;
  on.assign(w.size(), 0);
  int rem = code;
  for (std::size_t c = 0; c < w.size(); ++c) {
    if (w[c] <= rem) {
      on[c] = 1;
      rem -= w[c];
    }
  }
  // Complete sequences make greedy exact; anything left over would mean
  // the invariant checked in the constructor was violated.
  if (rem != 0) {
    throw std::logic_error("CellArray::encode: greedy residue (bad weights)");
  }
}

std::vector<std::uint8_t> CellArray::encode(int code) const {
  std::vector<std::uint8_t> on;
  encode(code, on);
  return on;
}

std::vector<std::int64_t> switching_counts(const CellArray& arr,
                                           const std::vector<int>& codes) {
  std::vector<std::int64_t> counts(static_cast<std::size_t>(arr.cells()), 0);
  if (codes.empty()) return counts;
  std::vector<std::uint8_t> prev;
  std::vector<std::uint8_t> cur;
  arr.encode(codes[0], prev);
  for (std::size_t k = 1; k < codes.size(); ++k) {
    arr.encode(codes[k], cur);
    for (std::size_t c = 0; c < cur.size(); ++c) {
      if (cur[c] != prev[c]) ++counts[c];
    }
    std::swap(prev, cur);
  }
  return counts;
}

double switching_activity(const CellArray& arr,
                          const std::vector<int>& codes) {
  const auto counts = switching_counts(arr, codes);
  const auto& w = arr.weights();
  double acc = 0.0;
  for (std::size_t c = 0; c < w.size(); ++c) {
    acc += static_cast<double>(w[c]) * static_cast<double>(w[c]) *
           static_cast<double>(counts[c]);
  }
  return acc;
}

}  // namespace csdac::arch
