#pragma once

// Equivalent-timing-error (ETE) analysis, after Beauchamp–Chugg
// (arXiv 2203.08939): a cell switching at t_e instead of the ideal instant
// removes a rectangular error pulse of amplitude w * v_lsb and width t_e
// from the output.  In-band (f << 1/t_e) that pulse is equivalent to a
// sampled error impulse of area -delta * w * v_lsb * t_e, i.e. a
// per-sample additive error
//
//   e_k = -fs * v_lsb * sum_{c switching at k} delta_c * w_c * t_{e,c}
//
// which turns the expensive oversampled waveform simulation into an
// fs-rate record (ideal sample + e_k) whose spectrum predicts the
// timing-limited SFDR/SNDR.  The same edge_time() as the waveform
// simulator is used, so the two views share effective delays exactly.

#include <vector>

#include "arch/dyn_sim.hpp"
#include "arch/weighting.hpp"
#include "dac/spectrum.hpp"

namespace csdac::arch {

struct EtePrediction {
  std::vector<double> record;  ///< fs-rate predicted samples [V]
  double sfdr_db = 0.0;
  double sndr_db = 0.0;
};

/// Semi-analytic spectral prediction for one timing realization.
EtePrediction ete_predict(const CellArray& arr, const CellTiming& timing,
                          double v_lsb, double fs,
                          const std::vector<int>& codes, int fund_cycles);

/// Closed-form expected timing-limited SNDR over the timing ensemble:
///
///   SNDR = (A^2 / 2) / (fs^2 * sigma_eff^2 * sum_c w_c^2 N_c / n)
///
/// with sigma_eff^2 = sigma_t^2 + asym_sigma^2 / 4 (the ON/OFF halves of
/// the asymmetry enter each edge with weight 1/2) and A the code amplitude
/// in LSB (v_lsb cancels).  Cross terms vanish by cell independence, so
/// the total error power is exact; it ignores the quantization floor, so
/// it matches measurements only where timing noise dominates.  Returns
/// +300 dB when there is no timing error at all.
double ete_expected_sndr_db(const CellArray& arr,
                            const std::vector<int>& codes,
                            const TimingParams& params);

}  // namespace csdac::arch
