// Transistor-level building blocks of the latch & switch array (paper §2,
// Fig. 1): static CMOS inverter, transmission gate, a transparent-high D
// latch (pass gate + cross-coupled keeper), and the reduced-swing switch
// driver placed between the latch and the current switches to limit clock
// feedthrough. Each builder stamps its devices into an existing
// spice::Circuit under a name prefix and returns the handles a testbench
// needs.
#pragma once

#include <string>

#include "spice/circuit.hpp"
#include "spice/devices.hpp"
#include "tech/tech.hpp"

namespace csdac::cells {

struct CellSizes {
  double wn = 1.0e-6;   ///< NMOS width [m]
  double wp = 2.5e-6;   ///< PMOS width [m] (mobility-compensated)
  double l = 0.35e-6;   ///< channel length [m]
  bool with_caps = true;
};

/// Static CMOS inverter between `vdd_node` and `vss_node` (pass ground = 0
/// for a full-rail inverter; other rails give a level-shifted/reduced-swing
/// stage). Returns nothing extra: the output node is the caller's.
void add_inverter(spice::Circuit& ckt, const std::string& prefix,
                  const tech::TechParams& t, int in, int out, int vdd_node,
                  int vss_node, const CellSizes& s = {});

/// CMOS transmission gate between a and b, controlled by en / en_b.
void add_transmission_gate(spice::Circuit& ckt, const std::string& prefix,
                           const tech::TechParams& t, int a, int b, int en,
                           int en_b, const CellSizes& s = {});

/// Transparent-high D latch: while clk is high, q follows d; on the falling
/// edge the cross-coupled keeper holds the state. qb is the complement.
struct LatchNodes {
  int q = 0;
  int qb = 0;
};
LatchNodes add_d_latch(spice::Circuit& ckt, const std::string& prefix,
                       const tech::TechParams& t, int d, int clk, int clk_b,
                       int vdd_node, const CellSizes& s = {});

/// Reduced-swing switch driver (paper §2): an inverter running between the
/// full rail and a raised low rail `vlow_node`, so the switch gate swings
/// [vlow, vdd] instead of [0, vdd] — less clock feedthrough into the
/// output and a controlled crossing point.
void add_switch_driver(spice::Circuit& ckt, const std::string& prefix,
                       const tech::TechParams& t, int in, int out,
                       int vdd_node, int vlow_node, const CellSizes& s = {});

}  // namespace csdac::cells
