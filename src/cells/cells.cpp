#include "cells/cells.hpp"

#include <memory>
#include <stdexcept>

namespace csdac::cells {

using spice::Circuit;
using spice::Mosfet;

namespace {
void check_sizes(const CellSizes& s) {
  if (!(s.wn > 0.0) || !(s.wp > 0.0) || !(s.l > 0.0)) {
    throw std::invalid_argument("cells: bad sizes");
  }
}
}  // namespace

void add_inverter(Circuit& ckt, const std::string& prefix,
                  const tech::TechParams& t, int in, int out, int vdd_node,
                  int vss_node, const CellSizes& s) {
  check_sizes(s);
  ckt.add(std::make_unique<Mosfet>(prefix + ".mp", t.pmos, out, in, vdd_node,
                                   vdd_node, Mosfet::Geometry{s.wp, s.l},
                                   s.with_caps));
  ckt.add(std::make_unique<Mosfet>(prefix + ".mn", t.nmos, out, in, vss_node,
                                   /*bulk=*/0, Mosfet::Geometry{s.wn, s.l},
                                   s.with_caps));
}

void add_transmission_gate(Circuit& ckt, const std::string& prefix,
                           const tech::TechParams& t, int a, int b, int en,
                           int en_b, const CellSizes& s) {
  check_sizes(s);
  ckt.add(std::make_unique<Mosfet>(prefix + ".mn", t.nmos, a, en, b, 0,
                                   Mosfet::Geometry{s.wn, s.l},
                                   s.with_caps));
  // PMOS bulk at the highest rail the caller uses; without a dedicated
  // nwell node we tie it to the a-side's circuit vdd via en_b's driver —
  // the standard approximation here is bulk = source-ish node a.
  ckt.add(std::make_unique<Mosfet>(prefix + ".mp", t.pmos, a, en_b, b, a,
                                   Mosfet::Geometry{s.wp, s.l},
                                   s.with_caps));
}

LatchNodes add_d_latch(Circuit& ckt, const std::string& prefix,
                       const tech::TechParams& t, int d, int clk, int clk_b,
                       int vdd_node, const CellSizes& s) {
  check_sizes(s);
  LatchNodes nodes;
  const int x = ckt.node(prefix + ".x");  // internal storage node
  nodes.q = ckt.node(prefix + ".q");
  nodes.qb = ckt.node(prefix + ".qb");

  // Input pass gate: d -> x while clk high.
  add_transmission_gate(ckt, prefix + ".tg_in", t, d, x, clk, clk_b, s);
  // Forward inverters: x -> qb -> q.
  add_inverter(ckt, prefix + ".inv1", t, x, nodes.qb, vdd_node, 0, s);
  add_inverter(ckt, prefix + ".inv2", t, nodes.qb, nodes.q, vdd_node, 0, s);
  // Keeper: q -> x through a weak feedback gate enabled when clk is LOW.
  CellSizes weak = s;
  weak.wn *= 0.4;
  weak.wp *= 0.4;
  add_transmission_gate(ckt, prefix + ".tg_fb", t, nodes.q, x, clk_b, clk,
                        weak);
  return nodes;
}

void add_switch_driver(Circuit& ckt, const std::string& prefix,
                       const tech::TechParams& t, int in, int out,
                       int vdd_node, int vlow_node, const CellSizes& s) {
  // The reduced swing comes from returning the NMOS source to the raised
  // low rail instead of ground.
  add_inverter(ckt, prefix, t, in, out, vdd_node, vlow_node, s);
}

}  // namespace csdac::cells
