// Transistor-level netlist generation for the complete segmented DAC: every
// unary and binary source is instantiated from the sized unit cell (device
// multipliers carry the weights), switch gates are tied to ON/OFF rails per
// input code, and per-source random mismatch can be injected into the CS
// devices. This is the reproduction's substitute for the paper's
// "simulation at transistor level including matching effects" (Section 3):
// a static transfer function, INL/DNL and output impedance measured on the
// actual MNA netlist rather than the behavioral model.
//
// Practical note: the dense-matrix MNA solver handles the full 12-bit
// converter (259 cells) but each DC solve is O(n^3); full-transfer sweeps
// (2^n codes) are intended for reduced-resolution versions of the SAME
// architecture (e.g. 6 bit), which is how the cross-validation tests use it.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/sizer.hpp"
#include "spice/circuit.hpp"
#include "spice/devices.hpp"
#include "tech/tech.hpp"

namespace csdac::dacgen {

struct DacGenOptions {
  bool differential = true;   ///< load both output rails (else out_n shorted)
  bool with_caps = false;     ///< intrinsic device capacitances
  double sigma_unit = 0.0;    ///< eq. (1)-style unit mismatch; 0 = ideal
  std::uint64_t seed = 1;     ///< mismatch draw seed ("chip id")
  /// Additional per-unary-source relative current errors (e.g. the
  /// systematic gradient errors of a placed array, in switching order from
  /// layout::sequence_errors). Empty = none; otherwise must have
  /// spec.num_unary() entries.
  std::vector<double> unary_systematic;
};

/// A transistor-level chip: rebuilds the netlist per code (the switch gate
/// rails are baked into the topology) and solves the DC operating point.
/// Mismatch draws are made once at construction so all codes see the same
/// chip.
class TransistorLevelDac {
 public:
  TransistorLevelDac(const core::DacSpec& spec, const core::SizedCell& cell,
                     const tech::MosTechParams& tech,
                     const DacGenOptions& opts = {});

  const core::DacSpec& spec() const { return spec_; }

  /// Builds the netlist for a given input code. Exposed for callers that
  /// want to run their own analyses (AC, transient) on the chip.
  struct BuiltCircuit {
    std::unique_ptr<spice::Circuit> circuit;
    int out_p = 0;
    int out_n = 0;
  };
  BuiltCircuit build(int code) const;

  /// Static output level for a code, in LSB units of current (measured as
  /// the voltage drop across the out_p load).
  double level(int code) const;

  /// The full static transfer function (2^n levels). O(2^n) DC solves.
  std::vector<double> transfer() const;

  /// Differential output voltage v(out_p) - v(out_n) for a code [V].
  double v_diff(int code) const;

  /// The per-source relative current errors drawn at construction (unary
  /// then binary), for cross-validation against the behavioral model.
  const std::vector<double>& unary_errors() const { return unary_err_; }
  const std::vector<double>& binary_errors() const { return binary_err_; }

 private:
  core::DacSpec spec_;
  core::SizedCell cell_;
  tech::MosTechParams tech_;
  DacGenOptions opts_;
  std::vector<double> unary_err_;   ///< relative current error per source
  std::vector<double> binary_err_;
};

}  // namespace csdac::dacgen
