#include "dacgen/spice_mc.hpp"

#include <cmath>
#include <memory>
#include <stdexcept>
#include <vector>

#include "dac/static_analysis.hpp"
#include "dacgen/dacgen.hpp"
#include "mathx/parallel.hpp"
#include "mathx/rng.hpp"
#include "obs/metrics.hpp"
#include "spice/devices.hpp"

namespace csdac::dacgen {
namespace {

struct SpiceMcMetrics {
  obs::Counter& mc_runs;
  obs::Gauge& warm_start_hit_rate;

  static SpiceMcMetrics& get() {
    static SpiceMcMetrics m{
        obs::Registry::global().counter(
            "spice.mc_runs", "SPICE-in-the-loop mismatch MC invocations"),
        obs::Registry::global().gauge(
            "spice.warm_start_hit_rate",
            "warm-start hits / warm starts of the last spice MC run"),
    };
    return m;
  }
};

}  // namespace

SpiceMcResult spice_mismatch_mc(const core::DacSpec& spec,
                                const core::SizedCell& cell,
                                const tech::MosTechParams& tech,
                                const SpiceMcOptions& opts) {
  if (opts.chips < 1) throw std::invalid_argument("spice_mc: chips < 1");
  if (!(opts.sigma_scale >= 0.0)) {
    throw std::invalid_argument("spice_mc: sigma_scale < 0");
  }

  DacGenOptions gen;
  gen.differential = opts.differential;
  gen.with_caps = opts.with_caps;
  gen.sigma_unit = 0.0;  // mismatch comes from the per-device draws below
  const TransistorLevelDac dac(spec, cell, tech, gen);

  const int n_codes = 1 << spec.nbits;
  const double v_term = spec.v_out_min + spec.v_swing;

  // Per-code state, built ONCE: the netlist, its solver context (pattern +
  // symbolic factors survive the whole corner sweep) and the warm-start
  // operating point. The per-code device sequences are identical by
  // construction, so one set of per-device draws applies to every code.
  struct CodeState {
    TransistorLevelDac::BuiltCircuit bc;
    spice::SolverContext ctx;
    std::vector<spice::Mosfet*> mosfets;
    std::vector<double> x_prev;
  };
  std::vector<CodeState> codes(static_cast<std::size_t>(n_codes));
  for (int c = 0; c < n_codes; ++c) {
    CodeState& cs = codes[static_cast<std::size_t>(c)];
    cs.bc = dac.build(c);
    for (const auto& dev : cs.bc.circuit->devices()) {
      if (auto* m = dynamic_cast<spice::Mosfet*>(dev.get())) {
        cs.mosfets.push_back(m);
      }
    }
  }
  const std::size_t n_devices = codes[0].mosfets.size();
  // Per-device Pelgrom sigmas from the geometry (same for every code).
  std::vector<double> sigma_vt(n_devices), sigma_beta(n_devices);
  for (std::size_t i = 0; i < n_devices; ++i) {
    const auto& g = codes[0].mosfets[i]->geometry();
    const double area = g.w * g.l * g.m;
    const double root = std::sqrt(area);
    sigma_vt[i] = opts.sigma_scale * tech.a_vt / root;
    sigma_beta[i] = opts.sigma_scale * tech.a_beta / root;
  }

  spice::SolveStats stats;
  SpiceMcResult res;
  std::vector<double> levels(static_cast<std::size_t>(n_codes));
  std::vector<double> dvt(n_devices), bscale(n_devices);

  for (int corner = 0; corner < opts.chips; ++corner) {
    // One chip = one (seed, corner) stream, drawn in device order: dvt
    // then relative beta error per device. Identical draws reach every
    // code's copy of the same physical transistor.
    mathx::Xoshiro256 rng =
        mathx::stream_rng(opts.seed, static_cast<std::uint64_t>(corner));
    for (std::size_t i = 0; i < n_devices; ++i) {
      dvt[i] = sigma_vt[i] * mathx::normal(rng);
      bscale[i] = 1.0 + sigma_beta[i] * mathx::normal(rng);
    }
    for (auto& cs : codes) {
      for (std::size_t i = 0; i < n_devices; ++i) {
        cs.mosfets[i]->set_mismatch(dvt[i], bscale[i]);
      }
    }

    for (int c = 0; c < n_codes; ++c) {
      CodeState& cs = codes[static_cast<std::size_t>(c)];
      spice::NewtonOptions nopts;
      nopts.solver = opts.solver;
      nopts.context = &cs.ctx;
      nopts.stats = &stats;
      if (opts.warm_start && !cs.x_prev.empty()) nopts.x0 = &cs.x_prev;
      const spice::Solution sol = spice::solve_dc(*cs.bc.circuit, nopts);
      cs.x_prev = sol.x;
      const double i_out = (v_term - sol.v(cs.bc.out_p)) / spec.r_load;
      levels[static_cast<std::size_t>(c)] = i_out / spec.i_lsb();
    }

    dac::detail::count_chip_eval();
    const dac::StaticSummary s = dac::analyze_levels_summary(
        levels, dac::InlReference::kBestFit);
    res.chips += 1;
    if (s.inl_max <= opts.limit) res.pass += 1;
    res.inl_mean += s.inl_max;
    if (s.inl_max > res.inl_worst) res.inl_worst = s.inl_max;
  }

  res.yield = static_cast<double>(res.pass) / static_cast<double>(res.chips);
  res.ci95 = mathx::wilson_half_width(res.pass, res.chips);
  res.inl_mean /= static_cast<double>(res.chips);
  res.newton_iters = stats.newton_iters;
  res.factorizations = stats.factorizations;
  res.refactorizations = stats.refactorizations;
  res.warm_starts = stats.warm_starts;
  res.warm_start_hits = stats.warm_start_hits;
  res.device_evals = stats.device_evals;
  res.warm_start_hit_rate =
      stats.warm_starts > 0 ? static_cast<double>(stats.warm_start_hits) /
                                  static_cast<double>(stats.warm_starts)
                            : 0.0;

  SpiceMcMetrics& m = SpiceMcMetrics::get();
  m.mc_runs.add(1);
  m.warm_start_hit_rate.set(res.warm_start_hit_rate);
  return res;
}

}  // namespace csdac::dacgen
