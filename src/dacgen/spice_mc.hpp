// SPICE-in-the-loop mismatch Monte Carlo: the netlist-level counterpart of
// dac::inl_yield_mc. Each corner perturbs every MOSFET of the
// transistor-level DAC with per-device threshold and gain errors drawn
// from the Pelgrom model on a deterministic (seed, corner) stream, sweeps
// the full static transfer through MNA DC solves, and judges max|INL|
// against the pass limit.
//
// This is the workload the sparse engine was built for: the per-code
// netlists are constructed once, each keeps a spice::SolverContext so the
// symbolic factorization from corner 0 is replayed numerically at every
// later corner, and each code's Newton solve warm-starts from the same
// code's operating point at the previous corner.
#pragma once

#include <cstdint>

#include "core/sizer.hpp"
#include "core/spec.hpp"
#include "spice/solver.hpp"
#include "tech/tech.hpp"

namespace csdac::dacgen {

struct SpiceMcOptions {
  int chips = 16;            ///< Monte-Carlo corners (chips)
  std::uint64_t seed = 1;    ///< (seed, corner) stream base
  double limit = 0.5;        ///< max|INL| pass limit [LSB]
  double sigma_scale = 1.0;  ///< scales the Pelgrom sigmas (stress knob)
  bool differential = true;
  bool with_caps = false;
  /// Solver knobs for the benches; the runtime job keeps the defaults so
  /// cached results stay reproducible.
  spice::LinearSolverKind solver = spice::LinearSolverKind::kAuto;
  bool warm_start = true;
};

struct SpiceMcResult {
  std::int64_t chips = 0;  ///< corners actually evaluated
  std::int64_t pass = 0;
  double yield = 0.0;
  double ci95 = 0.0;          ///< Wilson 95 % half-width
  double inl_mean = 0.0;      ///< mean over corners of max|INL| [LSB]
  double inl_worst = 0.0;     ///< worst corner's max|INL| [LSB]
  // Solver-side accounting (also mirrored into the spice.* metrics).
  std::int64_t newton_iters = 0;
  std::int64_t factorizations = 0;
  std::int64_t refactorizations = 0;
  std::int64_t warm_starts = 0;
  std::int64_t warm_start_hits = 0;
  std::int64_t device_evals = 0;
  double warm_start_hit_rate = 0.0;  ///< hits / starts (0 when no starts)
};

/// Runs the netlist-level mismatch MC for a sized cell. Deterministic for
/// fixed inputs (serial corner loop, (seed, corner) device streams), so
/// the result is cacheable by the runtime layer.
SpiceMcResult spice_mismatch_mc(const core::DacSpec& spec,
                                const core::SizedCell& cell,
                                const tech::MosTechParams& tech,
                                const SpiceMcOptions& opts = {});

}  // namespace csdac::dacgen
