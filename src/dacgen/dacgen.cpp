#include "dacgen/dacgen.hpp"

#include <cmath>
#include <string>

#include "mathx/rng.hpp"
#include "spice/solver.hpp"

namespace csdac::dacgen {

using spice::Capacitor;
using spice::Circuit;
using spice::Mosfet;
using spice::Resistor;
using spice::VoltageSource;

TransistorLevelDac::TransistorLevelDac(const core::DacSpec& spec,
                                       const core::SizedCell& cell,
                                       const tech::MosTechParams& tech,
                                       const DacGenOptions& opts)
    : spec_(spec), cell_(cell), tech_(tech), opts_(opts) {
  spec_.validate();
  if (!(opts_.sigma_unit >= 0.0)) {
    throw std::invalid_argument("TransistorLevelDac: sigma < 0");
  }
  if (!opts_.unary_systematic.empty() &&
      opts_.unary_systematic.size() !=
          static_cast<std::size_t>(spec_.num_unary())) {
    throw std::invalid_argument(
        "TransistorLevelDac: unary_systematic size mismatch");
  }
  mathx::Xoshiro256 rng(opts_.seed);
  // A source of weight w averages w unit draws: relative sigma scales as
  // sigma_unit / sqrt(w).
  const double uw = spec_.unary_weight();
  for (int i = 0; i < spec_.num_unary(); ++i) {
    double e = opts_.sigma_unit / std::sqrt(uw) * mathx::normal(rng);
    if (!opts_.unary_systematic.empty()) {
      e += opts_.unary_systematic[static_cast<std::size_t>(i)];
    }
    unary_err_.push_back(e);
  }
  for (int k = 0; k < spec_.binary_bits; ++k) {
    const double w = std::ldexp(1.0, k);
    binary_err_.push_back(opts_.sigma_unit / std::sqrt(w) *
                          mathx::normal(rng));
  }
}

TransistorLevelDac::BuiltCircuit TransistorLevelDac::build(int code) const {
  if (code < 0 || code >= (1 << spec_.nbits)) {
    throw std::out_of_range("TransistorLevelDac::build: code");
  }
  BuiltCircuit bc;
  bc.circuit = std::make_unique<Circuit>();
  Circuit& ckt = *bc.circuit;

  const double v_term = spec_.v_out_min + spec_.v_swing;
  bc.out_p = ckt.node("out_p");
  bc.out_n = ckt.node("out_n");
  const int vterm = ckt.node("vterm");
  ckt.add(std::make_unique<VoltageSource>("vterm", vterm, 0, v_term));
  ckt.add(std::make_unique<Resistor>("rlp", vterm, bc.out_p, spec_.r_load));
  if (opts_.differential) {
    ckt.add(
        std::make_unique<Resistor>("rln", vterm, bc.out_n, spec_.r_load));
  } else {
    ckt.add(std::make_unique<VoltageSource>("vshort", bc.out_n, 0, v_term));
  }

  // Shared bias and switch-drive rails.
  const int gcs = ckt.node("gcs");
  const int g_on = ckt.node("g_on");
  const int g_off = ckt.node("g_off");
  ckt.add(std::make_unique<VoltageSource>("vgcs", gcs, 0, cell_.cell.vg_cs));
  ckt.add(std::make_unique<VoltageSource>("vg_on", g_on, 0, cell_.cell.vg_sw));
  ckt.add(std::make_unique<VoltageSource>("vg_off", g_off, 0, 0.0));
  const bool cascode = cell_.cell.topology == core::CellTopology::kCsSwCas;
  int gcas = 0;
  if (cascode) {
    gcas = ckt.node("gcas");
    ckt.add(
        std::make_unique<VoltageSource>("vgcas", gcas, 0, cell_.cell.vg_cas));
  }

  // One cell per source: multiplier carries the weight; the complementary
  // switches steer to out_p (on) / out_n (off).
  auto add_cell = [&](const std::string& tag, double weight, bool on,
                      double current_err) {
    const int top = ckt.node("top_" + tag);  // switch-source node
    Mosfet* mcs = nullptr;
    if (cascode) {
      const int mid = ckt.node("mid_" + tag);
      mcs = ckt.add(std::make_unique<Mosfet>(
          "mcs_" + tag, tech_, mid, gcs, 0, 0,
          Mosfet::Geometry{cell_.cell.cs.w, cell_.cell.cs.l, weight},
          opts_.with_caps));
      ckt.add(std::make_unique<Mosfet>(
          "mcas_" + tag, tech_, top, gcas, mid, 0,
          Mosfet::Geometry{cell_.cell.cas.w, cell_.cell.cas.l, weight},
          opts_.with_caps));
    } else {
      mcs = ckt.add(std::make_unique<Mosfet>(
          "mcs_" + tag, tech_, top, gcs, 0, 0,
          Mosfet::Geometry{cell_.cell.cs.w, cell_.cell.cs.l, weight},
          opts_.with_caps));
    }
    if (current_err != 0.0) {
      // Relative current error injected through the gain factor
      // (I ~ beta for fixed overdrive).
      mcs->set_mismatch(0.0, 1.0 + current_err);
    }
    ckt.add(std::make_unique<Mosfet>(
        "mswp_" + tag, tech_, bc.out_p, on ? g_on : g_off, top, 0,
        Mosfet::Geometry{cell_.cell.sw.w, cell_.cell.sw.l, weight},
        opts_.with_caps));
    ckt.add(std::make_unique<Mosfet>(
        "mswn_" + tag, tech_, bc.out_n, on ? g_off : g_on, top, 0,
        Mosfet::Geometry{cell_.cell.sw.w, cell_.cell.sw.l, weight},
        opts_.with_caps));
  };

  const int unary_on = code >> spec_.binary_bits;
  for (int i = 0; i < spec_.num_unary(); ++i) {
    add_cell("u" + std::to_string(i), spec_.unary_weight(), i < unary_on,
             unary_err_[static_cast<std::size_t>(i)]);
  }
  const int bits = code & ((1 << spec_.binary_bits) - 1);
  for (int k = 0; k < spec_.binary_bits; ++k) {
    add_cell("b" + std::to_string(k), std::ldexp(1.0, k),
             ((bits >> k) & 1) != 0,
             binary_err_[static_cast<std::size_t>(k)]);
  }
  return bc;
}

double TransistorLevelDac::level(int code) const {
  BuiltCircuit bc = build(code);
  const spice::Solution sol = spice::solve_dc(*bc.circuit);
  const double v_term = spec_.v_out_min + spec_.v_swing;
  const double i_out = (v_term - sol.v(bc.out_p)) / spec_.r_load;
  return i_out / spec_.i_lsb();
}

std::vector<double> TransistorLevelDac::transfer() const {
  const int n_codes = 1 << spec_.nbits;
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(n_codes));
  for (int c = 0; c < n_codes; ++c) out.push_back(level(c));
  return out;
}

double TransistorLevelDac::v_diff(int code) const {
  BuiltCircuit bc = build(code);
  const spice::Solution sol = spice::solve_dc(*bc.circuit);
  return sol.v(bc.out_p) - sol.v(bc.out_n);
}

}  // namespace csdac::dacgen
