// Technology description: a generic 0.35 um CMOS parameter set standing in
// for the (proprietary) foundry PDK the paper used. All values are in SI
// units and are representative of published 0.35 um processes; only the
// numeric design point depends on them, not the methodology.
#pragma once

#include <string>

namespace csdac::tech {

enum class MosType { kNmos, kPmos };

/// Level-1 (square-law) MOS model card plus Pelgrom matching data.
/// The paper explicitly works with the square-law model because foundry
/// matching parameters (A_VT, A_beta) are characterized for it.
struct MosTechParams {
  MosType type = MosType::kNmos;
  double kp = 0.0;        ///< process gain factor K' = mu*Cox [A/V^2]
  double vt0 = 0.0;       ///< zero-bias threshold, magnitude [V]
  double lambda_l = 0.0;  ///< channel-length modulation, lambda*L [m/V]
  double gamma = 0.0;     ///< body-effect coefficient [sqrt(V)]
  double phi_2f = 0.0;    ///< surface potential 2*phi_F [V]
  double cox = 0.0;       ///< gate oxide capacitance per area [F/m^2]
  double cgso = 0.0;      ///< gate-source overlap cap per width [F/m]
  double cgdo = 0.0;      ///< gate-drain overlap cap per width [F/m]
  double cj = 0.0;        ///< junction bottom cap per area [F/m^2]
  double cjsw = 0.0;      ///< junction sidewall cap per perimeter [F/m]
  double l_diff = 0.0;    ///< source/drain diffusion extent [m]
  double a_vt = 0.0;      ///< Pelgrom threshold matching A_VT [V*m]
  double a_beta = 0.0;    ///< Pelgrom gain matching A_beta [m] (relative)
  double l_min = 0.0;     ///< minimum channel length [m]
  double w_min = 0.0;     ///< minimum channel width [m]

  /// lambda for a device of channel length l: lambda = lambda_l / l [1/V].
  double lambda(double l) const { return l > 0.0 ? lambda_l / l : 0.0; }
};

/// Full process description.
struct TechParams {
  std::string name;
  double vdd = 0.0;  ///< nominal supply [V]
  MosTechParams nmos;
  MosTechParams pmos;
};

/// Representative generic 0.35 um, 3.3 V CMOS process (the paper's node).
TechParams generic_035um();

/// Representative generic 0.25 um, 2.5 V CMOS process — used to show the
/// methodology ports across nodes (Section 5: "the same methodology can be
/// applied ... provided the process matching parameters are available").
TechParams generic_025um();

/// Global process corners: slow/fast shift the gain factor and threshold of
/// every device together (deterministic, unlike the per-device Pelgrom
/// mismatch). The statistical saturation condition covers the random part;
/// corners are handled by bias generators that track VT/beta, which is why
/// the sizing is re-evaluated AT the corner rather than margined for it.
enum class Corner { kTypical, kSlow, kFast };

/// Derives the corner variant of a device model: kSlow = -10 % K', +60 mV
/// |VT|; kFast = +10 % K', -60 mV |VT|.
MosTechParams at_corner(const MosTechParams& t, Corner c);

/// Corner variant of a full process description.
TechParams at_corner(const TechParams& t, Corner c);

/// Gate-source capacitance in saturation: (2/3)*W*L*Cox + W*CGSO.
double cgs_sat(const MosTechParams& t, double w, double l);

/// Gate-drain capacitance in saturation (overlap only): W*CGDO.
double cgd_sat(const MosTechParams& t, double w);

/// Drain(BD)/source(SB) junction capacitance at zero bias for a rectangular
/// diffusion of width W and extent l_diff.
double cj_diffusion(const MosTechParams& t, double w);

}  // namespace csdac::tech
