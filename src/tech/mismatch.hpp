// Pelgrom random-mismatch model. Convention (as used throughout the DAC
// sizing literature, e.g. Van den Bosch et al. [10,11]): the standard
// deviation of a *single* device parameter around its nominal value is
//   sigma(dVT)      = A_VT   / sqrt(W*L)
//   sigma(dBeta/B)  = A_beta / sqrt(W*L)
// and a saturated square-law current source obeys
//   (sigma_I/I)^2 = A_beta^2/(W*L) + 4*A_VT^2/(V_OD^2 * W*L).   (basis of eq. 2)
#pragma once

#include "mathx/rng.hpp"
#include "tech/tech.hpp"

namespace csdac::tech {

/// sigma of the threshold-voltage deviation of a W x L device [V].
double sigma_vt(const MosTechParams& t, double w, double l);

/// sigma of the relative gain-factor deviation (dimensionless).
double sigma_beta_rel(const MosTechParams& t, double w, double l);

/// sigma of the relative drain-current deviation of a saturated square-law
/// current source biased at overdrive `vod` (dimensionless).
double sigma_id_rel(const MosTechParams& t, double w, double l, double vod);

/// Minimum gate area W*L [m^2] for a current source to achieve a relative
/// current accuracy `sigma_i_rel` at overdrive `vod` (inverse of
/// sigma_id_rel; the area half of eq. 2).
double min_gate_area(const MosTechParams& t, double vod, double sigma_i_rel);

/// One Monte-Carlo realization of the (dVT, dBeta/B) pair for a device.
struct MismatchDraw {
  double d_vt = 0.0;        ///< threshold shift [V]
  double d_beta_rel = 0.0;  ///< relative gain deviation
};

MismatchDraw draw_mismatch(const MosTechParams& t, double w, double l,
                           csdac::mathx::Xoshiro256& rng);

/// Relative current error of a square-law source given a mismatch draw,
/// linearized: dI/I = dBeta/B - 2*dVT/V_OD.
double current_error_rel(const MismatchDraw& d, double vod);

}  // namespace csdac::tech
