// SI unit multipliers. The whole library works in base SI units (V, A, m,
// F, s, Hz, Ohm); these constants keep call sites readable:
//   double w = 4.2 * units::um;
#pragma once

namespace csdac::units {

inline constexpr double G = 1e9;
inline constexpr double M = 1e6;
inline constexpr double k = 1e3;
inline constexpr double m = 1e-3;
inline constexpr double u = 1e-6;
inline constexpr double n = 1e-9;
inline constexpr double p = 1e-12;
inline constexpr double f = 1e-15;

inline constexpr double um = 1e-6;   // micrometre
inline constexpr double nm = 1e-9;   // nanometre
inline constexpr double mV = 1e-3;   // millivolt
inline constexpr double uA = 1e-6;   // microampere
inline constexpr double mA = 1e-3;   // milliampere
inline constexpr double fF = 1e-15;  // femtofarad
inline constexpr double pF = 1e-12;  // picofarad
inline constexpr double ns = 1e-9;   // nanosecond
inline constexpr double ps = 1e-12;  // picosecond
inline constexpr double MHz = 1e6;
inline constexpr double GHz = 1e9;

}  // namespace csdac::units
