#include "tech/tech.hpp"

#include "tech/units.hpp"

namespace csdac::tech {

using namespace csdac::units;

TechParams generic_035um() {
  TechParams t;
  t.name = "generic-0.35um-3.3V";
  t.vdd = 3.3;

  t.nmos.type = MosType::kNmos;
  t.nmos.kp = 170e-6;          // A/V^2
  t.nmos.vt0 = 0.50;           // V
  t.nmos.lambda_l = 0.02 * um; // lambda = 0.057 1/V at L = 0.35 um
  t.nmos.gamma = 0.58;         // sqrt(V)
  t.nmos.phi_2f = 0.84;        // V
  t.nmos.cox = 4.54e-3;        // F/m^2 (tox ~ 7.6 nm)
  t.nmos.cgso = 0.30e-9;       // F/m  (0.30 fF/um)
  t.nmos.cgdo = 0.30e-9;       // F/m
  t.nmos.cj = 0.90e-3;         // F/m^2 (0.90 fF/um^2)
  t.nmos.cjsw = 0.28e-9;       // F/m  (0.28 fF/um)
  t.nmos.l_diff = 0.85 * um;
  t.nmos.a_vt = 9.5e-9;        // V*m  (9.5 mV*um)
  t.nmos.a_beta = 0.019e-6;    // m    (1.9 %*um)
  t.nmos.l_min = 0.35 * um;
  t.nmos.w_min = 0.50 * um;

  t.pmos = t.nmos;
  t.pmos.type = MosType::kPmos;
  t.pmos.kp = 58e-6;
  t.pmos.vt0 = 0.65;           // magnitude
  t.pmos.lambda_l = 0.03 * um;
  t.pmos.gamma = 0.40;
  t.pmos.phi_2f = 0.80;
  t.pmos.a_vt = 14.0e-9;       // 14 mV*um
  t.pmos.a_beta = 0.023e-6;    // 2.3 %*um
  return t;
}

TechParams generic_025um() {
  TechParams t = generic_035um();
  t.name = "generic-0.25um-2.5V";
  t.vdd = 2.5;

  t.nmos.kp = 285e-6;          // thinner oxide: higher gain factor
  t.nmos.vt0 = 0.43;
  t.nmos.lambda_l = 0.025 * um;
  t.nmos.cox = 6.0e-3;         // F/m^2 (tox ~ 5.8 nm)
  t.nmos.cgso = 0.35e-9;
  t.nmos.cgdo = 0.35e-9;
  t.nmos.a_vt = 6.0e-9;        // matching improves with oxide scaling
  t.nmos.a_beta = 0.016e-6;
  t.nmos.l_min = 0.25 * um;
  t.nmos.w_min = 0.36 * um;
  t.nmos.l_diff = 0.65 * um;

  t.pmos = t.nmos;
  t.pmos.type = MosType::kPmos;
  t.pmos.kp = 95e-6;
  t.pmos.vt0 = 0.55;
  t.pmos.lambda_l = 0.035 * um;
  t.pmos.gamma = 0.45;
  t.pmos.a_vt = 9.0e-9;
  t.pmos.a_beta = 0.020e-6;
  return t;
}

MosTechParams at_corner(const MosTechParams& t, Corner c) {
  MosTechParams out = t;
  switch (c) {
    case Corner::kTypical:
      break;
    case Corner::kSlow:
      out.kp *= 0.9;
      out.vt0 += 0.06;
      break;
    case Corner::kFast:
      out.kp *= 1.1;
      out.vt0 -= 0.06;
      break;
  }
  return out;
}

TechParams at_corner(const TechParams& t, Corner c) {
  TechParams out = t;
  out.nmos = at_corner(t.nmos, c);
  out.pmos = at_corner(t.pmos, c);
  return out;
}

double cgs_sat(const MosTechParams& t, double w, double l) {
  return (2.0 / 3.0) * w * l * t.cox + w * t.cgso;
}

double cgd_sat(const MosTechParams& t, double w) { return w * t.cgdo; }

double cj_diffusion(const MosTechParams& t, double w) {
  const double area = w * t.l_diff;
  const double perim = 2.0 * t.l_diff + w;
  return area * t.cj + perim * t.cjsw;
}

}  // namespace csdac::tech
