#include "tech/mismatch.hpp"

#include <cmath>
#include <stdexcept>

namespace csdac::tech {

namespace {
void check_geometry(double w, double l) {
  if (!(w > 0.0) || !(l > 0.0)) {
    throw std::invalid_argument("mismatch: W and L must be positive");
  }
}
}  // namespace

double sigma_vt(const MosTechParams& t, double w, double l) {
  check_geometry(w, l);
  return t.a_vt / std::sqrt(w * l);
}

double sigma_beta_rel(const MosTechParams& t, double w, double l) {
  check_geometry(w, l);
  return t.a_beta / std::sqrt(w * l);
}

double sigma_id_rel(const MosTechParams& t, double w, double l, double vod) {
  check_geometry(w, l);
  if (!(vod > 0.0)) throw std::invalid_argument("mismatch: vod must be > 0");
  const double inv_wl = 1.0 / (w * l);
  const double var = t.a_beta * t.a_beta * inv_wl +
                     4.0 * t.a_vt * t.a_vt / (vod * vod) * inv_wl;
  return std::sqrt(var);
}

double min_gate_area(const MosTechParams& t, double vod, double sigma_i_rel) {
  if (!(vod > 0.0) || !(sigma_i_rel > 0.0)) {
    throw std::invalid_argument("min_gate_area: vod and sigma must be > 0");
  }
  return (t.a_beta * t.a_beta + 4.0 * t.a_vt * t.a_vt / (vod * vod)) /
         (sigma_i_rel * sigma_i_rel);
}

MismatchDraw draw_mismatch(const MosTechParams& t, double w, double l,
                           csdac::mathx::Xoshiro256& rng) {
  MismatchDraw d;
  d.d_vt = csdac::mathx::normal(rng, 0.0, sigma_vt(t, w, l));
  d.d_beta_rel = csdac::mathx::normal(rng, 0.0, sigma_beta_rel(t, w, l));
  return d;
}

double current_error_rel(const MismatchDraw& d, double vod) {
  return d.d_beta_rel - 2.0 * d.d_vt / vod;
}

}  // namespace csdac::tech
