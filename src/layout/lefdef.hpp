// Minimal LEF/DEF generation (Section 4): the paper drives commercial P&R
// tools with a generated LEF macro library and a DEF netlist whose
// COMPONENTS section encodes the optimized switching-scheme placement.
// This is a pragmatic subset of the Cadence LEF/DEF 5.x syntax [13]: MACRO
// / SIZE / PIN / RECT on the LEF side; DESIGN / UNITS / DIEAREA /
// COMPONENTS / NETS on the DEF side, plus a tolerant parser sufficient to
// round-trip what the writer emits.
#pragma once

#include <string>
#include <vector>

namespace csdac::layout {

struct LefPin {
  std::string name;
  std::string direction = "INPUT";  ///< INPUT, OUTPUT, INOUT
  std::string layer = "METAL1";
  double x0 = 0, y0 = 0, x1 = 0, y1 = 0;  ///< pin rectangle [um]
};

struct LefMacro {
  std::string name;
  double width = 0.0;   ///< [um]
  double height = 0.0;  ///< [um]
  std::vector<LefPin> pins;
};

/// Serializes a LEF library (header + macros).
std::string write_lef(const std::vector<LefMacro>& macros);

struct DefComponent {
  std::string name;
  std::string macro;
  long long x = 0;  ///< placement in DBU
  long long y = 0;
  std::string orient = "N";
};

struct DefConnection {
  std::string component;  ///< "PIN" refers to a top-level pin
  std::string pin;
};

struct DefNet {
  std::string name;
  std::vector<DefConnection> connections;
};

struct DefDesign {
  std::string name;
  int dbu_per_micron = 1000;
  long long die_x0 = 0, die_y0 = 0, die_x1 = 0, die_y1 = 0;
  std::vector<DefComponent> components;
  std::vector<DefNet> nets;
};

/// Serializes a DEF file.
std::string write_def(const DefDesign& design);

/// Parses the subset emitted by write_def (DESIGN, UNITS, DIEAREA,
/// COMPONENTS with FIXED/PLACED locations, NETS). Throws
/// std::invalid_argument on malformed input.
DefDesign parse_def(const std::string& text);

}  // namespace csdac::layout
