// Full-converter floorplan generation (Fig. 5): decoder block on top, the
// latch & switch array below it (binary latches in the middle columns), and
// the current-source array at the bottom with the binary sources in four
// dedicated center columns. The unary placement follows a switching
// sequence; everything is emitted as LEF macros + a DEF netlist, the same
// artefacts the paper feeds to commercial P&R (Fig. 6).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/spec.hpp"
#include "layout/array.hpp"
#include "layout/lefdef.hpp"
#include "layout/switching.hpp"

namespace csdac::layout {

struct FloorplanOptions {
  double cs_cell_w_um = 12.0;     ///< current-source cell width [um]
  double cs_cell_h_um = 12.0;
  double latch_cell_w_um = 12.0;  ///< latch & switch cell width [um]
  double latch_cell_h_um = 8.0;
  double decoder_h_um = 60.0;     ///< decoder block height [um]
  double region_gap_um = 10.0;    ///< separation between the regions
  int dbu_per_micron = 1000;
  SwitchingScheme scheme = SwitchingScheme::kHierarchical;
  std::uint64_t seed = 1;
};

struct Floorplan {
  std::vector<LefMacro> macros;
  DefDesign def;
  ArrayGeometry cs_array;            ///< geometry of the CS array region
  std::vector<int> unary_sequence;   ///< switching order used
  std::vector<int> binary_columns;   ///< center columns holding binary cells
};

/// Builds the Fig. 5 floorplan for a converter spec. The CS array is the
/// smallest near-square grid that holds the unary sources plus the four
/// dedicated binary columns.
Floorplan build_floorplan(const core::DacSpec& spec,
                          const FloorplanOptions& opts = {});

/// Serialized artefacts.
std::string floorplan_lef(const Floorplan& fp);
std::string floorplan_def(const Floorplan& fp);

}  // namespace csdac::layout
