// Deterministic (systematic) process-gradient error models of Section 4:
// slow first- and second-order variations of the unit current across the
// die. Amplitudes are relative current errors at the normalized array edge.
#pragma once

#include <vector>

#include "layout/array.hpp"

namespace csdac::layout {

struct GradientSpec {
  double lin_x = 0.0;  ///< relative error at x = +1 from the x-gradient
  double lin_y = 0.0;  ///< relative error at y = +1 from the y-gradient
  double quad = 0.0;   ///< relative error at the corners from the bowl term

  /// Relative unit-current error at normalized position (x, y):
  ///   e = lin_x*x + lin_y*y + quad*((x^2 + y^2)/2 - 1/3)
  /// The quadratic term is centred so its array average is ~0 (a pure
  /// gain error does not affect linearity).
  double error_at(double x, double y) const {
    return lin_x * x + lin_y * y +
           quad * (0.5 * (x * x + y * y) - 1.0 / 3.0);
  }
};

/// A standard benchmark set: pure x, pure y, diagonal, bowl, and mixed,
/// all with `amplitude` relative error at the edge.
std::vector<GradientSpec> standard_gradients(double amplitude);

/// Per-cell relative error map for the whole array.
std::vector<double> gradient_map(const ArrayGeometry& geo,
                                 const GradientSpec& g);

}  // namespace csdac::layout
