// Current-source array geometry (Section 4): a rows x cols grid of unit
// cells. Positions are exposed both as integer grid coordinates and as
// normalized coordinates in [-1, 1] (used by the gradient models).
#pragma once

#include <stdexcept>

namespace csdac::layout {

struct Point {
  double x = 0.0;
  double y = 0.0;
};

struct ArrayGeometry {
  int rows = 16;
  int cols = 16;
  double pitch_x = 10e-6;  ///< cell pitch [m]
  double pitch_y = 10e-6;

  int cells() const { return rows * cols; }

  void validate() const {
    if (rows < 1 || cols < 1 || !(pitch_x > 0) || !(pitch_y > 0)) {
      throw std::invalid_argument("ArrayGeometry: bad values");
    }
  }

  int row_of(int idx) const { return idx / cols; }
  int col_of(int idx) const { return idx % cols; }
  int index_of(int row, int col) const { return row * cols + col; }

  /// Cell center in normalized coordinates ([-1, 1] at the array edge).
  Point normalized(int idx) const {
    if (idx < 0 || idx >= cells()) {
      throw std::out_of_range("ArrayGeometry::normalized: bad index");
    }
    Point p;
    p.x = cols > 1
              ? 2.0 * col_of(idx) / static_cast<double>(cols - 1) - 1.0
              : 0.0;
    p.y = rows > 1
              ? 2.0 * row_of(idx) / static_cast<double>(rows - 1) - 1.0
              : 0.0;
    return p;
  }

  /// Cell origin in physical coordinates [m].
  Point physical(int idx) const {
    if (idx < 0 || idx >= cells()) {
      throw std::out_of_range("ArrayGeometry::physical: bad index");
    }
    return {col_of(idx) * pitch_x, row_of(idx) * pitch_y};
  }
};

}  // namespace csdac::layout
