#include "layout/gradient.hpp"

namespace csdac::layout {

std::vector<GradientSpec> standard_gradients(double amplitude) {
  return {
      GradientSpec{amplitude, 0.0, 0.0},                   // pure x
      GradientSpec{0.0, amplitude, 0.0},                   // pure y
      GradientSpec{amplitude * 0.7071, amplitude * 0.7071, 0.0},  // diagonal
      GradientSpec{0.0, 0.0, amplitude},                   // bowl
      GradientSpec{amplitude * 0.5, amplitude * 0.3, amplitude * 0.5},
  };
}

std::vector<double> gradient_map(const ArrayGeometry& geo,
                                 const GradientSpec& g) {
  geo.validate();
  std::vector<double> out(static_cast<std::size_t>(geo.cells()));
  for (int i = 0; i < geo.cells(); ++i) {
    const Point p = geo.normalized(i);
    out[static_cast<std::size_t>(i)] = g.error_at(p.x, p.y);
  }
  return out;
}

}  // namespace csdac::layout
