// Switching-sequence generation and evaluation for the unary current-source
// array (Section 4, after Cong & Geiger [3] and Van der Plas et al. [12]):
// the order in which the thermometer code turns sources on determines how
// systematic gradient errors accumulate into INL. Includes the annealed
// "optimal 2-D switching scheme" the paper uses, plus the classic
// heuristics as baselines, and the 4-quadrant double-centroid sub-unit
// placement that cancels linear gradients within each source.
#pragma once

#include <cstdint>
#include <vector>

#include "layout/array.hpp"
#include "layout/gradient.hpp"
#include "mathx/parallel.hpp"

namespace csdac::layout {

enum class SwitchingScheme {
  kRowMajor,          ///< naive raster order (worst case for gradients)
  kBoustrophedon,     ///< serpentine raster
  kSymmetric,         ///< center-out, alternating mirrored pairs
  kHierarchical,      ///< 2-D bit-reversal spread (van der Corput order)
  kRandom,            ///< seeded random permutation (random-walk baseline)
  kCentroidBalanced,  ///< greedy randomized walk keeping the switched-set
                      ///< centroid at the array center (Q2-random-walk
                      ///< style, after Van der Plas et al. [12])
  kOptimized          ///< simulated-annealing optimized (Cong-Geiger style)
};

/// Produces the cell index switched at each thermometer step:
/// sequence[k] = array cell of the (k+1)-th unary source. Only the first
/// `n_sources` cells of the array are used (the rest are dummies/binary).
/// `seed` feeds kRandom and kOptimized.
std::vector<int> make_sequence(SwitchingScheme scheme,
                               const ArrayGeometry& geo, int n_sources,
                               std::uint64_t seed = 1);

/// Relative current error of each source in SWITCHING order under a
/// gradient. With `double_centroid` every source is modelled as four
/// mirrored sub-groups (the paper's 16-sub-unit common-centroid split),
/// which cancels the linear gradient terms exactly.
std::vector<double> sequence_errors(const ArrayGeometry& geo,
                                    const std::vector<int>& sequence,
                                    const GradientSpec& gradient,
                                    bool double_centroid = false);

/// Systematic INL/DNL of the unary thermometer ramp built from per-source
/// relative errors (in switching order). `weight_lsb` converts relative
/// source error to LSB (16 for the paper's 12-bit, b = 4 design).
/// INL uses the endpoint reference (gain error removed).
struct SystematicLinearity {
  std::vector<double> inl;  ///< INL after each thermometer step [LSB]
  double inl_max = 0.0;
  double dnl_max = 0.0;
};
SystematicLinearity systematic_linearity(const std::vector<double>& rel_errors,
                                         double weight_lsb);

/// Worst-case |INL| of a sequence over a set of gradients.
double sequence_cost(const ArrayGeometry& geo, const std::vector<int>& seq,
                     const std::vector<GradientSpec>& gradients,
                     double weight_lsb, bool double_centroid = false);

/// EXACT worst-case |INL| under a linear gradient of edge amplitude
/// `amplitude` whose ORIENTATION is adversarial (swept over all angles).
/// For a unit source at normalized position p, a gradient in direction
/// theta contributes amplitude*(cos(theta)*x + sin(theta)*y); with
/// endpoint-corrected prefix-sum vectors D_k the worst INL over k and theta
/// is amplitude * weight_lsb * max_k |D_k|_2 — no angle sweep needed.
/// This is the rotation-invariant figure of merit a robust switching
/// scheme minimizes.
double worst_linear_inl(const ArrayGeometry& geo, const std::vector<int>& seq,
                        double amplitude, double weight_lsb);

struct AnnealOptions {
  int iterations = 20000;
  double t_start = 0.5;   ///< initial temperature [LSB]
  double t_end = 1e-3;
  std::uint64_t seed = 1;
  /// Independent annealing runs; the best final cost wins (ties go to the
  /// lowest restart index, so the result is deterministic). Restart 0 uses
  /// the legacy RNG stream Xoshiro256(seed); restart r > 0 draws from
  /// mathx::stream_rng(seed, r).
  int restarts = 1;
  /// Restarts run in parallel on the shared engine; 0 = hardware
  /// concurrency. The winner is thread-count independent.
  int threads = 1;
};

/// Simulated-annealing sequence optimization: minimizes the worst-case
/// |INL| over `gradients` by swapping switching positions. With
/// opts.restarts > 1 the independent restarts run in parallel and the
/// best-cost sequence is returned; `stats` (optional) receives the engine
/// run record.
std::vector<int> optimize_sequence(const ArrayGeometry& geo, int n_sources,
                                   const std::vector<GradientSpec>& gradients,
                                   double weight_lsb,
                                   const AnnealOptions& opts = {},
                                   mathx::RunStats* stats = nullptr);

}  // namespace csdac::layout
