#include "layout/switching.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "mathx/rng.hpp"

namespace csdac::layout {
namespace {

void check_args(const ArrayGeometry& geo, int n_sources) {
  geo.validate();
  if (n_sources < 1 || n_sources > geo.cells()) {
    throw std::invalid_argument("switching: bad n_sources");
  }
}

int bits_for(int n) {
  int b = 0;
  while ((1 << b) < n) ++b;
  return b;
}

std::vector<int> row_major(const ArrayGeometry&, int n) {
  std::vector<int> seq(static_cast<std::size_t>(n));
  std::iota(seq.begin(), seq.end(), 0);
  return seq;
}

std::vector<int> boustrophedon(const ArrayGeometry& geo, int n) {
  std::vector<int> seq;
  seq.reserve(static_cast<std::size_t>(n));
  for (int r = 0; r < geo.rows && static_cast<int>(seq.size()) < n; ++r) {
    for (int c = 0; c < geo.cols && static_cast<int>(seq.size()) < n; ++c) {
      const int col = (r % 2 == 0) ? c : geo.cols - 1 - c;
      seq.push_back(geo.index_of(r, col));
    }
  }
  return seq;
}

std::vector<int> symmetric(const ArrayGeometry& geo, int n) {
  // Sort cells by distance from the array center; then emit them in
  // mirror pairs (cell, point-symmetric partner) so partial sums stay
  // balanced against linear gradients.
  std::vector<int> by_dist(static_cast<std::size_t>(geo.cells()));
  std::iota(by_dist.begin(), by_dist.end(), 0);
  std::stable_sort(by_dist.begin(), by_dist.end(), [&](int a, int b) {
    const Point pa = geo.normalized(a);
    const Point pb = geo.normalized(b);
    return pa.x * pa.x + pa.y * pa.y < pb.x * pb.x + pb.y * pb.y;
  });
  std::vector<bool> used(static_cast<std::size_t>(geo.cells()), false);
  std::vector<int> seq;
  seq.reserve(static_cast<std::size_t>(n));
  for (int idx : by_dist) {
    if (static_cast<int>(seq.size()) >= n) break;
    if (used[static_cast<std::size_t>(idx)]) continue;
    used[static_cast<std::size_t>(idx)] = true;
    seq.push_back(idx);
    // Point-symmetric partner about the center.
    const int mirror = geo.index_of(geo.rows - 1 - geo.row_of(idx),
                                    geo.cols - 1 - geo.col_of(idx));
    if (!used[static_cast<std::size_t>(mirror)] &&
        static_cast<int>(seq.size()) < n) {
      used[static_cast<std::size_t>(mirror)] = true;
      seq.push_back(mirror);
    }
  }
  return seq;
}

std::vector<int> hierarchical(const ArrayGeometry& geo, int n) {
  // 2-D hierarchical spread: the bits of the step counter k are dealt
  // alternately to the row and column coordinates MSB-first, so the first
  // four steps land on the four half-grid corners, the next on the quarter
  // grid, and so on — consecutive thermometer steps always sit far apart,
  // averaging gradients from the very start (the 2-D analogue of the
  // van der Corput sequence).
  const int rb = bits_for(geo.rows);
  const int cb = bits_for(geo.cols);
  const int total = rb + cb;
  std::vector<int> seq;
  seq.reserve(static_cast<std::size_t>(n));
  for (unsigned k = 0;
       static_cast<int>(seq.size()) < n && k < (1u << total); ++k) {
    unsigned r = 0, c = 0;
    int ri = 0, ci = 0;
    for (int i = 0; i < total; ++i) {
      const unsigned bit = (k >> i) & 1u;
      if ((i % 2 == 0 && ri < rb) || ci >= cb) {
        r |= bit << (rb - 1 - ri);
        ++ri;
      } else {
        c |= bit << (cb - 1 - ci);
        ++ci;
      }
    }
    if (static_cast<int>(r) < geo.rows && static_cast<int>(c) < geo.cols) {
      seq.push_back(geo.index_of(static_cast<int>(r), static_cast<int>(c)));
    }
  }
  return seq;
}

std::vector<int> centroid_balanced(const ArrayGeometry& geo, int n,
                                   std::uint64_t seed) {
  // Greedy randomized walk: at every step, switch the cell that minimizes
  // the magnitude of the accumulated position sum (the centroid of the ON
  // set stays pinned to the array center, bounding the linear-gradient
  // INL like [12]'s Q2 random walk). Ties within 1% are broken randomly so
  // different seeds give different but equally-good walks.
  mathx::Xoshiro256 rng(seed);
  std::vector<bool> used(static_cast<std::size_t>(geo.cells()), false);
  std::vector<int> seq;
  seq.reserve(static_cast<std::size_t>(n));
  double sx = 0.0, sy = 0.0;
  for (int k = 0; k < n; ++k) {
    double best = 1e300;
    std::vector<int> candidates;
    for (int idx = 0; idx < geo.cells(); ++idx) {
      if (used[static_cast<std::size_t>(idx)]) continue;
      const Point p = geo.normalized(idx);
      const double cost =
          std::hypot(sx + p.x, sy + p.y);
      if (cost < best - 1e-2) {
        best = cost;
        candidates.assign(1, idx);
      } else if (cost <= best + 1e-2) {
        best = std::min(best, cost);
        candidates.push_back(idx);
      }
    }
    const int pick = candidates[static_cast<std::size_t>(
        mathx::uniform_index(rng, candidates.size()))];
    used[static_cast<std::size_t>(pick)] = true;
    const Point p = geo.normalized(pick);
    sx += p.x;
    sy += p.y;
    seq.push_back(pick);
  }
  return seq;
}

std::vector<int> random_perm(const ArrayGeometry& geo, int n,
                             std::uint64_t seed) {
  std::vector<int> all(static_cast<std::size_t>(geo.cells()));
  std::iota(all.begin(), all.end(), 0);
  mathx::Xoshiro256 rng(seed);
  for (std::size_t i = all.size(); i > 1; --i) {
    const auto j = mathx::uniform_index(rng, i);
    std::swap(all[i - 1], all[j]);
  }
  all.resize(static_cast<std::size_t>(n));
  return all;
}

}  // namespace

std::vector<int> make_sequence(SwitchingScheme scheme,
                               const ArrayGeometry& geo, int n_sources,
                               std::uint64_t seed) {
  check_args(geo, n_sources);
  switch (scheme) {
    case SwitchingScheme::kRowMajor:
      return row_major(geo, n_sources);
    case SwitchingScheme::kBoustrophedon:
      return boustrophedon(geo, n_sources);
    case SwitchingScheme::kSymmetric:
      return symmetric(geo, n_sources);
    case SwitchingScheme::kHierarchical:
      return hierarchical(geo, n_sources);
    case SwitchingScheme::kRandom:
      return random_perm(geo, n_sources, seed);
    case SwitchingScheme::kCentroidBalanced:
      return centroid_balanced(geo, n_sources, seed);
    case SwitchingScheme::kOptimized: {
      AnnealOptions opts;
      opts.seed = seed;
      return optimize_sequence(geo, n_sources, standard_gradients(0.01),
                               /*weight_lsb=*/16.0, opts);
    }
  }
  throw std::invalid_argument("make_sequence: unknown scheme");
}

std::vector<double> sequence_errors(const ArrayGeometry& geo,
                                    const std::vector<int>& sequence,
                                    const GradientSpec& gradient,
                                    bool double_centroid) {
  std::vector<double> out;
  out.reserve(sequence.size());
  for (int idx : sequence) {
    if (idx < 0 || idx >= geo.cells()) {
      throw std::out_of_range("sequence_errors: bad cell index");
    }
    if (!double_centroid) {
      const Point p = geo.normalized(idx);
      out.push_back(gradient.error_at(p.x, p.y));
    } else {
      // Four mirrored sub-groups (the 16-sub-unit common centroid): the
      // source sees the average of the gradient at (x,y), (-x,y), (x,-y),
      // (-x,-y) -- linear terms cancel exactly.
      const Point p = geo.normalized(idx);
      const double e = 0.25 * (gradient.error_at(p.x, p.y) +
                               gradient.error_at(-p.x, p.y) +
                               gradient.error_at(p.x, -p.y) +
                               gradient.error_at(-p.x, -p.y));
      out.push_back(e);
    }
  }
  return out;
}

SystematicLinearity systematic_linearity(
    const std::vector<double>& rel_errors, double weight_lsb) {
  if (rel_errors.empty() || !(weight_lsb > 0.0)) {
    throw std::invalid_argument("systematic_linearity: bad input");
  }
  const auto n = rel_errors.size();
  // Endpoint-corrected running sum: INL_k = sum_{i<=k} e_i - (k+1)/N * sum.
  double total = 0.0;
  for (double e : rel_errors) total += e;
  SystematicLinearity r;
  r.inl.resize(n);
  double run = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    run += rel_errors[k];
    const double inl =
        weight_lsb *
        (run - total * static_cast<double>(k + 1) / static_cast<double>(n));
    r.inl[k] = inl;
    r.inl_max = std::max(r.inl_max, std::abs(inl));
    const double dnl = weight_lsb * (rel_errors[k] - total / n);
    r.dnl_max = std::max(r.dnl_max, std::abs(dnl));
  }
  return r;
}

double sequence_cost(const ArrayGeometry& geo, const std::vector<int>& seq,
                     const std::vector<GradientSpec>& gradients,
                     double weight_lsb, bool double_centroid) {
  double worst = 0.0;
  for (const auto& g : gradients) {
    const auto errs = sequence_errors(geo, seq, g, double_centroid);
    worst = std::max(worst,
                     systematic_linearity(errs, weight_lsb).inl_max);
  }
  return worst;
}

double worst_linear_inl(const ArrayGeometry& geo, const std::vector<int>& seq,
                        double amplitude, double weight_lsb) {
  if (seq.empty() || !(amplitude >= 0.0) || !(weight_lsb > 0.0)) {
    throw std::invalid_argument("worst_linear_inl: bad input");
  }
  const auto n = static_cast<double>(seq.size());
  // Endpoint-corrected prefix sums of the position vectors.
  double tx = 0.0, ty = 0.0;
  for (int idx : seq) {
    const Point p = geo.normalized(idx);
    tx += p.x;
    ty += p.y;
  }
  double sx = 0.0, sy = 0.0, worst = 0.0;
  for (std::size_t k = 0; k < seq.size(); ++k) {
    const Point p = geo.normalized(seq[k]);
    sx += p.x;
    sy += p.y;
    const double frac = static_cast<double>(k + 1) / n;
    const double dx = sx - frac * tx;
    const double dy = sy - frac * ty;
    worst = std::max(worst, std::hypot(dx, dy));
  }
  return amplitude * weight_lsb * worst;
}

namespace {

struct AnnealResult {
  std::vector<int> seq;
  double cost = 0.0;
};

/// One independent annealing run starting from `seq` with its own stream.
AnnealResult anneal_once(const ArrayGeometry& geo, std::vector<int> seq,
                         const std::vector<GradientSpec>& gradients,
                         double weight_lsb, const AnnealOptions& opts,
                         mathx::Xoshiro256 rng) {
  const auto n_sources = static_cast<std::uint64_t>(seq.size());
  double cost = sequence_cost(geo, seq, gradients, weight_lsb);
  std::vector<int> best = seq;
  double best_cost = cost;

  const double alpha =
      std::pow(opts.t_end / opts.t_start, 1.0 / opts.iterations);
  double temp = opts.t_start;
  for (int it = 0; it < opts.iterations; ++it, temp *= alpha) {
    const auto a =
        static_cast<std::size_t>(mathx::uniform_index(rng, n_sources));
    const auto b =
        static_cast<std::size_t>(mathx::uniform_index(rng, n_sources));
    if (a == b) continue;
    std::swap(seq[a], seq[b]);
    const double new_cost = sequence_cost(geo, seq, gradients, weight_lsb);
    const double delta = new_cost - cost;
    if (delta <= 0.0 ||
        mathx::uniform01(rng) < std::exp(-delta / temp)) {
      cost = new_cost;
      if (cost < best_cost) {
        best_cost = cost;
        best = seq;
      }
    } else {
      std::swap(seq[a], seq[b]);  // reject
    }
  }
  return {std::move(best), best_cost};
}

}  // namespace

std::vector<int> optimize_sequence(const ArrayGeometry& geo, int n_sources,
                                   const std::vector<GradientSpec>& gradients,
                                   double weight_lsb,
                                   const AnnealOptions& opts,
                                   mathx::RunStats* stats) {
  check_args(geo, n_sources);
  if (gradients.empty() || opts.iterations < 1 ||
      !(opts.t_start > opts.t_end) || !(opts.t_end > 0.0) ||
      opts.restarts < 1 || opts.threads < 0) {
    throw std::invalid_argument("optimize_sequence: bad options");
  }
  // Start from the hierarchical order: already decent, anneal refines it.
  const std::vector<int> seq0 =
      make_sequence(SwitchingScheme::kHierarchical, geo, n_sources);

  const auto results = mathx::parallel_map(
      opts.restarts, opts.threads,
      [&](std::int64_t r) {
        mathx::Xoshiro256 rng =
            r == 0 ? mathx::Xoshiro256(opts.seed)
                   : mathx::stream_rng(opts.seed,
                                       static_cast<std::uint64_t>(r));
        return anneal_once(geo, seq0, gradients, weight_lsb, opts,
                           std::move(rng));
      },
      stats);

  std::size_t winner = 0;
  for (std::size_t r = 1; r < results.size(); ++r) {
    if (results[r].cost < results[winner].cost) winner = r;
  }
  return results[winner].seq;
}

}  // namespace csdac::layout
