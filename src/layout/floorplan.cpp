#include "layout/floorplan.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace csdac::layout {
namespace {

LefMacro cs_macro(const FloorplanOptions& o) {
  LefMacro m;
  m.name = "CS_CELL";
  m.width = o.cs_cell_w_um;
  m.height = o.cs_cell_h_um;
  m.pins = {
      {"SW", "INPUT", "METAL2", 1.0, o.cs_cell_h_um - 1.5, 1.6,
       o.cs_cell_h_um - 0.9},
      {"SWB", "INPUT", "METAL2", 2.2, o.cs_cell_h_um - 1.5, 2.8,
       o.cs_cell_h_um - 0.9},
      {"OUTP", "OUTPUT", "METAL3", 4.0, o.cs_cell_h_um - 1.5, 4.6,
       o.cs_cell_h_um - 0.9},
      {"OUTN", "OUTPUT", "METAL3", 5.2, o.cs_cell_h_um - 1.5, 5.8,
       o.cs_cell_h_um - 0.9},
      {"VBIAS", "INPUT", "METAL1", 0.4, 0.4, 1.0, 1.0},
  };
  return m;
}

LefMacro latch_macro(const FloorplanOptions& o) {
  LefMacro m;
  m.name = "LATCH_SW_DRV";
  m.width = o.latch_cell_w_um;
  m.height = o.latch_cell_h_um;
  m.pins = {
      {"D", "INPUT", "METAL2", 1.0, 0.4, 1.6, 1.0},
      {"CK", "INPUT", "METAL2", 2.2, 0.4, 2.8, 1.0},
      {"Q", "OUTPUT", "METAL2", 4.0, 0.4, 4.6, 1.0},
      {"QB", "OUTPUT", "METAL2", 5.2, 0.4, 5.8, 1.0},
  };
  return m;
}

LefMacro decoder_macro(const FloorplanOptions& o, double width_um,
                       const std::string& name, int outputs) {
  LefMacro m;
  m.name = name;
  m.width = width_um;
  m.height = o.decoder_h_um;
  m.pins.push_back({"CK", "INPUT", "METAL2", 0.4, 0.4, 1.0, 1.0});
  for (int i = 0; i < outputs; ++i) {
    const double x = 2.0 + 1.2 * i;
    m.pins.push_back({"T" + std::to_string(i), "OUTPUT", "METAL2", x, 0.2,
                      x + 0.6, 0.8});
  }
  return m;
}

}  // namespace

Floorplan build_floorplan(const core::DacSpec& spec,
                          const FloorplanOptions& opts) {
  spec.validate();
  Floorplan fp;
  const int n_unary = spec.num_unary();
  const int bin_cols = std::min(4, spec.binary_bits);

  // Unary sub-grid: smallest near-square grid holding all unary sources.
  const int ucols = static_cast<int>(std::ceil(std::sqrt(
      static_cast<double>(n_unary))));
  const int rows = (n_unary + ucols - 1) / ucols;
  const ArrayGeometry ugeo{rows, ucols, opts.cs_cell_w_um * 1e-6,
                           opts.cs_cell_h_um * 1e-6};
  fp.unary_sequence = make_sequence(opts.scheme, ugeo, n_unary, opts.seed);

  const int full_cols = ucols + bin_cols;
  fp.cs_array = ArrayGeometry{rows, full_cols, opts.cs_cell_w_um * 1e-6,
                              opts.cs_cell_h_um * 1e-6};
  // Binary columns sit in the middle of the array (Fig. 5).
  const int bin_start = (full_cols - bin_cols) / 2;
  for (int j = 0; j < bin_cols; ++j) {
    fp.binary_columns.push_back(bin_start + j);
  }
  auto map_col = [&](int ucol) {
    return ucol < bin_start ? ucol : ucol + bin_cols;
  };

  const double dbu = opts.dbu_per_micron;
  auto to_dbu = [&](double um) {
    return static_cast<long long>(std::llround(um * dbu));
  };

  DefDesign& d = fp.def;
  d.name = "csdac_" + std::to_string(spec.nbits) + "b";
  d.dbu_per_micron = opts.dbu_per_micron;

  const double cs_region_h = rows * opts.cs_cell_h_um;
  const int latch_count = n_unary + spec.binary_bits;
  const int latch_rows = (latch_count + full_cols - 1) / full_cols;
  const double latch_y0 = cs_region_h + opts.region_gap_um;
  const double latch_region_h = latch_rows * opts.latch_cell_h_um;
  const double dec_y0 = latch_y0 + latch_region_h + opts.region_gap_um;
  const double width_um = full_cols * opts.cs_cell_w_um;
  d.die_x0 = 0;
  d.die_y0 = 0;
  d.die_x1 = to_dbu(width_um);
  d.die_y1 = to_dbu(dec_y0 + opts.decoder_h_um);

  // Current-source array: unary cells in switching order.
  DefNet outp{"outp", {}};
  DefNet outn{"outn", {}};
  DefNet vbias{"vbias", {}};
  for (int k = 0; k < n_unary; ++k) {
    const int cell = fp.unary_sequence[static_cast<std::size_t>(k)];
    const int r = ugeo.row_of(cell);
    const int c = map_col(ugeo.col_of(cell));
    DefComponent comp;
    comp.name = "cs_u" + std::to_string(k);
    comp.macro = "CS_CELL";
    comp.x = to_dbu(c * opts.cs_cell_w_um);
    comp.y = to_dbu(r * opts.cs_cell_h_um);
    d.components.push_back(comp);
    outp.connections.push_back({comp.name, "OUTP"});
    outn.connections.push_back({comp.name, "OUTN"});
    vbias.connections.push_back({comp.name, "VBIAS"});
  }
  // Binary cells: one per bit, stacked in the dedicated center columns.
  for (int j = 0; j < spec.binary_bits; ++j) {
    const int col = fp.binary_columns[static_cast<std::size_t>(
        j % std::max(bin_cols, 1))];
    const int r = (j / std::max(bin_cols, 1)) + rows / 2;
    DefComponent comp;
    comp.name = "cs_b" + std::to_string(j);
    comp.macro = "CS_CELL";
    comp.x = to_dbu(col * opts.cs_cell_w_um);
    comp.y = to_dbu(std::min(r, rows - 1) * opts.cs_cell_h_um);
    d.components.push_back(comp);
    outp.connections.push_back({comp.name, "OUTP"});
    outn.connections.push_back({comp.name, "OUTN"});
    vbias.connections.push_back({comp.name, "VBIAS"});
  }

  // Latch & switch array: row-major fill; binary latches in the middle of
  // the array (Fig. 5), i.e. they take the central slots of the middle row.
  const int mid_slot_base =
      (latch_rows / 2) * full_cols + (full_cols - spec.binary_bits) / 2;
  std::vector<std::string> slot_owner(
      static_cast<std::size_t>(latch_rows * full_cols));
  for (int j = 0; j < spec.binary_bits; ++j) {
    slot_owner[static_cast<std::size_t>(mid_slot_base + j)] =
        "lat_b" + std::to_string(j);
  }
  int next_unary = 0;
  for (int s = 0; s < latch_rows * full_cols; ++s) {
    auto& owner = slot_owner[static_cast<std::size_t>(s)];
    if (owner.empty() && next_unary < n_unary) {
      owner = "lat_u" + std::to_string(next_unary++);
    }
  }
  for (int s = 0; s < latch_rows * full_cols; ++s) {
    const auto& owner = slot_owner[static_cast<std::size_t>(s)];
    if (owner.empty()) continue;
    DefComponent comp;
    comp.name = owner;
    comp.macro = "LATCH_SW_DRV";
    comp.x = to_dbu((s % full_cols) * opts.latch_cell_w_um);
    comp.y = to_dbu(latch_y0 + (s / full_cols) * opts.latch_cell_h_um);
    d.components.push_back(comp);
  }

  // Decoder blocks.
  DefComponent therm{"dec_therm", "THERM_DEC", to_dbu(0.0), to_dbu(dec_y0),
                     "N"};
  DefComponent dummy{"dec_dummy", "DUMMY_DEC", to_dbu(width_um * 0.75),
                     to_dbu(dec_y0), "N"};
  d.components.push_back(therm);
  d.components.push_back(dummy);

  // Nets: decoder -> latch, latch -> cell, shared output/bias rails.
  for (int k = 0; k < n_unary; ++k) {
    DefNet dec_net{"t" + std::to_string(k),
                   {{"dec_therm", "T" + std::to_string(k)},
                    {"lat_u" + std::to_string(k), "D"}}};
    DefNet drv_net{"sw_u" + std::to_string(k),
                   {{"lat_u" + std::to_string(k), "Q"},
                    {"cs_u" + std::to_string(k), "SW"}}};
    d.nets.push_back(std::move(dec_net));
    d.nets.push_back(std::move(drv_net));
  }
  for (int j = 0; j < spec.binary_bits; ++j) {
    DefNet dec_net{"b" + std::to_string(j),
                   {{"dec_dummy", "T" + std::to_string(j)},
                    {"lat_b" + std::to_string(j), "D"}}};
    DefNet drv_net{"sw_b" + std::to_string(j),
                   {{"lat_b" + std::to_string(j), "Q"},
                    {"cs_b" + std::to_string(j), "SW"}}};
    d.nets.push_back(std::move(dec_net));
    d.nets.push_back(std::move(drv_net));
  }
  d.nets.push_back(std::move(outp));
  d.nets.push_back(std::move(outn));
  d.nets.push_back(std::move(vbias));

  // LEF library.
  fp.macros.push_back(cs_macro(opts));
  fp.macros.push_back(latch_macro(opts));
  fp.macros.push_back(
      decoder_macro(opts, width_um * 0.7, "THERM_DEC", n_unary));
  fp.macros.push_back(decoder_macro(opts, width_um * 0.25, "DUMMY_DEC",
                                    std::max(spec.binary_bits, 1)));
  return fp;
}

std::string floorplan_lef(const Floorplan& fp) { return write_lef(fp.macros); }

std::string floorplan_def(const Floorplan& fp) { return write_def(fp.def); }

}  // namespace csdac::layout
