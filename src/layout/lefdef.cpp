#include "layout/lefdef.hpp"

#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace csdac::layout {
namespace {

std::string fmt(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.4f", v);
  return buf;
}

}  // namespace

std::string write_lef(const std::vector<LefMacro>& macros) {
  std::ostringstream os;
  os << "VERSION 5.7 ;\nBUSBITCHARS \"[]\" ;\nDIVIDERCHAR \"/\" ;\n\n";
  for (const auto& m : macros) {
    if (m.name.empty() || !(m.width > 0) || !(m.height > 0)) {
      throw std::invalid_argument("write_lef: bad macro " + m.name);
    }
    os << "MACRO " << m.name << "\n";
    os << "  CLASS CORE ;\n";
    os << "  ORIGIN 0 0 ;\n";
    os << "  SIZE " << fmt(m.width) << " BY " << fmt(m.height) << " ;\n";
    for (const auto& p : m.pins) {
      os << "  PIN " << p.name << "\n";
      os << "    DIRECTION " << p.direction << " ;\n";
      os << "    PORT\n";
      os << "      LAYER " << p.layer << " ;\n";
      os << "      RECT " << fmt(p.x0) << " " << fmt(p.y0) << " "
         << fmt(p.x1) << " " << fmt(p.y1) << " ;\n";
      os << "    END\n";
      os << "  END " << p.name << "\n";
    }
    os << "END " << m.name << "\n\n";
  }
  os << "END LIBRARY\n";
  return os.str();
}

std::string write_def(const DefDesign& d) {
  if (d.name.empty() || d.dbu_per_micron <= 0) {
    throw std::invalid_argument("write_def: bad design header");
  }
  std::ostringstream os;
  os << "VERSION 5.7 ;\nDIVIDERCHAR \"/\" ;\nBUSBITCHARS \"[]\" ;\n";
  os << "DESIGN " << d.name << " ;\n";
  os << "UNITS DISTANCE MICRONS " << d.dbu_per_micron << " ;\n";
  os << "DIEAREA ( " << d.die_x0 << " " << d.die_y0 << " ) ( " << d.die_x1
     << " " << d.die_y1 << " ) ;\n\n";

  os << "COMPONENTS " << d.components.size() << " ;\n";
  for (const auto& c : d.components) {
    os << "  - " << c.name << " " << c.macro << " + PLACED ( " << c.x << " "
       << c.y << " ) " << c.orient << " ;\n";
  }
  os << "END COMPONENTS\n\n";

  os << "NETS " << d.nets.size() << " ;\n";
  for (const auto& n : d.nets) {
    os << "  - " << n.name;
    for (const auto& conn : n.connections) {
      os << " ( " << conn.component << " " << conn.pin << " )";
    }
    os << " ;\n";
  }
  os << "END NETS\n\nEND DESIGN\n";
  return os.str();
}

namespace {

/// Whitespace tokenizer.
std::vector<std::string> tokenize(const std::string& text) {
  std::vector<std::string> tokens;
  std::istringstream is(text);
  std::string t;
  while (is >> t) tokens.push_back(t);
  return tokens;
}

class TokenStream {
 public:
  explicit TokenStream(std::vector<std::string> tokens)
      : tokens_(std::move(tokens)) {}

  bool done() const { return pos_ >= tokens_.size(); }
  const std::string& peek() const {
    if (done()) throw std::invalid_argument("parse_def: unexpected EOF");
    return tokens_[pos_];
  }
  std::string next() {
    if (done()) throw std::invalid_argument("parse_def: unexpected EOF");
    return tokens_[pos_++];
  }
  void expect(const std::string& tok) {
    const std::string got = next();
    if (got != tok) {
      throw std::invalid_argument("parse_def: expected '" + tok +
                                  "', got '" + got + "'");
    }
  }
  long long next_int() {
    const std::string t = next();
    try {
      return std::stoll(t);
    } catch (const std::exception&) {
      throw std::invalid_argument("parse_def: expected integer, got '" + t +
                                  "'");
    }
  }
  /// Skips tokens until (and including) the given one.
  void skip_past(const std::string& tok) {
    while (next() != tok) {
    }
  }

 private:
  std::vector<std::string> tokens_;
  std::size_t pos_ = 0;
};

}  // namespace

DefDesign parse_def(const std::string& text) {
  TokenStream ts(tokenize(text));
  DefDesign d;
  bool saw_design = false;
  while (!ts.done()) {
    const std::string tok = ts.next();
    if (tok == "DESIGN") {
      d.name = ts.next();
      ts.expect(";");
      saw_design = true;
    } else if (tok == "UNITS") {
      ts.expect("DISTANCE");
      ts.expect("MICRONS");
      d.dbu_per_micron = static_cast<int>(ts.next_int());
      ts.expect(";");
    } else if (tok == "DIEAREA") {
      ts.expect("(");
      d.die_x0 = ts.next_int();
      d.die_y0 = ts.next_int();
      ts.expect(")");
      ts.expect("(");
      d.die_x1 = ts.next_int();
      d.die_y1 = ts.next_int();
      ts.expect(")");
      ts.expect(";");
    } else if (tok == "COMPONENTS") {
      ts.next_int();  // declared count; trust the actual list
      ts.expect(";");
      while (ts.peek() == "-") {
        ts.next();
        DefComponent c;
        c.name = ts.next();
        c.macro = ts.next();
        ts.expect("+");
        const std::string kind = ts.next();  // PLACED or FIXED
        if (kind != "PLACED" && kind != "FIXED") {
          throw std::invalid_argument("parse_def: bad placement kind " +
                                      kind);
        }
        ts.expect("(");
        c.x = ts.next_int();
        c.y = ts.next_int();
        ts.expect(")");
        c.orient = ts.next();
        ts.expect(";");
        d.components.push_back(std::move(c));
      }
      ts.expect("END");
      ts.expect("COMPONENTS");
    } else if (tok == "NETS") {
      ts.next_int();
      ts.expect(";");
      while (ts.peek() == "-") {
        ts.next();
        DefNet n;
        n.name = ts.next();
        while (ts.peek() == "(") {
          ts.next();
          DefConnection conn;
          conn.component = ts.next();
          conn.pin = ts.next();
          ts.expect(")");
          n.connections.push_back(std::move(conn));
        }
        ts.expect(";");
        d.nets.push_back(std::move(n));
      }
      ts.expect("END");
      ts.expect("NETS");
    } else if (tok == "END" && !ts.done() && ts.peek() == "DESIGN") {
      ts.next();
      break;
    }
    // Other statements (VERSION, DIVIDERCHAR, ...) fall through: their
    // tokens are consumed by the loop as unknown words.
  }
  if (!saw_design) {
    throw std::invalid_argument("parse_def: missing DESIGN statement");
  }
  return d;
}

}  // namespace csdac::layout
