#include "serve/client.hpp"

#include <cerrno>
#include <cstring>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

namespace csdac::serve {

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

bool Client::connect(const std::string& host, int port, std::string* err) {
  close();
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    if (err) *err = "socket() failed";
    return false;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    if (err) *err = "bad address " + host;
    return false;
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int e = errno;
    ::close(fd);
    if (err) {
      *err = "connect " + host + ":" + std::to_string(port) + ": " +
             std::strerror(e);
    }
    return false;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  fd_ = fd;
  return true;
}

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

FrameStatus Client::call(const std::string& payload, std::string& reply,
                         std::uint32_t max_reply_bytes) {
  if (!send(payload)) return FrameStatus::kIoError;
  return recv(reply, max_reply_bytes);
}

bool Client::send(const std::string& payload) {
  return fd_ >= 0 && write_frame(fd_, payload);
}

FrameStatus Client::recv(std::string& reply, std::uint32_t max_reply_bytes) {
  if (fd_ < 0) return FrameStatus::kIoError;
  return read_frame(fd_, reply, max_reply_bytes);
}

bool Client::send_raw(const void* data, std::size_t n) {
  if (fd_ < 0) return false;
  std::size_t put = 0;
  const char* p = static_cast<const char*>(data);
  while (put < n) {
    const ssize_t r = ::send(fd_, p + put, n - put, MSG_NOSIGNAL);
    if (r < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    put += static_cast<std::size_t>(r);
  }
  return true;
}

}  // namespace csdac::serve
