// Length-framed message transport of the design server. Every message —
// request, response, control — travels as one frame:
//
//   bytes 0..3   magic "CSF1" (protocol + framing version)
//   bytes 4..7   payload length, u32 little-endian
//   bytes 8..    payload (UTF-8 JSON)
//
// The reader enforces a hard payload ceiling BEFORE allocating, so a
// hostile length prefix cannot size an allocation. Framing errors are not
// recoverable on a stream (the byte position is lost), so the server
// answers a best-effort error frame and drops the connection; payload
// errors (bad JSON etc.) are handled a layer up and keep the stream open.
//
// Functions take plain fds and work on sockets and pipes alike — writes
// prefer send(MSG_NOSIGNAL) and fall back to write() for non-sockets, so
// a peer hanging up mid-write surfaces as an error, never SIGPIPE.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace csdac::serve {

inline constexpr char kFrameMagic[4] = {'C', 'S', 'F', '1'};
inline constexpr std::uint32_t kDefaultMaxFrameBytes = 16u << 20;

enum class FrameStatus : std::uint8_t {
  kOk = 0,
  kClosed,     ///< clean EOF at a frame boundary
  kBadMagic,   ///< stream desync or a non-CSF1 client
  kTooLarge,   ///< length prefix exceeds the ceiling (nothing allocated)
  kTruncated,  ///< EOF mid-frame
  kIoError,    ///< read/write errno failure
};

std::string_view frame_status_name(FrameStatus s);

/// Reads one complete frame into `payload`. Blocks until a full frame,
/// EOF, or error. Only kOk leaves `payload` valid.
FrameStatus read_frame(int fd, std::string& payload,
                       std::uint32_t max_bytes = kDefaultMaxFrameBytes);

/// Writes one complete frame (header + payload). False on any error.
bool write_frame(int fd, std::string_view payload);

}  // namespace csdac::serve
