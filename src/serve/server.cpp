#include "serve/server.hpp"

#include <algorithm>
#include <chrono>
#include <map>
#include <stdexcept>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "serve/request.hpp"
#include "serve/response.hpp"

namespace csdac::serve {

namespace {

struct ServeMetrics {
  obs::Counter& connections;
  obs::Counter& requests;
  obs::Counter& errors;
  obs::Counter& rejected;
  obs::Counter& slow;
  obs::Gauge& active;
  obs::Gauge& inflight;
  obs::Histogram& request_us;

  static ServeMetrics& get() {
    obs::Registry& r = obs::Registry::global();
    static ServeMetrics m{
        r.counter("serve.connections", "connections accepted"),
        r.counter("serve.requests", "design requests answered"),
        r.counter("serve.errors", "error frames sent"),
        r.counter("serve.rejected", "connections refused at the cap"),
        r.counter("serve.slow_requests",
                  "requests at or over the slow_us threshold"),
        r.gauge("serve.connections_active", "connections open right now"),
        r.gauge("serve.requests_inflight", "requests being handled"),
        r.histogram("serve.request_us", "request handling latency [us]"),
    };
    return m;
  }
};

/// The per-job pipeline stages, in pipeline order. Every job observes
/// EVERY stage (zeros included) so stage counts always match job counts:
/// a warm pass then shows compute with count > 0 and sum == 0, which is
/// the signal the regression checks key on.
struct JobStages {
  std::int64_t admission_us = 0;
  std::int64_t queue_us = 0;
  std::int64_t hot_us = 0;
  std::int64_t disk_us = 0;
  std::int64_t compute_us = 0;
  std::int64_t store_us = 0;
  std::int64_t serialize_us = 0;

  std::int64_t total_us() const {
    return admission_us + queue_us + hot_us + disk_us + compute_us +
           store_us + serialize_us;
  }
};

constexpr const char* kStageNames[] = {
    "admission", "queue", "hot", "disk",
    "compute",   "store", "serialize", "total",
};
constexpr int kNumStages = 8;

/// serve.stage_us{kind=...,stage=...} histograms for one job kind. The
/// labeled registry lookup takes a mutex, so references are resolved once
/// per kind and cached — the per-job cost is eight wait-free observe()s.
struct StageHists {
  obs::Histogram* stage[kNumStages] = {};

  static const StageHists& get(runtime::JobKind kind) {
    static std::mutex mu;
    static std::map<runtime::JobKind, StageHists> cache;
    std::lock_guard<std::mutex> lock(mu);
    auto [it, fresh] = cache.try_emplace(kind);
    if (fresh) {
      const std::string kind_s(runtime::kind_name(kind));
      for (int s = 0; s < kNumStages; ++s) {
        it->second.stage[s] = &obs::Registry::global().histogram(
            "serve.stage_us", {{"kind", kind_s}, {"stage", kStageNames[s]}},
            "per-stage job latency attribution [us]");
      }
    }
    return it->second;
  }

  void observe(const JobStages& j) const {
    const std::int64_t v[kNumStages] = {
        j.admission_us, j.queue_us, j.hot_us,      j.disk_us,
        j.compute_us,   j.store_us, j.serialize_us, j.total_us()};
    for (int s = 0; s < kNumStages; ++s) stage[s]->observe(v[s]);
  }
};

void emit_stages(bench::JsonWriter& w, const JobStages& j) {
  w.key("stages").begin_object();
  w.field("admission_us", j.admission_us);
  w.field("queue_us", j.queue_us);
  w.field("hot_us", j.hot_us);
  w.field("disk_us", j.disk_us);
  w.field("compute_us", j.compute_us);
  w.field("store_us", j.store_us);
  w.field("serialize_us", j.serialize_us);
  w.field("total_us", j.total_us());
  w.end_object();
}

}  // namespace

Server::Server(ServerOptions opts) : opts_(std::move(opts)) {
  sched_ = std::make_unique<runtime::Scheduler>(opts_.sched);
  if (opts_.slow_us >= 0 && !opts_.slow_log.empty()) {
    slow_file_ = std::fopen(opts_.slow_log.c_str(), "ab");
    if (!slow_file_) {
      throw std::runtime_error("serve: cannot open slow log " +
                               opts_.slow_log);
    }
  }

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw std::runtime_error("serve: socket() failed");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(opts_.port));
  if (::inet_pton(AF_INET, opts_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    throw std::runtime_error("serve: bad listen address " + opts_.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    ::close(listen_fd_);
    throw std::runtime_error("serve: cannot bind " + opts_.host + ":" +
                             std::to_string(opts_.port));
  }
  if (::listen(listen_fd_, 64) != 0) {
    ::close(listen_fd_);
    throw std::runtime_error("serve: listen() failed");
  }
  sockaddr_in bound{};
  socklen_t blen = sizeof(bound);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &blen);
  port_ = static_cast<int>(ntohs(bound.sin_port));
}

Server::~Server() {
  stop();
  if (slow_file_) std::fclose(slow_file_);
}

void Server::log_slow_request(const std::string& line) {
  std::lock_guard<std::mutex> lock(slow_mutex_);
  if (!slow_file_) return;
  std::fwrite(line.data(), 1, line.size(), slow_file_);
  std::fputc('\n', slow_file_);
  // Flushed per record: the slow log exists to survive the process dying
  // mid-investigation, and slow requests are rare by definition.
  std::fflush(slow_file_);
}

void Server::start() {
  bool expected = false;
  if (!running_.compare_exchange_strong(expected, true)) return;
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void Server::stop() {
  if (running_.exchange(false)) {
    // Unblock poll() promptly; the accept loop also checks running_.
    ::shutdown(listen_fd_, SHUT_RDWR);
    accept_thread_.join();
  }
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
    threads.swap(conn_threads_);
  }
  for (auto& t : threads) t.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_requested_.store(true, std::memory_order_release);
  }
  cv_stop_.notify_all();
}

void Server::wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_stop_.wait(lock,
                [this] { return stop_requested_.load(std::memory_order_acquire); });
}

ServerCounters Server::counters() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return counters_;
}

void Server::accept_loop() {
  ServeMetrics& m = ServeMetrics::get();
  while (running_.load(std::memory_order_acquire)) {
    pollfd p{listen_fd_, POLLIN, 0};
    const int r = ::poll(&p, 1, 200);
    if (r <= 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

    std::lock_guard<std::mutex> lock(mutex_);
    if (!running_.load(std::memory_order_acquire)) {
      ::close(fd);
      break;
    }
    if (active_ >= opts_.max_connections) {
      write_frame(fd, error_frame("busy", "connection limit reached"));
      ::close(fd);
      ++counters_.rejected;
      m.rejected.add(1);
      continue;
    }
    const std::uint64_t id = next_conn_id_++;
    ++active_;
    ++counters_.connections;
    m.connections.add(1);
    m.active.set(static_cast<double>(active_));
    conn_fds_.push_back(fd);
    conn_threads_.emplace_back(
        [this, fd, id] { handle_connection(fd, id); });
  }
}

void Server::handle_connection(int fd, std::uint64_t conn_id) {
  ServeMetrics& m = ServeMetrics::get();
  std::string payload;
  for (;;) {
    const FrameStatus st = read_frame(fd, payload, opts_.max_frame_bytes);
    if (st == FrameStatus::kClosed) break;
    if (st != FrameStatus::kOk) {
      // The stream position is unknowable after a framing error: answer
      // best-effort and drop the connection (payload errors, by
      // contrast, are clean frames and keep the session below).
      write_frame(fd, error_frame(frame_status_name(st),
                                  "framing error, closing connection"));
      std::lock_guard<std::mutex> lock(mutex_);
      ++counters_.errors;
      m.errors.add(1);
      break;
    }

    bool shutdown_after = false;
    const std::string reply =
        handle_payload(payload, conn_id, &shutdown_after);
    const bool sent = write_frame(fd, reply);
    if (shutdown_after) {
      {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_requested_.store(true, std::memory_order_release);
      }
      cv_stop_.notify_all();
      break;
    }
    if (!sent) break;
  }

  ::close(fd);
  std::lock_guard<std::mutex> lock(mutex_);
  conn_fds_.erase(std::remove(conn_fds_.begin(), conn_fds_.end(), fd),
                  conn_fds_.end());
  --active_;
  m.active.set(static_cast<double>(active_));
}

std::string Server::handle_payload(const std::string& payload,
                                   std::uint64_t conn_id,
                                   bool* shutdown_after) {
  ServeMetrics& m = ServeMetrics::get();
  runtime::JsonValue request;
  std::string err;
  if (!runtime::parse_json(payload, request, &err)) {
    obs::FlightRecorder::global().record(obs::FlightEventKind::kError,
                                         "bad_json", {},
                                         obs::trace_now_us(), 0.0);
    std::lock_guard<std::mutex> lock(mutex_);
    ++counters_.errors;
    m.errors.add(1);
    return error_frame("bad_json", err);
  }
  const std::string schema = request.string_or("schema", "");
  if (schema == kControlSchema) {
    return handle_control(request, shutdown_after);
  }

  try {
    return handle_request(request, conn_id);
  } catch (const RequestError& e) {
    obs::FlightRecorder::global().record(obs::FlightEventKind::kError,
                                         e.code(), {}, obs::trace_now_us(),
                                         0.0);
    std::lock_guard<std::mutex> lock(mutex_);
    ++counters_.errors;
    m.errors.add(1);
    return error_frame(e.code(), e.what());
  } catch (const std::exception& e) {
    obs::FlightRecorder::global().record(obs::FlightEventKind::kError,
                                         "internal", {}, obs::trace_now_us(),
                                         0.0);
    std::lock_guard<std::mutex> lock(mutex_);
    ++counters_.errors;
    m.errors.add(1);
    return error_frame("internal", e.what());
  }
}

std::string Server::handle_control(const runtime::JsonValue& request,
                                   bool* shutdown_after) {
  const std::string cmd = request.string_or("cmd", "");
  if (cmd != "ping" && cmd != "metrics" && cmd != "dump" &&
      cmd != "shutdown") {
    std::lock_guard<std::mutex> lock(mutex_);
    ++counters_.errors;
    ServeMetrics::get().errors.add(1);
    return error_frame("bad_ctl", "unknown ctl cmd '" + cmd + "'");
  }
  bench::JsonWriter w;
  w.begin_object();
  w.field("schema", kControlSchema);
  w.field("cmd", cmd);
  w.field("ok", true);
  if (cmd == "ping") {
    w.field("workers", sched_->workers());
    w.field("inflight", sched_->inflight());
  } else if (cmd == "metrics") {
    w.field("prometheus", obs::Registry::global().snapshot().to_prometheus());
  } else if (cmd == "dump") {
    // On-demand flight-recorder dump: the whole ring as one Chrome-trace
    // document (a ring of 4096 fixed-size events renders well under the
    // frame ceiling).
    const obs::FlightRecorder& fr = obs::FlightRecorder::global();
    w.field("events", fr.total_recorded());
    w.field("dropped", fr.dropped());
    w.field("chrome_trace", fr.chrome_trace_json());
  } else {
    *shutdown_after = true;
  }
  w.end_object();
  return w.str();
}

std::string Server::handle_request(const runtime::JsonValue& request,
                                   std::uint64_t conn_id) {
  ServeMetrics& m = ServeMetrics::get();
  const std::vector<RequestJob> jobs = parse_request(request);
  const bool want_metrics = request.bool_or("metrics", false);

  // One trace id per request, end to end: the caller's when supplied
  // (bounded so it embeds in fixed-size flight events), a minted
  // "sv-<conn>-<n>" otherwise. It rides the serve.request span, every
  // sched.job / exec.job span the request fans out to, the reply, the
  // slow log, and the flight recorder.
  std::string trace = request.string_or("trace_id", "");
  if (trace.size() > kMaxTraceIdBytes) {
    throw RequestError("bad_request",
                       "trace_id exceeds " +
                           std::to_string(kMaxTraceIdBytes) + " bytes");
  }
  if (trace.empty()) {
    trace = "sv-" + std::to_string(conn_id) + "-" +
            std::to_string(trace_seq_.fetch_add(1,
                                                std::memory_order_relaxed));
  }

  obs::ScopedSpan span("serve.request");
  span.attr("client", static_cast<std::int64_t>(conn_id))
      .attr("jobs", static_cast<std::int64_t>(jobs.size()))
      .attr("trace_id", trace);
  m.inflight.add(1);
  const auto t0 = std::chrono::steady_clock::now();
  const double flight_start_us = obs::trace_now_us();

  // Submit everything before waiting on anything: within one request the
  // scheduler's in-flight dedup folds duplicates, and across requests two
  // clients asking the same question share one execution (the job then
  // keeps the FIRST submitter's trace id — one execution, one
  // attribution).
  std::vector<runtime::Scheduler::Ticket> tickets;
  tickets.reserve(jobs.size());
  for (const RequestJob& e : jobs) {
    tickets.push_back(sched_->submit(e.job, conn_id, e.id, trace,
                                     span.id()));
  }

  bench::JsonWriter w;
  w.begin_object();
  w.field("schema", kResponseSchema);
  w.field("trace_id", trace);
  w.key("jobs").begin_array();
  std::int64_t deduped = 0, failed = 0, chip_evals = 0;
  std::map<mathx::HashKey128, bool> counted;
  std::vector<JobStages> job_stages(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const runtime::Scheduler::Ticket& t = tickets[i];
    const runtime::JobKind kind = runtime::job_kind(jobs[i].job);
    w.begin_object();
    w.field("id", jobs[i].id);
    w.field("kind", runtime::kind_name(kind));
    w.field("key", t.key.hex());
    deduped += t.deduped ? 1 : 0;
    try {
      const runtime::Scheduler::ResultPtr res = t.future.get();
      w.field("cache", runtime::tier_name(res->tier));
      w.field("deduped", t.deduped);
      w.field("wall_s", res->wall_seconds);
      w.field("evaluated", res->stats.evaluated);
      const auto s0 = std::chrono::steady_clock::now();
      emit_result(w, res->value);
      JobStages& js = job_stages[i];
      js.admission_us = res->stages.admission_us;
      js.queue_us = res->stages.queue_us;
      js.hot_us = res->stages.hot_us;
      js.disk_us = res->stages.disk_us;
      js.compute_us = res->stages.compute_us;
      js.store_us = res->stages.store_us;
      js.serialize_us = std::chrono::duration_cast<std::chrono::microseconds>(
                            std::chrono::steady_clock::now() - s0)
                            .count();
      emit_stages(w, js);
      StageHists::get(kind).observe(js);
      if (counted.emplace(t.key, true).second) {
        chip_evals += res->stats.evaluated;
      }
    } catch (const std::exception& e) {
      ++failed;
      obs::FlightRecorder::global().record(obs::FlightEventKind::kError,
                                           "job_failed", trace,
                                           obs::trace_now_us(), 0.0);
      w.key("error").begin_object();
      w.field("code", "job_failed");
      w.field("message", e.what());
      w.end_object();
    }
    w.end_object();
  }
  w.end_array();

  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  w.key("summary").begin_object();
  w.field("requested", static_cast<std::int64_t>(jobs.size()));
  w.field("deduped", deduped);
  w.field("failed", failed);
  w.field("chip_evals", chip_evals);
  w.field("wall_s", wall);
  w.end_object();
  if (want_metrics) {
    w.key("metrics").raw(obs::Registry::global().snapshot().to_json());
  }
  w.end_object();

  const std::int64_t wall_us = static_cast<std::int64_t>(wall * 1e6);
  obs::FlightRecorder::global().record(
      obs::FlightEventKind::kRequest, "serve.request", trace,
      flight_start_us, static_cast<double>(wall_us),
      static_cast<std::int64_t>(jobs.size()));

  if (opts_.slow_us >= 0 && wall_us >= opts_.slow_us) {
    m.slow.add(1);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++counters_.slow;
    }
    bench::JsonWriter sl;
    sl.begin_object();
    sl.field("ev", "slow_request");
    sl.field("trace_id", trace);
    sl.field("client", static_cast<std::int64_t>(conn_id));
    sl.field("wall_us", wall_us);
    sl.field("jobs", static_cast<std::int64_t>(jobs.size()));
    sl.field("deduped", deduped);
    sl.field("failed", failed);
    sl.key("job_stages").begin_array();
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      const JobStages& js = job_stages[i];
      sl.begin_object();
      sl.field("id", jobs[i].id);
      sl.field("kind",
               runtime::kind_name(runtime::job_kind(jobs[i].job)));
      sl.field("admission_us", js.admission_us);
      sl.field("queue_us", js.queue_us);
      sl.field("hot_us", js.hot_us);
      sl.field("disk_us", js.disk_us);
      sl.field("compute_us", js.compute_us);
      sl.field("store_us", js.store_us);
      sl.field("serialize_us", js.serialize_us);
      sl.field("total_us", js.total_us());
      sl.end_object();
    }
    sl.end_array();
    sl.end_object();
    log_slow_request(sl.str());
  }

  m.inflight.add(-1);
  m.requests.add(1);
  m.request_us.observe(wall_us);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++counters_.requests;
    if (failed > 0) ++counters_.errors;
  }
  span.attr("wall_s", wall).attr("deduped", deduped);
  return w.str();
}

}  // namespace csdac::serve
