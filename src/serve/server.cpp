#include "serve/server.hpp"

#include <algorithm>
#include <chrono>
#include <map>
#include <stdexcept>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "serve/request.hpp"
#include "serve/response.hpp"

namespace csdac::serve {

namespace {

struct ServeMetrics {
  obs::Counter& connections;
  obs::Counter& requests;
  obs::Counter& errors;
  obs::Counter& rejected;
  obs::Gauge& active;
  obs::Gauge& inflight;
  obs::Histogram& request_us;

  static ServeMetrics& get() {
    obs::Registry& r = obs::Registry::global();
    static ServeMetrics m{
        r.counter("serve.connections", "connections accepted"),
        r.counter("serve.requests", "design requests answered"),
        r.counter("serve.errors", "error frames sent"),
        r.counter("serve.rejected", "connections refused at the cap"),
        r.gauge("serve.connections_active", "connections open right now"),
        r.gauge("serve.requests_inflight", "requests being handled"),
        r.histogram("serve.request_us", "request handling latency [us]"),
    };
    return m;
  }
};

}  // namespace

Server::Server(ServerOptions opts) : opts_(std::move(opts)) {
  sched_ = std::make_unique<runtime::Scheduler>(opts_.sched);

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw std::runtime_error("serve: socket() failed");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(opts_.port));
  if (::inet_pton(AF_INET, opts_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    throw std::runtime_error("serve: bad listen address " + opts_.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    ::close(listen_fd_);
    throw std::runtime_error("serve: cannot bind " + opts_.host + ":" +
                             std::to_string(opts_.port));
  }
  if (::listen(listen_fd_, 64) != 0) {
    ::close(listen_fd_);
    throw std::runtime_error("serve: listen() failed");
  }
  sockaddr_in bound{};
  socklen_t blen = sizeof(bound);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &blen);
  port_ = static_cast<int>(ntohs(bound.sin_port));
}

Server::~Server() { stop(); }

void Server::start() {
  bool expected = false;
  if (!running_.compare_exchange_strong(expected, true)) return;
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void Server::stop() {
  if (running_.exchange(false)) {
    // Unblock poll() promptly; the accept loop also checks running_.
    ::shutdown(listen_fd_, SHUT_RDWR);
    accept_thread_.join();
  }
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
    threads.swap(conn_threads_);
  }
  for (auto& t : threads) t.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_requested_.store(true, std::memory_order_release);
  }
  cv_stop_.notify_all();
}

void Server::wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_stop_.wait(lock,
                [this] { return stop_requested_.load(std::memory_order_acquire); });
}

ServerCounters Server::counters() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return counters_;
}

void Server::accept_loop() {
  ServeMetrics& m = ServeMetrics::get();
  while (running_.load(std::memory_order_acquire)) {
    pollfd p{listen_fd_, POLLIN, 0};
    const int r = ::poll(&p, 1, 200);
    if (r <= 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

    std::lock_guard<std::mutex> lock(mutex_);
    if (!running_.load(std::memory_order_acquire)) {
      ::close(fd);
      break;
    }
    if (active_ >= opts_.max_connections) {
      write_frame(fd, error_frame("busy", "connection limit reached"));
      ::close(fd);
      ++counters_.rejected;
      m.rejected.add(1);
      continue;
    }
    const std::uint64_t id = next_conn_id_++;
    ++active_;
    ++counters_.connections;
    m.connections.add(1);
    m.active.set(static_cast<double>(active_));
    conn_fds_.push_back(fd);
    conn_threads_.emplace_back(
        [this, fd, id] { handle_connection(fd, id); });
  }
}

void Server::handle_connection(int fd, std::uint64_t conn_id) {
  ServeMetrics& m = ServeMetrics::get();
  std::string payload;
  for (;;) {
    const FrameStatus st = read_frame(fd, payload, opts_.max_frame_bytes);
    if (st == FrameStatus::kClosed) break;
    if (st != FrameStatus::kOk) {
      // The stream position is unknowable after a framing error: answer
      // best-effort and drop the connection (payload errors, by
      // contrast, are clean frames and keep the session below).
      write_frame(fd, error_frame(frame_status_name(st),
                                  "framing error, closing connection"));
      std::lock_guard<std::mutex> lock(mutex_);
      ++counters_.errors;
      m.errors.add(1);
      break;
    }

    bool shutdown_after = false;
    const std::string reply =
        handle_payload(payload, conn_id, &shutdown_after);
    const bool sent = write_frame(fd, reply);
    if (shutdown_after) {
      {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_requested_.store(true, std::memory_order_release);
      }
      cv_stop_.notify_all();
      break;
    }
    if (!sent) break;
  }

  ::close(fd);
  std::lock_guard<std::mutex> lock(mutex_);
  conn_fds_.erase(std::remove(conn_fds_.begin(), conn_fds_.end(), fd),
                  conn_fds_.end());
  --active_;
  m.active.set(static_cast<double>(active_));
}

std::string Server::handle_payload(const std::string& payload,
                                   std::uint64_t conn_id,
                                   bool* shutdown_after) {
  ServeMetrics& m = ServeMetrics::get();
  runtime::JsonValue request;
  std::string err;
  if (!runtime::parse_json(payload, request, &err)) {
    std::lock_guard<std::mutex> lock(mutex_);
    ++counters_.errors;
    m.errors.add(1);
    return error_frame("bad_json", err);
  }
  const std::string schema = request.string_or("schema", "");
  if (schema == kControlSchema) {
    return handle_control(request, shutdown_after);
  }

  try {
    return handle_request(request, conn_id);
  } catch (const RequestError& e) {
    std::lock_guard<std::mutex> lock(mutex_);
    ++counters_.errors;
    m.errors.add(1);
    return error_frame(e.code(), e.what());
  } catch (const std::exception& e) {
    std::lock_guard<std::mutex> lock(mutex_);
    ++counters_.errors;
    m.errors.add(1);
    return error_frame("internal", e.what());
  }
}

std::string Server::handle_control(const runtime::JsonValue& request,
                                   bool* shutdown_after) {
  const std::string cmd = request.string_or("cmd", "");
  if (cmd != "ping" && cmd != "metrics" && cmd != "shutdown") {
    std::lock_guard<std::mutex> lock(mutex_);
    ++counters_.errors;
    ServeMetrics::get().errors.add(1);
    return error_frame("bad_ctl", "unknown ctl cmd '" + cmd + "'");
  }
  bench::JsonWriter w;
  w.begin_object();
  w.field("schema", kControlSchema);
  w.field("cmd", cmd);
  w.field("ok", true);
  if (cmd == "ping") {
    w.field("workers", sched_->workers());
    w.field("inflight", sched_->inflight());
  } else if (cmd == "metrics") {
    w.field("prometheus", obs::Registry::global().snapshot().to_prometheus());
  } else {
    *shutdown_after = true;
  }
  w.end_object();
  return w.str();
}

std::string Server::handle_request(const runtime::JsonValue& request,
                                   std::uint64_t conn_id) {
  ServeMetrics& m = ServeMetrics::get();
  const std::vector<RequestJob> jobs = parse_request(request);
  const bool want_metrics = request.bool_or("metrics", false);

  obs::ScopedSpan span("serve.request");
  span.attr("client", static_cast<std::int64_t>(conn_id))
      .attr("jobs", static_cast<std::int64_t>(jobs.size()));
  m.inflight.add(1);
  const auto t0 = std::chrono::steady_clock::now();

  // Submit everything before waiting on anything: within one request the
  // scheduler's in-flight dedup folds duplicates, and across requests two
  // clients asking the same question share one execution.
  std::vector<runtime::Scheduler::Ticket> tickets;
  tickets.reserve(jobs.size());
  for (const RequestJob& e : jobs) {
    tickets.push_back(sched_->submit(e.job, conn_id, e.id));
  }

  bench::JsonWriter w;
  w.begin_object();
  w.field("schema", kResponseSchema);
  w.key("jobs").begin_array();
  std::int64_t deduped = 0, failed = 0, chip_evals = 0;
  std::map<mathx::HashKey128, bool> counted;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const runtime::Scheduler::Ticket& t = tickets[i];
    w.begin_object();
    w.field("id", jobs[i].id);
    w.field("kind",
            runtime::kind_name(runtime::job_kind(jobs[i].job)));
    w.field("key", t.key.hex());
    deduped += t.deduped ? 1 : 0;
    try {
      const runtime::Scheduler::ResultPtr res = t.future.get();
      w.field("cache", runtime::tier_name(res->tier));
      w.field("deduped", t.deduped);
      w.field("wall_s", res->wall_seconds);
      w.field("evaluated", res->stats.evaluated);
      emit_result(w, res->value);
      if (counted.emplace(t.key, true).second) {
        chip_evals += res->stats.evaluated;
      }
    } catch (const std::exception& e) {
      ++failed;
      w.key("error").begin_object();
      w.field("code", "job_failed");
      w.field("message", e.what());
      w.end_object();
    }
    w.end_object();
  }
  w.end_array();

  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  w.key("summary").begin_object();
  w.field("requested", static_cast<std::int64_t>(jobs.size()));
  w.field("deduped", deduped);
  w.field("failed", failed);
  w.field("chip_evals", chip_evals);
  w.field("wall_s", wall);
  w.end_object();
  if (want_metrics) {
    w.key("metrics").raw(obs::Registry::global().snapshot().to_json());
  }
  w.end_object();

  m.inflight.add(-1);
  m.requests.add(1);
  m.request_us.observe(static_cast<std::int64_t>(wall * 1e6));
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++counters_.requests;
    if (failed > 0) ++counters_.errors;
  }
  span.attr("wall_s", wall).attr("deduped", deduped);
  return w.str();
}

}  // namespace csdac::serve
