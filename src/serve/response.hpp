// Shared result emission for the design service: the per-kind JSON body
// under each job's "result" key, identical between the batch response
// ("csdac-serve/2") and the network server's reply frames
// ("csdac-serve/4") so clients parse one shape regardless of transport.
//
// serve/4 (over serve/3) adds request-scoped tracing: every reply carries
// the request's "trace_id" (client-supplied or server-minted) and every
// job entry a "stages" object attributing its latency to admission /
// queue / hot / disk / compute / store / serialize, microseconds.
#pragma once

#include "bench_json.hpp"
#include "runtime/job.hpp"

namespace csdac::serve {

/// Network reply schema of server.* (one frame per request).
inline constexpr std::string_view kResponseSchema = "csdac-serve/4";
/// Control-channel schema (ping / metrics / shutdown / dump).
inline constexpr std::string_view kControlSchema = "csdac-ctl/1";

/// Writes `"result": { ...kind-specific fields... }` for the value.
void emit_result(bench::JsonWriter& w, const runtime::JobValue& value);

/// Writes a complete "csdac-serve/4" error frame body:
/// {"schema":...,"error":{"code":...,"message":...}}.
std::string error_frame(std::string_view code, std::string_view message);

}  // namespace csdac::serve
