// Shared request parsing for the design service ("csdac-request/1"):
// one parser used by BOTH the batch front end (tools/csdac_serve on a
// file) and the network server (src/serve/server.*, on frames from
// untrusted sockets). Every schema violation throws RequestError with a
// stable machine-readable code, so the server can answer a structured
// error frame and keep serving — nothing in here calls exit().
//
// Because the network path feeds this parser hostile bytes, all count-like
// fields are clamped against explicit ceilings (kMax*) before they can
// size an allocation or a Monte-Carlo loop.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "runtime/job.hpp"
#include "runtime/json.hpp"

namespace csdac::serve {

inline constexpr std::string_view kRequestSchema = "csdac-request/1";

// Abuse ceilings for count-like request fields. Generous for real use
// (the paper's studies run ~1e3 chips and 40-step axes) but small enough
// that a hostile request cannot size an unbounded allocation or loop.
inline constexpr std::int64_t kMaxJobsPerRequest = 4096;
/// Client-supplied trace ids are capped so they embed whole in the
/// fixed-size flight-recorder events (kFlightTraceBytes minus the NUL).
inline constexpr std::size_t kMaxTraceIdBytes = 39;
inline constexpr std::int64_t kMaxChips = 10'000'000;
inline constexpr std::int64_t kMaxAxisSteps = 2048;
inline constexpr std::int64_t kMaxSamples = 1 << 22;
inline constexpr std::int64_t kMaxStrata = 4096;
inline constexpr std::int64_t kMaxIsModes = 64;
inline constexpr double kMaxSigmaScale = 8.0;
// Arch jobs synthesize oversampled waveforms (n_samples * oversample
// points each), so their ceilings are much tighter than the static MC's.
inline constexpr std::int64_t kMaxDynChips = 4096;
inline constexpr std::int64_t kMaxArchChips = 10'000;
inline constexpr std::int64_t kMaxDynSamples = 1 << 14;
inline constexpr std::int64_t kMaxWavePoints = 1 << 20;
inline constexpr std::int64_t kMaxArchBits = 14;
// SPICE-in-the-loop MC solves 2^nbits MNA systems per corner, so both the
// resolution and the corner count get much tighter ceilings than the
// behavioral MC paths.
inline constexpr std::int64_t kMaxSpiceBits = 8;
inline constexpr std::int64_t kMaxSpiceChips = 64;

/// Request-level failure with a stable error code for the wire protocol:
/// "bad_json", "bad_schema", "bad_request" (request envelope), or
/// "bad_job" (a job object's kind/fields/spec).
class RequestError : public std::runtime_error {
 public:
  RequestError(std::string code, const std::string& message)
      : std::runtime_error(message), code_(std::move(code)) {}
  const std::string& code() const { return code_; }

 private:
  std::string code_;
};

/// One entry of a parsed request, in request order (duplicates NOT folded
/// here — dedup is the graph's / scheduler's job).
struct RequestJob {
  std::string id;  ///< caller's "id", or "jobN" by position
  runtime::Job job;
};

/// Parses a single job object. Throws RequestError("bad_job", ...).
runtime::Job parse_job(const runtime::JsonValue& job);

/// Validates the envelope (schema tag, jobs array) and parses every job.
std::vector<RequestJob> parse_request(const runtime::JsonValue& request);

/// parse_json + parse_request; throws RequestError("bad_json", ...) on
/// malformed text.
std::vector<RequestJob> parse_request_text(const std::string& text);

}  // namespace csdac::serve
