// Persistent concurrent design server: a length-framed TCP listener
// (framing.hpp) that parses "csdac-request/1" payloads (request.hpp) into
// jobs on ONE long-lived shared Scheduler, so any number of concurrent
// clients multiplex over one worker pool, one in-memory hot tier and one
// disk cache — with cross-request single-flight dedup and per-client
// admission control inherited from the scheduler.
//
// Connection model: one thread per connection (bounded by
// max_connections; excess connections get a "busy" error frame and are
// closed). Framing errors answer a best-effort error frame and drop the
// connection; payload errors (bad JSON, bad schema, bad job fields)
// answer a structured "csdac-serve/4" error frame and KEEP the
// connection open — one malformed request never takes down a client's
// session, let alone the server.
//
// Control channel ("csdac-ctl/1" payloads on the same port):
//   {"schema":"csdac-ctl/1","cmd":"ping"}      liveness probe
//   {"schema":"csdac-ctl/1","cmd":"metrics"}   Prometheus text dump
//   {"schema":"csdac-ctl/1","cmd":"dump"}      flight-recorder Chrome trace
//   {"schema":"csdac-ctl/1","cmd":"shutdown"}  ack, then wake wait()
//
// Tracing: every design request carries a trace id — the caller's
// "trace_id" field when given (<= 64 chars), a server-minted
// "sv-<conn>-<n>" otherwise — echoed in the reply and attached to the
// serve.request span, the scheduler's sched.job span, and the executor's
// exec.job span, so one id follows the request across every thread that
// touched it. Each job's reply entry carries a per-stage latency
// breakdown (see response.hpp), every stage is also observed into
// serve.stage_us{kind,stage} labeled histograms, and requests slower
// than ServerOptions::slow_us land in a structured JSONL slow log with
// the full breakdown. Every request/error additionally drops a
// fixed-size event into the obs flight recorder for post-hoc dumps.
//
// Observability: serve.connections / serve.connections_active /
// serve.requests / serve.requests_inflight / serve.errors /
// serve.slow_requests plus the serve.request_us latency histogram, and a
// serve.request span per request — all in the process-wide obs registry,
// exported by the csdac_serve tool's --metrics-out or the ctl metrics
// command.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "runtime/json.hpp"
#include "runtime/scheduler.hpp"
#include "serve/framing.hpp"

namespace csdac::serve {

struct ServerOptions {
  /// Listen address. Loopback by default: the service speaks a private
  /// protocol and sits behind clients on the same host.
  std::string host = "127.0.0.1";
  /// 0 picks an ephemeral port; read it back with port().
  int port = 0;
  /// Hard cap on simultaneous connections; excess are answered with a
  /// "busy" error frame and closed.
  int max_connections = 64;
  std::uint32_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// Tail-sampling threshold, microseconds: requests whose handling takes
  /// at least this long are written to the slow log with their full stage
  /// breakdown. 0 samples every request; negative (default) disables.
  std::int64_t slow_us = -1;
  /// JSONL file receiving sampled slow requests (appended, one object per
  /// line). Empty leaves sampling active (counter + flight recorder) but
  /// writes no file.
  std::string slow_log;
  runtime::SchedulerOptions sched;
};

struct ServerCounters {
  std::int64_t connections = 0;  ///< accepted, lifetime
  std::int64_t requests = 0;     ///< design requests answered (ok or error)
  std::int64_t errors = 0;       ///< error frames sent (payload or framing)
  std::int64_t rejected = 0;     ///< connections refused at the cap
  std::int64_t slow = 0;         ///< requests sampled into the slow log
};

class Server {
 public:
  /// Binds and listens (throws std::runtime_error on failure) but does
  /// not accept yet — call start().
  explicit Server(ServerOptions opts);
  /// stop()s if still running.
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Starts the accept loop (idempotent).
  void start();
  /// Stops accepting, shuts down open connections, joins every thread.
  /// Safe to call repeatedly; never called from a connection thread.
  void stop();
  /// Blocks until a ctl shutdown arrives or stop() is called elsewhere.
  void wait();
  /// True once a ctl shutdown was acknowledged (or stop() ran). Lets a
  /// driver poll alongside its own signal flags instead of blocking.
  bool shutdown_requested() const {
    return stop_requested_.load(std::memory_order_acquire);
  }

  /// The port actually bound (resolves opts.port == 0).
  int port() const { return port_; }
  runtime::Scheduler& scheduler() { return *sched_; }
  ServerCounters counters() const;
  bool running() const { return running_.load(std::memory_order_acquire); }

 private:
  void accept_loop();
  void handle_connection(int fd, std::uint64_t conn_id);
  /// One payload in, one reply payload out. Never throws. Sets
  /// *shutdown_after when the reply acknowledges a ctl shutdown (the
  /// connection thread wakes wait() only AFTER writing the ack).
  std::string handle_payload(const std::string& payload,
                             std::uint64_t conn_id, bool* shutdown_after);
  std::string handle_control(const runtime::JsonValue& request,
                             bool* shutdown_after);
  std::string handle_request(const runtime::JsonValue& request,
                             std::uint64_t conn_id);
  /// Appends one JSONL record for a sampled slow request (no-op without a
  /// slow log file). Serialized internally.
  void log_slow_request(const std::string& line);

  ServerOptions opts_;
  std::unique_ptr<runtime::Scheduler> sched_;
  int listen_fd_ = -1;
  int port_ = 0;

  std::atomic<bool> running_{false};
  std::atomic<bool> stop_requested_{false};
  std::thread accept_thread_;

  mutable std::mutex mutex_;
  std::condition_variable cv_stop_;
  std::vector<std::thread> conn_threads_;
  std::vector<int> conn_fds_;  ///< open connection fds (for shutdown())
  std::int64_t active_ = 0;
  std::uint64_t next_conn_id_ = 1;
  ServerCounters counters_;

  std::atomic<std::uint64_t> trace_seq_{0};  ///< minted trace-id suffix
  std::mutex slow_mutex_;
  std::FILE* slow_file_ = nullptr;  ///< open slow log (owned)
};

}  // namespace csdac::serve
