// Minimal blocking client for the design server: connect, send one
// JSON payload per call(), read one reply frame. Used by the loadgen
// tool and the serve test-suite; hostile-protocol tests reach the raw
// socket through fd() / send_raw() to write deliberately broken bytes.
#pragma once

#include <cstddef>
#include <string>

#include "serve/framing.hpp"

namespace csdac::serve {

class Client {
 public:
  Client() = default;
  ~Client() { close(); }

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  Client(Client&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Client& operator=(Client&& other) noexcept;

  /// Connects to host:port. On failure returns false and stores a
  /// message in *err when non-null.
  bool connect(const std::string& host, int port, std::string* err = nullptr);
  void close();
  bool connected() const { return fd_ >= 0; }

  /// One round trip: frame `payload` out, read one reply frame into
  /// `reply`. Any non-kOk status leaves the connection unusable for
  /// framed traffic (the server drops it on framing errors too).
  FrameStatus call(const std::string& payload, std::string& reply,
                   std::uint32_t max_reply_bytes = kDefaultMaxFrameBytes);

  /// Sends a frame without waiting for the reply (pipelining / tests).
  bool send(const std::string& payload);
  /// Reads one reply frame (pairs with send()).
  FrameStatus recv(std::string& reply,
                   std::uint32_t max_reply_bytes = kDefaultMaxFrameBytes);

  /// Writes raw bytes, bypassing framing — for protocol-robustness tests
  /// (bad magic, truncated frames, garbage). False on error.
  bool send_raw(const void* data, std::size_t n);

  int fd() const { return fd_; }

 private:
  int fd_ = -1;
};

}  // namespace csdac::serve
