#include "serve/request.hpp"

#include <algorithm>
#include <cmath>

#include "arch/weighting.hpp"
#include "core/accuracy.hpp"
#include "tech/tech.hpp"

namespace csdac::serve {

namespace {

[[noreturn]] void bad_job(const std::string& msg) {
  throw RequestError("bad_job", msg);
}

std::int64_t bounded_int(const runtime::JsonValue& job, std::string_view key,
                         std::int64_t def, std::int64_t lo, std::int64_t hi) {
  const std::int64_t v = job.int_or(key, def);
  if (v < lo || v > hi) {
    bad_job("'" + std::string(key) + "' out of range [" + std::to_string(lo) +
            ", " + std::to_string(hi) + "]");
  }
  return v;
}

/// Range- and finiteness-checked number field. JSON cannot spell inf/nan
/// literally, but "1e999" parses to +inf — without this check such a value
/// sails through every one-sided comparison and asserts server-side
/// instead of answering a structured error.
double bounded_number(const runtime::JsonValue& job, std::string_view key,
                      double def, double lo, double hi) {
  const double v = job.number_or(key, def);
  if (!std::isfinite(v) || v < lo || v > hi) {
    bad_job("'" + std::string(key) + "' must be a finite number in [" +
            std::to_string(lo) + ", " + std::to_string(hi) + "]");
  }
  return v;
}

core::DacSpec parse_spec(const runtime::JsonValue& job) {
  core::DacSpec spec;  // paper's 12-bit defaults
  if (const auto* s = job.find("spec")) {
    if (!s->is_object()) bad_job("'spec' must be an object");
    spec.nbits = static_cast<int>(s->int_or("nbits", spec.nbits));
    spec.binary_bits =
        static_cast<int>(s->int_or("binary_bits", spec.binary_bits));
    spec.vdd = s->number_or("vdd", spec.vdd);
    spec.v_swing = s->number_or("v_swing", spec.v_swing);
    spec.v_out_min = s->number_or("v_out_min", spec.v_out_min);
    spec.r_load = s->number_or("r_load", spec.r_load);
    spec.c_load = s->number_or("c_load", spec.c_load);
    spec.c_int = s->number_or("c_int", spec.c_int);
    spec.inl_yield = s->number_or("inl_yield", spec.inl_yield);
    spec.r_load_tol = s->number_or("r_load_tol", spec.r_load_tol);
  }
  try {
    spec.validate();
  } catch (const std::exception& e) {
    bad_job(std::string("bad spec: ") + e.what());
  }
  return spec;
}

double parse_sigma(const runtime::JsonValue& job, const core::DacSpec& spec,
                   double def_mult) {
  if (const auto* abs = job.find("sigma_unit")) {
    if (!abs->is_number() || abs->num < 0) bad_job("bad sigma_unit");
    return abs->num;
  }
  const double mult = job.number_or("sigma_mult", def_mult);
  if (mult < 0) bad_job("bad sigma_mult");
  return mult * core::unit_sigma_spec(spec.nbits, spec.inl_yield);
}

core::GridAxis parse_axis(const runtime::JsonValue& job, const char* key) {
  core::GridAxis a;
  if (const auto* ax = job.find(key)) {
    if (!ax->is_object()) {
      bad_job(std::string("'") + key + "' must be an object");
    }
    a.lo = ax->number_or("lo", a.lo);
    a.hi = ax->number_or("hi", a.hi);
    a.steps = static_cast<int>(ax->int_or("steps", a.steps));
  }
  if (a.steps < 1 || a.steps > kMaxAxisSteps || !(a.lo <= a.hi)) {
    bad_job(std::string("bad axis ") + key);
  }
  return a;
}

core::MarginPolicy parse_policy(const runtime::JsonValue& job) {
  const std::string p = job.string_or("policy", "statistical");
  if (p == "none") return core::MarginPolicy::kNone;
  if (p == "fixed") return core::MarginPolicy::kFixedMargin;
  if (p == "statistical") return core::MarginPolicy::kStatistical;
  bad_job("bad policy '" + p + "'");
}

dac::InlReference parse_ref(const runtime::JsonValue& job) {
  const std::string ref = job.string_or("ref", "bestfit");
  if (ref == "endpoint") return dac::InlReference::kEndpoint;
  if (ref == "bestfit") return dac::InlReference::kBestFit;
  bad_job("bad ref '" + ref + "'");
}

tech::MosTechParams parse_tech(const runtime::JsonValue& job) {
  const std::string t = job.string_or("tech", "generic_035um");
  if (t == "generic_035um") return tech::generic_035um().nmos;
  if (t == "generic_025um") return tech::generic_025um().nmos;
  bad_job("bad tech '" + t + "'");
}

/// Shared parse of the arch-job timing fields + record shape. The waveform
/// cost is n_samples * oversample points per chip, so both are capped and
/// their product is checked against the same ceiling as "spectrum".
arch::TimingParams parse_timing(const runtime::JsonValue& job,
                                int n_samples) {
  arch::TimingParams t;
  t.fs = bounded_number(job, "fs", t.fs, 1.0, 1e12);
  t.oversample =
      static_cast<int>(bounded_int(job, "oversample", t.oversample, 2, 256));
  t.tau = bounded_number(job, "tau", t.tau, 1e-15, 1.0);
  t.sigma_t = bounded_number(job, "sigma_t", 0.0, 0.0, 1.0);
  t.asym_sigma = bounded_number(job, "asym_sigma", 0.0, 0.0, 1.0);
  try {
    t.validate();  // cross-field rules (sigma vs period)
  } catch (const std::exception& e) {
    bad_job(std::string("bad timing params: ") + e.what());
  }
  if (static_cast<std::int64_t>(n_samples) * t.oversample > kMaxWavePoints) {
    bad_job("n_samples * oversample exceeds the waveform ceiling");
  }
  return t;
}

/// Record shape shared by dyn_spectrum / arch_compare: cycles must leave
/// the fundamental strictly inside the first Nyquist zone.
int parse_cycles(const runtime::JsonValue& job, int n_samples, int def) {
  return static_cast<int>(
      bounded_int(job, "cycles", def, 1, n_samples / 2 - 1));
}

arch::WeightingKind parse_scheme(const runtime::JsonValue& job) {
  const std::string s = job.string_or("scheme", "segmented");
  arch::WeightingKind kind;
  if (!arch::parse_weighting_kind(s, kind)) {
    bad_job("bad scheme '" + s + "'");
  }
  return kind;
}

}  // namespace

runtime::Job parse_job(const runtime::JsonValue& job) {
  if (!job.is_object()) bad_job("job entries must be objects");
  const std::string kind = job.string_or("kind", "");
  const core::DacSpec spec = parse_spec(job);

  if (kind == "inl_yield" || kind == "dnl_yield") {
    runtime::InlYieldJob j;
    j.spec = spec;
    j.sigma_unit = parse_sigma(job, spec, 1.0);
    j.chips = static_cast<int>(bounded_int(job, "chips", 1000, 1, kMaxChips));
    j.seed = static_cast<std::uint64_t>(job.int_or("seed", 1000));
    j.limit = job.number_or("limit", 0.5);
    j.dnl = kind == "dnl_yield";
    j.ref = parse_ref(job);
    j.adaptive = job.bool_or("adaptive", false);
    j.min_chips = static_cast<int>(
        bounded_int(job, "min_chips", j.min_chips, 1, kMaxChips));
    j.batch =
        static_cast<int>(bounded_int(job, "batch", j.batch, 1, kMaxChips));
    j.ci_half_width = job.number_or("ci_half_width", j.ci_half_width);
    return j;
  }
  if (kind == "cal_yield") {
    runtime::CalYieldJob j;
    j.spec = spec;
    j.sigma_unit = parse_sigma(job, spec, 1.0);
    j.cal.range_lsb = job.number_or("cal_range_lsb", j.cal.range_lsb);
    j.cal.bits = static_cast<int>(
        bounded_int(job, "cal_bits", j.cal.bits, 1, 24));
    j.cal.measure_noise_lsb =
        job.number_or("cal_noise_lsb", j.cal.measure_noise_lsb);
    j.chips = static_cast<int>(bounded_int(job, "chips", 1000, 1, kMaxChips));
    j.seed = static_cast<std::uint64_t>(job.int_or("seed", 1000));
    j.limit = job.number_or("limit", 0.5);
    return j;
  }
  if (kind == "sweep_basic") {
    runtime::SweepBasicJob j;
    j.spec = spec;
    j.tech = parse_tech(job);
    j.cs = parse_axis(job, "cs");
    j.sw = parse_axis(job, "sw");
    j.policy = parse_policy(job);
    j.fixed_margin = job.number_or("fixed_margin", j.fixed_margin);
    return j;
  }
  if (kind == "sweep_cascode") {
    runtime::SweepCascodeJob j;
    j.spec = spec;
    j.tech = parse_tech(job);
    j.cs = parse_axis(job, "cs");
    j.sw = parse_axis(job, "sw");
    j.cas = parse_axis(job, "cas");
    j.policy = parse_policy(job);
    j.fixed_margin = job.number_or("fixed_margin", j.fixed_margin);
    const std::string agg = job.string_or("agg", "max");
    if (agg == "rss") j.agg = core::SigmaAggregation::kRss;
    else if (agg != "max") bad_job("bad agg '" + agg + "'");
    return j;
  }
  if (kind == "spectrum") {
    runtime::SpectrumJob j;
    j.spec = spec;
    // Spectrum questions default to the mismatch-free converter; ask for
    // matching effects with sigma_mult/sigma_unit.
    j.sigma_unit = parse_sigma(job, spec, 0.0);
    j.seed = static_cast<std::uint64_t>(job.int_or("seed", 2003));
    j.dyn.fs = bounded_number(job, "fs", j.dyn.fs, 1.0, 1e12);
    j.dyn.oversample = static_cast<int>(
        bounded_int(job, "oversample", j.dyn.oversample, 2, 256));
    j.dyn.tau = bounded_number(job, "tau", j.dyn.tau, 1e-15, 1.0);
    j.dyn.rout_unit =
        bounded_number(job, "rout_unit", j.dyn.rout_unit, 1e-3, 1e18);
    j.dyn.binary_skew =
        bounded_number(job, "binary_skew", j.dyn.binary_skew, 0.0, 1.0);
    j.dyn.jitter_sigma =
        bounded_number(job, "jitter_sigma", j.dyn.jitter_sigma, 0.0, 1.0);
    j.dyn.feedthrough_lsb = bounded_number(job, "feedthrough_lsb",
                                           j.dyn.feedthrough_lsb, -1e3, 1e3);
    try {
      j.dyn.validate();  // cross-field rules (skew vs period, ...)
    } catch (const std::exception& e) {
      bad_job(std::string("bad dynamic params: ") + e.what());
    }
    j.n_samples = static_cast<int>(
        bounded_int(job, "n_samples", j.n_samples, 8, kMaxSamples));
    if (static_cast<std::int64_t>(j.n_samples) * j.dyn.oversample >
        kMaxWavePoints) {
      bad_job("n_samples * oversample exceeds the waveform ceiling");
    }
    j.cycles = static_cast<int>(
        bounded_int(job, "cycles", j.cycles, 1, kMaxSamples));
    j.differential = job.bool_or("differential", true);
    return j;
  }
  if (kind == "inl_yield_is") {
    runtime::InlYieldIsJob j;
    j.spec = spec;
    j.sigma_unit = parse_sigma(job, spec, 1.0);
    j.sigma_scale = job.number_or("sigma_scale", j.sigma_scale);
    if (!(j.sigma_scale >= 1.0 && j.sigma_scale <= kMaxSigmaScale)) {
      bad_job("'sigma_scale' out of range [1, 8]");
    }
    j.modes = static_cast<int>(bounded_int(job, "modes", j.modes, 1,
                                           kMaxIsModes));
    j.chips = static_cast<int>(bounded_int(job, "chips", 1000, 1, kMaxChips));
    j.seed = static_cast<std::uint64_t>(job.int_or("seed", 1000));
    j.limit = job.number_or("limit", 0.5);
    j.ref = parse_ref(job);
    return j;
  }
  if (kind == "inl_yield_strat") {
    runtime::InlYieldStratJob j;
    j.spec = spec;
    j.sigma_unit = parse_sigma(job, spec, 1.0);
    j.strata =
        static_cast<int>(bounded_int(job, "strata", j.strata, 1, kMaxStrata));
    j.chips = static_cast<int>(bounded_int(job, "chips", 1000, 2, kMaxChips));
    if (j.chips / 2 < j.strata) bad_job("fewer chip pairs than strata");
    if (spec.num_unary() < 2) {
      bad_job("inl_yield_strat needs a thermometer segment (num_unary >= 2)");
    }
    j.seed = static_cast<std::uint64_t>(job.int_or("seed", 1000));
    j.limit = job.number_or("limit", 0.5);
    j.ref = parse_ref(job);
    return j;
  }
  if (kind == "dyn_spectrum") {
    runtime::DynSpectrumJob j;
    j.spec = spec;
    if (spec.nbits > kMaxArchBits) {
      bad_job("dyn_spectrum supports nbits <= " +
              std::to_string(kMaxArchBits));
    }
    j.scheme = parse_scheme(job);
    j.scheme_param = static_cast<int>(
        bounded_int(job, "scheme_param", 0, 0, (1 << spec.nbits) - 1));
    if ((j.scheme == arch::WeightingKind::kBinary ||
         j.scheme == arch::WeightingKind::kUnary) &&
        j.scheme_param != 0) {
      bad_job("scheme_param only applies to segmented/optimized schemes");
    }
    if (j.scheme == arch::WeightingKind::kSegmented &&
        j.scheme_param >= spec.nbits) {
      bad_job("segmented scheme_param must be < nbits");
    }
    if (j.scheme == arch::WeightingKind::kOptimized &&
        j.scheme_param != 0 && j.scheme_param < spec.nbits) {
      bad_job("optimized scheme_param (cell budget) must be >= nbits");
    }
    j.n_samples = static_cast<int>(
        bounded_int(job, "n_samples", j.n_samples, 32, kMaxDynSamples));
    j.cycles = parse_cycles(job, j.n_samples, j.cycles);
    j.timing = parse_timing(job, j.n_samples);
    j.sfdr_limit_db =
        bounded_number(job, "sfdr_limit_db", j.sfdr_limit_db, 0.0, 200.0);
    j.chips =
        static_cast<int>(bounded_int(job, "chips", j.chips, 1, kMaxDynChips));
    j.seed = static_cast<std::uint64_t>(job.int_or("seed", 1000));
    j.adaptive = job.bool_or("adaptive", false);
    j.min_chips = static_cast<int>(
        bounded_int(job, "min_chips", j.min_chips, 1, kMaxDynChips));
    j.batch = static_cast<int>(
        bounded_int(job, "batch", j.batch, 1, kMaxDynChips));
    j.ci_half_width =
        bounded_number(job, "ci_half_width", j.ci_half_width, 0.0, 1.0);
    return j;
  }
  if (kind == "arch_compare") {
    runtime::ArchCompareJob j;
    j.spec = spec;
    if (spec.nbits > kMaxArchBits) {
      bad_job("arch_compare supports nbits <= " +
              std::to_string(kMaxArchBits));
    }
    j.sigma_unit = parse_sigma(job, spec, 1.0);
    j.n_samples = static_cast<int>(
        bounded_int(job, "n_samples", j.n_samples, 32, kMaxDynSamples));
    j.cycles = parse_cycles(job, j.n_samples, j.cycles);
    j.timing = parse_timing(job, j.n_samples);
    j.chips = static_cast<int>(
        bounded_int(job, "chips", j.chips, 1, kMaxArchChips));
    j.dyn_chips = static_cast<int>(
        bounded_int(job, "dyn_chips", j.dyn_chips, 1, 64));
    j.seed = static_cast<std::uint64_t>(job.int_or("seed", 1000));
    j.limit = bounded_number(job, "limit", j.limit, 1e-6, 1e3);
    j.seg_lo = static_cast<int>(
        bounded_int(job, "seg_lo", j.seg_lo, 1, spec.nbits - 1));
    j.seg_hi = static_cast<int>(
        bounded_int(job, "seg_hi", std::min(j.seg_hi, spec.nbits - 1), 1,
                    spec.nbits - 1));
    if (j.seg_hi < j.seg_lo) bad_job("seg_hi must be >= seg_lo");
    j.include_unary = job.bool_or("include_unary", false);
    if (j.include_unary && spec.nbits > 10) {
      bad_job("include_unary supports nbits <= 10 (cell count explodes)");
    }
    j.opt_cells = static_cast<int>(
        bounded_int(job, "opt_cells", 0, 0, (1 << spec.nbits) - 1));
    if (j.opt_cells != 0 && j.opt_cells < spec.nbits) {
      bad_job("opt_cells must be 0 (default) or >= nbits");
    }
    return j;
  }
  if (kind == "spice_mc") {
    runtime::SpiceMcJob j;
    j.spec = spec;
    if (spec.nbits > kMaxSpiceBits) {
      bad_job("spice_mc supports nbits <= " + std::to_string(kMaxSpiceBits));
    }
    j.tech = parse_tech(job);
    j.vod_cs = bounded_number(job, "vod_cs", j.vod_cs, 0.01, 2.0);
    j.vod_sw = bounded_number(job, "vod_sw", j.vod_sw, 0.01, 2.0);
    j.vod_cas = bounded_number(job, "vod_cas", j.vod_cas, 0.01, 2.0);
    j.cascode = job.bool_or("cascode", true);
    j.chips = static_cast<int>(
        bounded_int(job, "chips", j.chips, 1, kMaxSpiceChips));
    j.seed = static_cast<std::uint64_t>(job.int_or("seed", 1000));
    j.limit = bounded_number(job, "limit", j.limit, 1e-6, 1e3);
    j.sigma_scale =
        bounded_number(job, "sigma_scale", 1.0, 0.0, kMaxSigmaScale);
    j.differential = job.bool_or("differential", true);
    j.with_caps = job.bool_or("with_caps", false);
    return j;
  }
  if (kind == "inl_yield_bridge") {
    runtime::InlYieldBridgeJob j;
    j.spec = spec;
    j.sigma_unit = parse_sigma(job, spec, 1.0);
    if (!(j.sigma_unit > 0.0)) bad_job("inl_yield_bridge needs sigma > 0");
    j.limit = job.number_or("limit", 0.5);
    if (!(j.limit > 0.0)) bad_job("inl_yield_bridge needs limit > 0");
    return j;
  }
  bad_job("unknown job kind '" + kind + "'");
}

std::vector<RequestJob> parse_request(const runtime::JsonValue& request) {
  if (!request.is_object()) {
    throw RequestError("bad_request", "request must be a JSON object");
  }
  if (request.string_or("schema", "") != kRequestSchema) {
    throw RequestError("bad_schema", "request schema must be '" +
                                         std::string(kRequestSchema) + "'");
  }
  const auto* jobs = request.find("jobs");
  if (!jobs || !jobs->is_array() || jobs->arr.empty()) {
    throw RequestError("bad_request", "request has no jobs");
  }
  if (static_cast<std::int64_t>(jobs->arr.size()) > kMaxJobsPerRequest) {
    throw RequestError("bad_request",
                       "request exceeds " +
                           std::to_string(kMaxJobsPerRequest) + " jobs");
  }
  std::vector<RequestJob> out;
  out.reserve(jobs->arr.size());
  for (std::size_t i = 0; i < jobs->arr.size(); ++i) {
    RequestJob e;
    e.id = jobs->arr[i].is_object()
               ? jobs->arr[i].string_or("id", "job" + std::to_string(i))
               : "job" + std::to_string(i);
    e.job = parse_job(jobs->arr[i]);
    out.push_back(std::move(e));
  }
  return out;
}

std::vector<RequestJob> parse_request_text(const std::string& text) {
  runtime::JsonValue request;
  std::string err;
  if (!runtime::parse_json(text, request, &err)) {
    throw RequestError("bad_json", err);
  }
  return parse_request(request);
}

}  // namespace csdac::serve
