#include "serve/response.hpp"

#include <optional>
#include <type_traits>

#include "arch/weighting.hpp"
#include "core/explorer.hpp"

namespace csdac::serve {

void emit_result(bench::JsonWriter& w, const runtime::JobValue& value) {
  w.key("result").begin_object();
  std::visit(
      [&w](const auto& v) {
        using T = std::decay_t<decltype(v)>;
        if constexpr (std::is_same_v<T, runtime::YieldResult>) {
          w.field("chips", v.chips);
          w.field("pass", v.pass);
          w.field("yield", v.yield);
          w.field("ci95", v.ci95);
        } else if constexpr (std::is_same_v<T, runtime::CalYieldResult>) {
          w.field("chips", v.chips);
          w.field("yield_before", v.yield_before);
          w.field("yield_after", v.yield_after);
        } else if constexpr (std::is_same_v<T, runtime::SweepResult>) {
          w.field("points", static_cast<std::int64_t>(v.points.size()));
          std::int64_t feasible = 0;
          for (const auto& p : v.points) feasible += p.feasible ? 1 : 0;
          w.field("feasible", feasible);
          const auto emit_best =
              [&w](const char* name,
                   const std::optional<core::DesignPoint>& best) {
                if (!best) return;
                w.key(name).begin_object();
                w.field("vod_cs", best->vod_cs);
                w.field("vod_sw", best->vod_sw);
                w.field("vod_cas", best->vod_cas);
                w.field("area_m2", best->area);
                w.field("f_min_hz", best->f_min_hz);
                w.field("t_settle_s", best->t_settle_s);
                w.end_object();
              };
          emit_best("best_min_area",
                    core::DesignSpaceExplorer::select(
                        v.points, core::Objective::kMinArea));
          emit_best("best_max_speed",
                    core::DesignSpaceExplorer::select(
                        v.points, core::Objective::kMaxSpeed));
        } else if constexpr (std::is_same_v<T, runtime::SpectrumSummary>) {
          w.field("sfdr_db", v.sfdr_db);
          w.field("sndr_db", v.sndr_db);
          w.field("thd_db", v.thd_db);
          w.field("enob", v.enob);
        } else if constexpr (std::is_same_v<T, runtime::IsYieldResult>) {
          w.field("chips", v.chips);
          w.field("fails", v.fails);
          w.field("yield", v.yield);
          w.field("ci95", v.ci95);
          w.field("ess", v.ess);
          w.field("ess_fraction", v.ess_fraction);
          w.field("log_weight_max", v.log_weight_max);
          w.field("log_weight_min", v.log_weight_min);
          w.field("low_ess", v.low_ess);
        } else if constexpr (std::is_same_v<T, runtime::StratYieldResult>) {
          w.field("chips", v.chips);
          w.field("pairs", v.pairs);
          w.field("strata", static_cast<std::int64_t>(v.strata));
          w.field("yield", v.yield);
          w.field("ci95", v.ci95);
        } else if constexpr (std::is_same_v<T, runtime::BridgeYieldResult>) {
          w.field("yield", v.yield);
          w.field("c", v.c);
          w.field("sigma_inl", v.sigma_inl);
        } else if constexpr (std::is_same_v<T, runtime::DynSpectrumResult>) {
          w.field("chips", v.chips);
          w.field("pass", v.pass);
          w.field("yield", v.yield);
          w.field("ci95", v.ci95);
          w.field("sfdr_mean_db", v.sfdr_mean_db);
          w.field("sfdr_min_db", v.sfdr_min_db);
          w.field("sndr_mean_db", v.sndr_mean_db);
          w.field("ete_sfdr_mean_db", v.ete_sfdr_mean_db);
          w.field("cells", static_cast<std::int64_t>(v.cells));
        } else if constexpr (std::is_same_v<T, runtime::ArchCompareResult>) {
          w.field("points", static_cast<std::int64_t>(v.points.size()));
          w.key("architectures").begin_array();
          for (const auto& p : v.points) {
            w.begin_object();
            w.field("scheme",
                    arch::weighting_name(
                        static_cast<arch::WeightingKind>(p.scheme)));
            w.field("param", static_cast<std::int64_t>(p.param));
            w.field("cells", static_cast<std::int64_t>(p.cells));
            w.field("inl_yield", p.inl_yield);
            w.field("inl_ci95", p.inl_ci95);
            w.field("sfdr_db", p.sfdr_db);
            w.field("ete_sfdr_db", p.ete_sfdr_db);
            w.field("activity", p.activity);
            w.end_object();
          }
          w.end_array();
        } else if constexpr (std::is_same_v<T, runtime::SpiceMcResult>) {
          w.field("chips", v.chips);
          w.field("pass", v.pass);
          w.field("yield", v.yield);
          w.field("ci95", v.ci95);
          w.field("inl_mean", v.inl_mean);
          w.field("inl_worst", v.inl_worst);
          w.key("solver").begin_object();
          w.field("newton_iters", v.newton_iters);
          w.field("factorizations", v.factorizations);
          w.field("refactorizations", v.refactorizations);
          w.field("warm_starts", v.warm_starts);
          w.field("warm_start_hits", v.warm_start_hits);
          w.field("device_evals", v.device_evals);
          w.field("warm_start_hit_rate", v.warm_start_hit_rate);
          w.end_object();
        }
      },
      value);
  w.end_object();
}

std::string error_frame(std::string_view code, std::string_view message) {
  bench::JsonWriter w;
  w.begin_object();
  w.field("schema", kResponseSchema);
  w.key("error").begin_object();
  w.field("code", code);
  w.field("message", message);
  w.end_object();
  w.end_object();
  return w.str();
}

}  // namespace csdac::serve
