#include "serve/framing.hpp"

#include <cerrno>
#include <cstring>

#include <sys/socket.h>
#include <unistd.h>

namespace csdac::serve {

namespace {

/// Reads exactly `n` bytes. Returns n on success, 0 on immediate EOF,
/// -1 on EOF mid-read or errno failure (errno left for inspection).
ssize_t read_exact(int fd, void* buf, std::size_t n) {
  std::size_t got = 0;
  char* p = static_cast<char*>(buf);
  while (got < n) {
    const ssize_t r = ::read(fd, p + got, n - got);
    if (r == 0) return got == 0 ? 0 : -1;
    if (r < 0) {
      if (errno == EINTR) continue;
      return -1;
    }
    got += static_cast<std::size_t>(r);
  }
  return static_cast<ssize_t>(got);
}

bool write_exact(int fd, const void* buf, std::size_t n) {
  std::size_t put = 0;
  const char* p = static_cast<const char*>(buf);
  while (put < n) {
    ssize_t r = ::send(fd, p + put, n - put, MSG_NOSIGNAL);
    if (r < 0 && errno == ENOTSOCK) {
      r = ::write(fd, p + put, n - put);
    }
    if (r < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    put += static_cast<std::size_t>(r);
  }
  return true;
}

}  // namespace

std::string_view frame_status_name(FrameStatus s) {
  switch (s) {
    case FrameStatus::kOk: return "ok";
    case FrameStatus::kClosed: return "closed";
    case FrameStatus::kBadMagic: return "bad_magic";
    case FrameStatus::kTooLarge: return "frame_too_large";
    case FrameStatus::kTruncated: return "truncated_frame";
    case FrameStatus::kIoError: return "io_error";
  }
  return "unknown";
}

FrameStatus read_frame(int fd, std::string& payload,
                       std::uint32_t max_bytes) {
  unsigned char header[8];
  errno = 0;
  const ssize_t h = read_exact(fd, header, sizeof(header));
  if (h == 0) return FrameStatus::kClosed;
  if (h < 0) return errno == 0 ? FrameStatus::kTruncated
                               : FrameStatus::kIoError;
  if (std::memcmp(header, kFrameMagic, sizeof(kFrameMagic)) != 0) {
    return FrameStatus::kBadMagic;
  }
  const std::uint32_t len = static_cast<std::uint32_t>(header[4]) |
                            static_cast<std::uint32_t>(header[5]) << 8 |
                            static_cast<std::uint32_t>(header[6]) << 16 |
                            static_cast<std::uint32_t>(header[7]) << 24;
  if (len > max_bytes) return FrameStatus::kTooLarge;
  payload.resize(len);
  if (len > 0) {
    errno = 0;
    const ssize_t b = read_exact(fd, payload.data(), len);
    if (b != static_cast<ssize_t>(len)) {
      payload.clear();
      return errno == 0 || errno == ECONNRESET ? FrameStatus::kTruncated
                                               : FrameStatus::kIoError;
    }
  }
  return FrameStatus::kOk;
}

bool write_frame(int fd, std::string_view payload) {
  if (payload.size() > 0xffffffffu) return false;
  const std::uint32_t len = static_cast<std::uint32_t>(payload.size());
  // One buffered write per frame: header + payload in a single segment,
  // so Nagle/delayed-ACK never strands the payload behind an unacked
  // 8-byte header (a two-write frame costs ~40 ms per round trip).
  std::string frame;
  frame.reserve(sizeof(kFrameMagic) + 4 + payload.size());
  frame.append(kFrameMagic, sizeof(kFrameMagic));
  frame.push_back(static_cast<char>(len & 0xff));
  frame.push_back(static_cast<char>((len >> 8) & 0xff));
  frame.push_back(static_cast<char>((len >> 16) & 0xff));
  frame.push_back(static_cast<char>((len >> 24) & 0xff));
  frame.append(payload.data(), payload.size());
  return write_exact(fd, frame.data(), frame.size());
}

}  // namespace csdac::serve
