#include "obs/json_escape.hpp"

#include <cstdio>

namespace csdac::obs {

void append_json_escaped(std::string& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned char>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void append_prometheus_label_escaped(std::string& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
}

std::string json_quoted(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  append_json_escaped(out, s);
  out += '"';
  return out;
}

}  // namespace csdac::obs
