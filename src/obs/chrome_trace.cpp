#include "obs/chrome_trace.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <set>

#include "obs/json_escape.hpp"

namespace csdac::obs {

namespace {

void append_us(std::string& out, double us) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.3f", us < 0.0 ? 0.0 : us);
  out += buf;
}

}  // namespace

std::string chrome_trace_json(const std::vector<SpanRecord>& spans,
                              const std::string& process_name) {
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  out += "{\"ph\":\"M\",\"pid\":1,\"name\":\"process_name\",\"args\":"
         "{\"name\":" + json_quoted(process_name) + "}}";

  std::set<std::uint32_t> tids;
  for (const auto& s : spans) tids.insert(s.tid);
  for (const std::uint32_t tid : tids) {
    out += ",{\"ph\":\"M\",\"pid\":1,\"tid\":" + std::to_string(tid) +
           ",\"name\":\"thread_name\",\"args\":{\"name\":\"worker-" +
           std::to_string(tid) + "\"}}";
  }

  // Sort by start time so viewers that honor file order nest correctly.
  std::vector<const SpanRecord*> sorted;
  sorted.reserve(spans.size());
  for (const auto& s : spans) sorted.push_back(&s);
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const SpanRecord* a, const SpanRecord* b) {
                     return a->start_us < b->start_us;
                   });

  for (const SpanRecord* s : sorted) {
    out += ",{\"name\":" + json_quoted(s->name) +
           ",\"cat\":\"csdac\",\"ph\":\"X\",\"pid\":1,\"tid\":" +
           std::to_string(s->tid) + ",\"ts\":";
    append_us(out, s->start_us);
    out += ",\"dur\":";
    append_us(out, s->dur_us);
    out += ",\"args\":{\"span\":" + std::to_string(s->id) +
           ",\"parent\":" + std::to_string(s->parent);
    for (const auto& [k, v] : s->attrs) {
      out += ',';
      out += json_quoted(k);
      out += ':';
      out += json_quoted(v);
    }
    out += "}}";
  }
  out += "]}";
  return out;
}

bool write_chrome_trace(const std::string& path,
                        const std::vector<SpanRecord>& spans,
                        const std::string& process_name) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out << chrome_trace_json(spans, process_name) << '\n';
  return static_cast<bool>(out);
}

}  // namespace csdac::obs
