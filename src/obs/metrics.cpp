#include "obs/metrics.hpp"

#include <algorithm>
#include <bit>
#include <cctype>
#include <cstdio>
#include <stdexcept>

#include "obs/json_escape.hpp"

namespace csdac::obs {

int histogram_bucket(std::int64_t v) noexcept {
  if (v <= 0) return 0;
  const int bits = std::bit_width(static_cast<std::uint64_t>(v));
  return bits < kHistogramBuckets ? bits : kHistogramBuckets - 1;
}

std::int64_t histogram_bucket_le(int bucket) noexcept {
  if (bucket <= 0) return 0;
  if (bucket >= kHistogramBuckets - 1) return -1;  // +Inf
  return (std::int64_t{1} << bucket) - 1;
}

std::vector<std::int64_t> Histogram::bucket_counts() const {
  std::vector<std::int64_t> out(kHistogramBuckets, 0);
  for (const auto& s : shards_) {
    for (int b = 0; b < kHistogramBuckets; ++b) {
      out[static_cast<std::size_t>(b)] +=
          s.count[b].load(std::memory_order_relaxed);
    }
  }
  return out;
}

std::int64_t Histogram::count() const noexcept {
  std::int64_t total = 0;
  for (const auto& s : shards_) {
    for (int b = 0; b < kHistogramBuckets; ++b) {
      total += s.count[b].load(std::memory_order_relaxed);
    }
  }
  return total;
}

std::int64_t Histogram::sum() const noexcept {
  std::int64_t total = 0;
  for (const auto& s : shards_) {
    total += s.sum.load(std::memory_order_relaxed);
  }
  return total;
}

Registry& Registry::global() {
  // Leaked on purpose: instruments (and references into them) must outlive
  // every static destructor that might still be counting.
  static Registry* g = new Registry();
  return *g;
}

Registry::Entry& Registry::find_or_create(std::string_view name,
                                          LabelSet labels,
                                          std::string_view help, Kind kind) {
  std::sort(labels.begin(), labels.end());
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& e : entries_) {
    if (e->name == name) {
      // One metric NAME has one type across every label set — mixing
      // labeled and unlabeled series of one name is fine, mixing types
      // would corrupt the exposition.
      if (e->kind != kind) {
        throw std::logic_error("obs::Registry: '" + std::string(name) +
                               "' already registered as a different type");
      }
      if (e->labels == labels) return *e;
    }
  }
  auto e = std::make_unique<Entry>();
  e->name = std::string(name);
  e->help = std::string(help);
  e->labels = std::move(labels);
  e->kind = kind;
  switch (kind) {
    case Kind::kCounter: e->counter = std::make_unique<Counter>(); break;
    case Kind::kGauge: e->gauge = std::make_unique<Gauge>(); break;
    case Kind::kHistogram: e->histogram = std::make_unique<Histogram>(); break;
  }
  entries_.push_back(std::move(e));
  return *entries_.back();
}

Counter& Registry::counter(std::string_view name, std::string_view help) {
  return *find_or_create(name, {}, help, Kind::kCounter).counter;
}

Gauge& Registry::gauge(std::string_view name, std::string_view help) {
  return *find_or_create(name, {}, help, Kind::kGauge).gauge;
}

Histogram& Registry::histogram(std::string_view name, std::string_view help) {
  return *find_or_create(name, {}, help, Kind::kHistogram).histogram;
}

Counter& Registry::counter(std::string_view name, LabelSet labels,
                           std::string_view help) {
  return *find_or_create(name, std::move(labels), help, Kind::kCounter)
              .counter;
}

Gauge& Registry::gauge(std::string_view name, LabelSet labels,
                       std::string_view help) {
  return *find_or_create(name, std::move(labels), help, Kind::kGauge).gauge;
}

Histogram& Registry::histogram(std::string_view name, LabelSet labels,
                               std::string_view help) {
  return *find_or_create(name, std::move(labels), help, Kind::kHistogram)
              .histogram;
}

MetricsSnapshot Registry::snapshot() const {
  MetricsSnapshot snap;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& e : entries_) {
      switch (e->kind) {
        case Kind::kCounter:
          snap.counters.push_back(
              {e->name, e->help, e->labels, e->counter->value()});
          break;
        case Kind::kGauge:
          snap.gauges.push_back(
              {e->name, e->help, e->labels, e->gauge->value()});
          break;
        case Kind::kHistogram: {
          HistogramSample h;
          h.name = e->name;
          h.help = e->help;
          h.labels = e->labels;
          h.buckets = e->histogram->bucket_counts();
          for (const std::int64_t c : h.buckets) h.count += c;
          h.sum = e->histogram->sum();
          while (!h.buckets.empty() && h.buckets.back() == 0) {
            h.buckets.pop_back();
          }
          snap.histograms.push_back(std::move(h));
          break;
        }
      }
    }
  }
  const auto by_name = [](const auto& a, const auto& b) {
    return a.name != b.name ? a.name < b.name : a.labels < b.labels;
  };
  std::sort(snap.counters.begin(), snap.counters.end(), by_name);
  std::sort(snap.gauges.begin(), snap.gauges.end(), by_name);
  std::sort(snap.histograms.begin(), snap.histograms.end(), by_name);
  return snap;
}

namespace {

void append_double(std::string& out, double v) {
  char buf[40];
  if (v != v || v > 1.7e308 || v < -1.7e308) {
    out += "null";
  } else {
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    out += buf;
  }
}

/// JSON export key of a series: the plain name, or `name{k="v",...}` for
/// labeled series (one flat key so dashboards keyed on names keep working
/// and labeled series stay distinguishable).
std::string series_key(const std::string& name, const LabelSet& labels) {
  if (labels.empty()) return name;
  std::string out = name;
  out += '{';
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ',';
    first = false;
    out += k;
    out += "=\"";
    out += v;
    out += '"';
  }
  out += '}';
  return out;
}

}  // namespace

std::string MetricsSnapshot::to_json() const {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& c : counters) {
    if (!first) out += ',';
    first = false;
    out += json_quoted(series_key(c.name, c.labels));
    out += ':';
    out += std::to_string(c.value);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& g : gauges) {
    if (!first) out += ',';
    first = false;
    out += json_quoted(series_key(g.name, g.labels));
    out += ':';
    append_double(out, g.value);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& h : histograms) {
    if (!first) out += ',';
    first = false;
    out += json_quoted(series_key(h.name, h.labels));
    out += ":{\"count\":" + std::to_string(h.count) +
           ",\"sum\":" + std::to_string(h.sum) + ",\"buckets\":[";
    bool bfirst = true;
    for (std::size_t b = 0; b < h.buckets.size(); ++b) {
      if (h.buckets[b] == 0) continue;
      if (!bfirst) out += ',';
      bfirst = false;
      out += '[';
      out += std::to_string(histogram_bucket_le(static_cast<int>(b)));
      out += ',';
      out += std::to_string(h.buckets[b]);
      out += ']';
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

std::string prometheus_name(std::string_view prefix, std::string_view name) {
  std::string out;
  out.reserve(prefix.size() + name.size() + 1);
  const auto sanitize = [&out](std::string_view s) {
    for (const char c : s) {
      const bool ok = std::isalnum(static_cast<unsigned char>(c)) || c == '_';
      out += ok ? c : '_';
    }
  };
  sanitize(prefix);
  if (!out.empty()) out += '_';
  if (!name.empty() && std::isdigit(static_cast<unsigned char>(name[0]))) {
    out += '_';
  }
  sanitize(name);
  return out;
}

std::string prometheus_labels(const LabelSet& labels) {
  if (labels.empty()) return {};
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ',';
    first = false;
    out += prometheus_name({}, k);
    out += "=\"";
    append_prometheus_label_escaped(out, v);
    out += '"';
  }
  out += '}';
  return out;
}

std::string MetricsSnapshot::to_prometheus(std::string_view prefix) const {
  std::string out;
  // Samples are sorted by (name, labels); a labeled metric's series are
  // contiguous and must share ONE # TYPE header, so headers are emitted
  // only when the name changes.
  std::string last_header;
  const auto header = [&out, &last_header](const std::string& name,
                                           const std::string& help,
                                           const char* type) {
    if (name == last_header) return;
    last_header = name;
    if (!help.empty()) {
      out += "# HELP " + name + " ";
      // Exposition-format escaping for HELP text: backslash and newline.
      for (const char c : help) {
        if (c == '\\') out += "\\\\";
        else if (c == '\n') out += "\\n";
        else out += c;
      }
      out += '\n';
    }
    out += "# TYPE " + name + " ";
    out += type;
    out += '\n';
  };
  for (const auto& c : counters) {
    const std::string name = prometheus_name(prefix, c.name) + "_total";
    header(name, c.help, "counter");
    out += name + prometheus_labels(c.labels) + " " +
           std::to_string(c.value) + "\n";
  }
  for (const auto& g : gauges) {
    const std::string name = prometheus_name(prefix, g.name);
    header(name, g.help, "gauge");
    out += name + prometheus_labels(g.labels) + " ";
    append_double(out, g.value);
    out += '\n';
  }
  for (const auto& h : histograms) {
    const std::string name = prometheus_name(prefix, h.name);
    header(name, h.help, "histogram");
    // Bucket lines splice `le` into the series' own label set (the spec
    // orders labels arbitrarily; keeping le last reads naturally).
    std::string bucket_labels = prometheus_labels(h.labels);
    if (bucket_labels.empty()) {
      bucket_labels = "{le=\"";
    } else {
      bucket_labels.back() = ',';
      bucket_labels += "le=\"";
    }
    std::int64_t cum = 0;
    for (std::size_t b = 0; b < h.buckets.size(); ++b) {
      cum += h.buckets[b];
      const std::int64_t le = histogram_bucket_le(static_cast<int>(b));
      if (le < 0) break;  // overflow bucket is covered by +Inf below
      out += name + "_bucket" + bucket_labels + std::to_string(le) + "\"} " +
             std::to_string(cum) + "\n";
    }
    out += name + "_bucket" + bucket_labels + "+Inf\"} " +
           std::to_string(h.count) + "\n";
    out += name + "_sum" + prometheus_labels(h.labels) + " " +
           std::to_string(h.sum) + "\n";
    out += name + "_count" + prometheus_labels(h.labels) + " " +
           std::to_string(h.count) + "\n";
  }
  return out;
}

}  // namespace csdac::obs
