// Hierarchical spans: RAII scoped timers with parent/child nesting and
// per-span string attributes. A thread-local stack tracks the current
// span, so a ScopedSpan constructed inside another automatically becomes
// its child; work handed to another thread nests by passing the parent's
// id() explicitly (see the thread-pool worker spans in mathx/parallel).
//
// Finished spans are pushed to every registered SpanSink — the runtime
// wires one that appends `ev:"span"` lines to the JSONL trace, and tools
// wire a SpanCollector to export a Chrome trace_event file (see
// obs/chrome_trace.hpp) that opens as a flamegraph in Perfetto or
// chrome://tracing. With no sinks registered a ScopedSpan is two relaxed
// atomic loads and a branch — cheap enough to leave instrumentation in
// production paths unconditionally (spans belong around waves, jobs, and
// batches, not around individual chip evaluations; counters cover those).
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace csdac::obs {

/// Microseconds since the process trace epoch (first use; steady clock).
double trace_now_us() noexcept;

/// Small sequential id of the calling thread (0, 1, 2, ... in first-use
/// order) — compact track ids for trace exports.
std::uint32_t this_thread_trace_tid() noexcept;

struct SpanRecord {
  std::string name;
  std::uint64_t id = 0;      ///< unique, process-wide, never 0
  std::uint64_t parent = 0;  ///< 0 = root span
  int depth = 0;             ///< nesting depth on the emitting thread
  std::uint32_t tid = 0;     ///< this_thread_trace_tid() of the emitter
  double start_us = 0.0;     ///< trace_now_us() at construction
  double dur_us = 0.0;
  std::vector<std::pair<std::string, std::string>> attrs;
};

class SpanSink {
 public:
  virtual ~SpanSink() = default;
  /// Called once per finished span, possibly from many threads at once —
  /// but never concurrently for the same sink (the tracer serializes).
  virtual void on_span(const SpanRecord& span) = 0;
};

/// Process-wide span dispatcher. Sinks register/unregister at run scope
/// (a tool's main, a JobGraph's lifetime); spans only pay their recording
/// cost while at least one sink is registered.
class Tracer {
 public:
  static Tracer& global();

  void add_sink(SpanSink* sink);
  void remove_sink(SpanSink* sink);

  bool active() const noexcept {
    return active_.load(std::memory_order_relaxed);
  }

  /// Id of the calling thread's innermost open span (0 if none) — the
  /// handle for cross-thread parenting.
  static std::uint64_t current_span_id() noexcept;

  /// Dispatches a finished span to every sink (internal; ScopedSpan calls
  /// it). Serialized under the sink mutex.
  void emit(const SpanRecord& span);

 private:
  std::atomic<bool> active_{false};
  std::mutex mutex_;
  std::vector<SpanSink*> sinks_;
};

/// RAII span. Captures the parent from the calling thread's span stack
/// (or from an explicit parent id for cross-thread nesting), times the
/// scope, and emits on destruction. No-op (and allocation-free) when the
/// tracer has no sinks at construction time.
class ScopedSpan {
 public:
  explicit ScopedSpan(std::string_view name);
  /// Cross-thread child: nests under `parent` regardless of what is on
  /// this thread's stack.
  ScopedSpan(std::string_view name, std::uint64_t parent);
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// 0 when the span is inactive (no sinks at construction).
  std::uint64_t id() const noexcept { return live_ ? rec_.id : 0; }

  ScopedSpan& attr(std::string_view key, std::string_view value);
  ScopedSpan& attr(std::string_view key, const char* value) {
    return attr(key, std::string_view(value));
  }
  ScopedSpan& attr(std::string_view key, std::int64_t value);
  ScopedSpan& attr(std::string_view key, int value) {
    return attr(key, static_cast<std::int64_t>(value));
  }
  ScopedSpan& attr(std::string_view key, double value);

 private:
  void open(std::string_view name, std::uint64_t parent, bool use_stack);

  bool live_ = false;
  SpanRecord rec_;
};

/// Sink that buffers every span in memory; tools drain it into the Chrome
/// trace exporter after a run. Thread-safe.
class SpanCollector : public SpanSink {
 public:
  void on_span(const SpanRecord& span) override;
  std::vector<SpanRecord> take();  ///< drains the buffer
  std::size_t size() const;

 private:
  mutable std::mutex mutex_;
  std::vector<SpanRecord> spans_;
};

}  // namespace csdac::obs
