// The one JSON string escaper of the codebase. Every serializer that quotes
// user-influenced text (the runtime JSONL trace, the bench JsonWriter, the
// metrics/span exporters in this library) routes through it, so hostile
// labels — embedded quotes, backslashes, control characters — can corrupt
// no output format. Escapes the two mandatory characters plus everything
// below 0x20 (named escapes where JSON has them, \u00XX otherwise); all
// other bytes pass through untouched, so valid UTF-8 stays valid UTF-8.
#pragma once

#include <string>
#include <string_view>

namespace csdac::obs {

/// Appends `s` to `out` with JSON string escaping (no surrounding quotes).
void append_json_escaped(std::string& out, std::string_view s);

/// Convenience: `s` escaped and wrapped in double quotes.
std::string json_quoted(std::string_view s);

/// Appends `s` to `out` with Prometheus label-value escaping (no
/// surrounding quotes): backslash, double quote, and line feed get a
/// backslash escape per the text-exposition spec; every other byte passes
/// through, so valid UTF-8 stays valid UTF-8. Routed through the same
/// translation unit as the JSON escaper on purpose — hostile label values
/// must be harmless in BOTH output formats, and the exposition tests feed
/// one corpus through both paths.
void append_prometheus_label_escaped(std::string& out, std::string_view s);

}  // namespace csdac::obs
