#include "obs/flight_recorder.hpp"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <cstring>
#include <mutex>

#include "obs/chrome_trace.hpp"

namespace csdac::obs {

namespace {

std::string_view padded_view(const char* data, std::size_t max) {
  std::size_t n = 0;
  while (n < max && data[n] != '\0') ++n;
  return {data, n};
}

void copy_padded(char* dst, std::size_t max, std::string_view src) {
  const std::size_t n = src.size() < max ? src.size() : max - 1;
  std::memcpy(dst, src.data(), n);
  // The struct is zero-initialized per record() call, but slots are
  // reused: pad explicitly so a shorter name never exposes a longer
  // predecessor's tail.
  std::memset(dst + n, 0, max - n);
}

}  // namespace

std::string_view flight_event_kind_name(FlightEventKind kind) {
  switch (kind) {
    case FlightEventKind::kRequest: return "request";
    case FlightEventKind::kSpan: return "span";
    case FlightEventKind::kError: return "error";
  }
  return "unknown";
}

std::string_view FlightEvent::name_view() const {
  return padded_view(name, kFlightNameBytes);
}

std::string_view FlightEvent::trace_view() const {
  return padded_view(trace, kFlightTraceBytes);
}

FlightRecorder::FlightRecorder(std::size_t capacity) {
  capacity_ = std::bit_ceil(capacity < 2 ? std::size_t{2} : capacity);
  slots_ = std::make_unique<Slot[]>(capacity_);
}

FlightRecorder& FlightRecorder::global() {
  // Leaked like the metrics registry: events may be recorded from static
  // destructors of other translation units.
  static FlightRecorder* g = new FlightRecorder();
  return *g;
}

void FlightRecorder::record(FlightEventKind kind, std::string_view name,
                            std::string_view trace, double start_us,
                            double dur_us, std::int64_t arg) noexcept {
  FlightEvent ev;
  ev.kind = kind;
  ev.tid = this_thread_trace_tid();
  ev.start_us = start_us;
  ev.dur_us = dur_us;
  ev.arg = arg;
  copy_padded(ev.name, kFlightNameBytes, name);
  copy_padded(ev.trace, kFlightTraceBytes, trace);

  std::uint64_t words[kWords] = {};
  std::memcpy(words, &ev, sizeof(ev));

  const std::uint64_t i = head_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[i & (capacity_ - 1)];
  // The slot's previous occupant was sequence i - capacity (or nobody).
  // Claiming by CAS instead of a blind store means two writers a full
  // ring-generation apart can never interleave word stores: the lapped
  // one loses the CAS and drops its event.
  std::uint64_t expected =
      i >= capacity_ ? 2 * (i - capacity_) + 2 : std::uint64_t{0};
  if (!slot.seq.compare_exchange_strong(expected, 2 * i + 1,
                                        std::memory_order_acq_rel,
                                        std::memory_order_relaxed)) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  for (std::size_t w = 0; w < kWords; ++w) {
    slot.words[w].store(words[w], std::memory_order_relaxed);
  }
  slot.seq.store(2 * i + 2, std::memory_order_release);
}

std::vector<FlightEvent> FlightRecorder::snapshot() const {
  std::vector<FlightEvent> out;
  out.reserve(capacity_);
  for (std::size_t s = 0; s < capacity_; ++s) {
    const Slot& slot = slots_[s];
    const std::uint64_t s1 = slot.seq.load(std::memory_order_acquire);
    if (s1 == 0 || (s1 & 1) != 0) continue;  // empty or mid-write
    std::uint64_t words[kWords];
    for (std::size_t w = 0; w < kWords; ++w) {
      words[w] = slot.words[w].load(std::memory_order_relaxed);
    }
    std::atomic_thread_fence(std::memory_order_acquire);
    if (slot.seq.load(std::memory_order_relaxed) != s1) continue;  // torn
    FlightEvent ev;
    std::memcpy(&ev, words, sizeof(ev));
    out.push_back(ev);
  }
  std::sort(out.begin(), out.end(),
            [](const FlightEvent& a, const FlightEvent& b) {
              return a.start_us < b.start_us;
            });
  return out;
}

std::string FlightRecorder::chrome_trace_json(
    const std::string& process_name) const {
  const std::vector<FlightEvent> events = snapshot();
  std::vector<SpanRecord> spans;
  spans.reserve(events.size());
  std::uint64_t synthetic_id = 1;
  for (const FlightEvent& ev : events) {
    SpanRecord s;
    s.name = std::string(ev.name_view());
    s.id = synthetic_id++;
    s.tid = ev.tid;
    s.start_us = ev.start_us;
    s.dur_us = ev.dur_us;
    s.attrs.emplace_back("kind",
                         std::string(flight_event_kind_name(ev.kind)));
    if (!ev.trace_view().empty()) {
      s.attrs.emplace_back("trace_id", std::string(ev.trace_view()));
    }
    if (ev.arg != 0) {
      s.attrs.emplace_back("arg", std::to_string(ev.arg));
    }
    spans.push_back(std::move(s));
  }
  return obs::chrome_trace_json(spans, process_name);
}

bool FlightRecorder::dump(const std::string& path,
                          const std::string& process_name) const {
  const std::string doc = chrome_trace_json(process_name);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (!f) return false;
  const bool ok = std::fwrite(doc.data(), 1, doc.size(), f) == doc.size() &&
                  std::fputc('\n', f) != EOF;
  return std::fclose(f) == 0 && ok;
}

namespace {

/// Forwards every finished span into the global flight recorder,
/// extracting the trace_id attribute when the span carries one.
class FlightSpanSink : public SpanSink {
 public:
  void on_span(const SpanRecord& span) override {
    std::string_view trace;
    for (const auto& [k, v] : span.attrs) {
      if (k == "trace_id") {
        trace = v;
        break;
      }
    }
    FlightRecorder::global().record(
        FlightEventKind::kSpan, span.name, trace, span.start_us,
        span.dur_us, static_cast<std::int64_t>(span.parent));
  }
};

}  // namespace

void FlightRecorder::install_global_span_sink() {
  static std::once_flag once;
  std::call_once(once, [] {
    static FlightSpanSink* sink = new FlightSpanSink();
    Tracer::global().add_sink(sink);
  });
}

}  // namespace csdac::obs
