// Chrome trace_event exporter: renders finished spans as "complete" (ph
// "X") events so a run opens as a flamegraph in Perfetto
// (https://ui.perfetto.dev) or chrome://tracing. Each observability thread
// id becomes a track; spans carry their attributes (plus span/parent ids
// for cross-track nesting) in `args`. Timestamps are microseconds on the
// shared trace epoch, so spans from every thread line up.
#pragma once

#include <string>
#include <vector>

#include "obs/span.hpp"

namespace csdac::obs {

/// The full trace document: {"displayTimeUnit":"ms","traceEvents":[...]}.
/// Includes process/thread-name metadata events for readable track labels.
std::string chrome_trace_json(const std::vector<SpanRecord>& spans,
                              const std::string& process_name = "csdac");

/// Writes chrome_trace_json to `path`; returns false on I/O failure.
bool write_chrome_trace(const std::string& path,
                        const std::vector<SpanRecord>& spans,
                        const std::string& process_name = "csdac");

}  // namespace csdac::obs
