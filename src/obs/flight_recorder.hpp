// Flight recorder: an always-on, lock-free ring buffer holding the last N
// request / span / error events with their trace ids, so a crash, a
// SIGTERM, or a "what just happened?" ctl dump can reconstruct the recent
// past of a long-running server without any tracing having been enabled in
// advance.
//
// Writers are wait-free on the hot path: one fetch_add to claim a global
// sequence number, one CAS to claim the slot (which only fails when a
// writer has been lapped a full ring-generation mid-write — the event is
// dropped and counted instead of blocking), then plain relaxed stores of
// the fixed-size payload words and a release publish. No allocation, no
// locks, no syscalls — cheap enough to record every request and every
// span unconditionally.
//
// Readers (the ctl `dump` verb, the shutdown flush, the terminate
// handler) walk the slots with a per-slot seqlock protocol: read the
// sequence word, copy the payload, re-read — a torn read is detected and
// skipped, never returned. Reading never blocks writers.
//
// Events are fixed-size POD: names and trace ids are truncated into
// embedded char arrays (kNameBytes / kTraceBytes) so a slot write touches
// no heap. The dump renders as Chrome trace_event JSON (the same format
// as obs/chrome_trace.hpp) and loads in Perfetto, with trace ids in
// `args` for request-centric filtering.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "obs/span.hpp"

namespace csdac::obs {

enum class FlightEventKind : std::uint8_t {
  kRequest = 1,  ///< one served request (dur = handling wall time)
  kSpan = 2,     ///< a finished span forwarded by the span sink
  kError = 3,    ///< an error frame / failed job (dur usually 0)
};

std::string_view flight_event_kind_name(FlightEventKind kind);

inline constexpr std::size_t kFlightNameBytes = 40;
inline constexpr std::size_t kFlightTraceBytes = 40;

/// Fixed-size event record; strings are NUL-padded (and silently
/// truncated) so the whole event copies as raw words.
struct FlightEvent {
  FlightEventKind kind = FlightEventKind::kSpan;
  std::uint32_t tid = 0;      ///< this_thread_trace_tid() of the recorder
  double start_us = 0.0;      ///< trace_now_us() timeline
  double dur_us = 0.0;
  std::int64_t arg = 0;       ///< kind-specific (jobs in request, ...)
  char name[kFlightNameBytes] = {};
  char trace[kFlightTraceBytes] = {};

  std::string_view name_view() const;
  std::string_view trace_view() const;
};

class FlightRecorder {
 public:
  /// Capacity is rounded up to a power of two; the ring keeps the most
  /// recent `capacity` events.
  explicit FlightRecorder(std::size_t capacity = 4096);

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Process-wide instance (leaked, like the metrics registry, so events
  /// recorded during static destruction stay safe).
  static FlightRecorder& global();

  /// Records one event (wait-free; see file comment). Never throws.
  void record(FlightEventKind kind, std::string_view name,
              std::string_view trace, double start_us, double dur_us,
              std::int64_t arg = 0) noexcept;

  /// Stable copy of the current ring contents, oldest first by start
  /// time. Safe to call concurrently with writers.
  std::vector<FlightEvent> snapshot() const;

  std::size_t capacity() const { return capacity_; }
  /// Events recorded over the recorder's lifetime (>= ring contents).
  std::int64_t total_recorded() const {
    return static_cast<std::int64_t>(
        head_.load(std::memory_order_relaxed));
  }
  /// Events dropped because a lapped writer lost its slot CAS.
  std::int64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

  /// Renders the ring as a Chrome trace_event document (Perfetto-loadable;
  /// trace ids and event kinds in args).
  std::string chrome_trace_json(
      const std::string& process_name = "csdac-flight") const;
  /// Writes chrome_trace_json to `path`; false on I/O failure.
  bool dump(const std::string& path,
            const std::string& process_name = "csdac-flight") const;

  /// Registers a process-wide SpanSink that copies every finished span
  /// into global() (idempotent). This makes the tracer permanently active
  /// — span construction then pays its recording cost — so the serve
  /// tools install it at startup while unit-test binaries leave it off.
  static void install_global_span_sink();

 private:
  // One slot: a seqlock word plus the event payload as relaxed atomic
  // words, so concurrent read/write is data-race-free by construction.
  static constexpr std::size_t kWords =
      (sizeof(FlightEvent) + sizeof(std::uint64_t) - 1) /
      sizeof(std::uint64_t);
  struct Slot {
    std::atomic<std::uint64_t> seq{0};  ///< 0 empty; odd writing; even done
    std::atomic<std::uint64_t> words[kWords] = {};
  };

  std::size_t capacity_;  ///< power of two
  std::unique_ptr<Slot[]> slots_;
  std::atomic<std::uint64_t> head_{0};
  std::atomic<std::int64_t> dropped_{0};
};

}  // namespace csdac::obs
