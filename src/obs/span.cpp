#include "obs/span.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>

namespace csdac::obs {

namespace {

std::chrono::steady_clock::time_point trace_epoch() noexcept {
  static const auto t0 = std::chrono::steady_clock::now();
  return t0;
}

// One frame per open span on the calling thread.
struct StackFrame {
  std::uint64_t id;
  int depth;
};

thread_local std::vector<StackFrame> t_span_stack;

std::uint64_t next_span_id() noexcept {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

double trace_now_us() noexcept {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - trace_epoch())
      .count();
}

std::uint32_t this_thread_trace_tid() noexcept {
  static std::atomic<std::uint32_t> next{0};
  thread_local const std::uint32_t tid =
      next.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

Tracer& Tracer::global() {
  // Leaked like the registry: spans may finish during static destruction.
  static Tracer* g = new Tracer();
  return *g;
}

void Tracer::add_sink(SpanSink* sink) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (std::find(sinks_.begin(), sinks_.end(), sink) == sinks_.end()) {
    sinks_.push_back(sink);
  }
  active_.store(!sinks_.empty(), std::memory_order_relaxed);
}

void Tracer::remove_sink(SpanSink* sink) {
  std::lock_guard<std::mutex> lock(mutex_);
  sinks_.erase(std::remove(sinks_.begin(), sinks_.end(), sink),
               sinks_.end());
  active_.store(!sinks_.empty(), std::memory_order_relaxed);
}

std::uint64_t Tracer::current_span_id() noexcept {
  return t_span_stack.empty() ? 0 : t_span_stack.back().id;
}

void Tracer::emit(const SpanRecord& span) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (SpanSink* sink : sinks_) sink->on_span(span);
}

void ScopedSpan::open(std::string_view name, std::uint64_t parent,
                      bool use_stack) {
  if (!Tracer::global().active()) return;
  live_ = true;
  rec_.name = std::string(name);
  rec_.id = next_span_id();
  if (use_stack && !t_span_stack.empty()) {
    rec_.parent = t_span_stack.back().id;
    rec_.depth = t_span_stack.back().depth + 1;
  } else {
    rec_.parent = parent;
    // A cross-thread child starts a fresh stack on this thread; its local
    // depth is 0 even though it has a parent elsewhere.
    rec_.depth = 0;
  }
  rec_.tid = this_thread_trace_tid();
  rec_.start_us = trace_now_us();
  t_span_stack.push_back({rec_.id, rec_.depth});
}

ScopedSpan::ScopedSpan(std::string_view name) {
  open(name, 0, /*use_stack=*/true);
}

ScopedSpan::ScopedSpan(std::string_view name, std::uint64_t parent) {
  open(name, parent, /*use_stack=*/false);
}

ScopedSpan::~ScopedSpan() {
  if (!live_) return;
  // Pop this span (robust even if an inner span leaked past its scope).
  while (!t_span_stack.empty()) {
    const bool found = t_span_stack.back().id == rec_.id;
    t_span_stack.pop_back();
    if (found) break;
  }
  rec_.dur_us = trace_now_us() - rec_.start_us;
  Tracer::global().emit(rec_);
}

ScopedSpan& ScopedSpan::attr(std::string_view key, std::string_view value) {
  if (live_) rec_.attrs.emplace_back(std::string(key), std::string(value));
  return *this;
}

ScopedSpan& ScopedSpan::attr(std::string_view key, std::int64_t value) {
  if (live_) {
    rec_.attrs.emplace_back(std::string(key), std::to_string(value));
  }
  return *this;
}

ScopedSpan& ScopedSpan::attr(std::string_view key, double value) {
  if (live_) {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    rec_.attrs.emplace_back(std::string(key), buf);
  }
  return *this;
}

void SpanCollector::on_span(const SpanRecord& span) {
  std::lock_guard<std::mutex> lock(mutex_);
  spans_.push_back(span);
}

std::vector<SpanRecord> SpanCollector::take() {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<SpanRecord> out;
  out.swap(spans_);
  return out;
}

std::size_t SpanCollector::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return spans_.size();
}

}  // namespace csdac::obs
