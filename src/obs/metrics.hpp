// Process-wide metrics registry: named counters, gauges, and log-bucketed
// histograms, built for hot paths. Updates go through thread-local shards
// (cache-line-sized slots indexed by a per-thread id) with relaxed atomics,
// so an increment costs a thread-local read plus one uncontended fetch_add
// — a few nanoseconds — regardless of how many threads are counting.
// Reads (snapshot/export) sum the shards; they are rare and may race with
// writers, observing each shard atomically but the set of shards at
// slightly different instants. For a monotonic counter that still yields a
// value between the true count at the start and at the end of the
// snapshot, which is all a dashboard or regression gate needs.
//
// Instruments are registered by name, created on first use, and never
// destroyed (references handed out stay valid for the process lifetime —
// cache them in a static at the call site). Snapshots export as JSON and
// as Prometheus text exposition (see MetricsSnapshot).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace csdac::obs {

/// Number of counter shards. A power of two >= typical core counts; more
/// shards buy nothing but memory once threads stop colliding.
inline constexpr int kShards = 16;

/// Stable shard index of the calling thread in [0, kShards). Threads get
/// sequential ids on first use, so up to kShards concurrent threads never
/// share a slot.
inline int this_thread_shard() noexcept {
  static std::atomic<unsigned> next{0};
  thread_local const unsigned id =
      next.fetch_add(1, std::memory_order_relaxed);
  return static_cast<int>(id % static_cast<unsigned>(kShards));
}

/// Monotonic counter. add() is wait-free and safe from any thread.
class Counter {
 public:
  void add(std::int64_t delta = 1) noexcept {
    shards_[this_thread_shard()].v.fetch_add(delta,
                                             std::memory_order_relaxed);
  }

  /// Sum over all shards (racy-but-atomic per shard; see file comment).
  std::int64_t value() const noexcept {
    std::int64_t total = 0;
    for (const auto& s : shards_) total += s.v.load(std::memory_order_relaxed);
    return total;
  }

 private:
  struct alignas(64) Shard {
    std::atomic<std::int64_t> v{0};
  };
  Shard shards_[kShards];
};

/// Last-written value (thread count in flight, bytes resident, ...).
class Gauge {
 public:
  void set(double v) noexcept { v_.store(v, std::memory_order_relaxed); }
  void add(double delta) noexcept {
    double cur = v_.load(std::memory_order_relaxed);
    while (!v_.compare_exchange_weak(cur, cur + delta,
                                     std::memory_order_relaxed)) {
    }
  }
  double value() const noexcept { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Histogram bucket count: power-of-two (log2) buckets over non-negative
/// integer observations. Bucket 0 holds v <= 0; bucket i >= 1 holds
/// v in [2^(i-1), 2^i - 1], i.e. the upper bound (Prometheus `le`) of
/// bucket i is 2^i - 1. The last bucket absorbs everything larger.
inline constexpr int kHistogramBuckets = 64;

/// Bucket index for an observation (exposed for the boundary tests).
int histogram_bucket(std::int64_t v) noexcept;

/// Upper bound (`le`) of bucket i; the last bucket reports +Inf.
std::int64_t histogram_bucket_le(int bucket) noexcept;

/// Log-bucketed histogram for latencies (microseconds) and sizes (bytes).
/// observe() is wait-free: one shard bucket fetch_add plus a sum add.
class Histogram {
 public:
  void observe(std::int64_t v) noexcept {
    auto& s = shards_[this_thread_shard()];
    s.count[histogram_bucket(v)].fetch_add(1, std::memory_order_relaxed);
    s.sum.fetch_add(v > 0 ? v : 0, std::memory_order_relaxed);
  }

  /// Per-bucket (non-cumulative) counts summed over the shards.
  std::vector<std::int64_t> bucket_counts() const;
  std::int64_t count() const noexcept;  ///< total observations
  std::int64_t sum() const noexcept;    ///< sum of (non-negative) values

 private:
  struct alignas(64) Shard {
    std::atomic<std::int64_t> count[kHistogramBuckets] = {};
    std::atomic<std::int64_t> sum{0};
  };
  Shard shards_[kShards];
};

// --- Labels ----------------------------------------------------------------

/// One key=value label pair. A labeled instrument is a separate series per
/// distinct label set under one metric name (Prometheus style):
/// `serve.stage_us{kind="inl_yield",stage="compute"}`. Label keys must be
/// code-controlled identifiers; label VALUES may be arbitrary (they are
/// escaped on export), but high-cardinality values (ids, traces) belong in
/// spans and the flight recorder, never in labels — every distinct set is
/// a live series for the process lifetime.
using Label = std::pair<std::string, std::string>;
using LabelSet = std::vector<Label>;

/// Canonical `{k="v",...}` rendering for Prometheus exposition: keys
/// sanitized like metric names, values escaped per the text format
/// (backslash, quote, newline). Empty for an empty set.
std::string prometheus_labels(const LabelSet& labels);

// --- Snapshot and export ---------------------------------------------------

struct CounterSample {
  std::string name, help;
  LabelSet labels;
  std::int64_t value = 0;
};

struct GaugeSample {
  std::string name, help;
  LabelSet labels;
  double value = 0.0;
};

struct HistogramSample {
  std::string name, help;
  LabelSet labels;
  std::vector<std::int64_t> buckets;  ///< non-cumulative, trailing zeros cut
  std::int64_t count = 0;
  std::int64_t sum = 0;
};

/// Point-in-time copy of every instrument, sorted by name (stable output
/// for golden tests and diffable dumps).
struct MetricsSnapshot {
  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSample> histograms;

  /// {"counters":{name:value,...},"gauges":{...},
  ///  "histograms":{name:{"count":n,"sum":s,"buckets":[[le,count],...]}}}
  /// Histogram buckets are emitted sparsely (only non-empty ones), with
  /// le = -1 standing in for +Inf.
  std::string to_json() const;

  /// Prometheus text exposition format. Metric names are sanitized to
  /// [a-zA-Z0-9_], prefixed with `prefix` + "_"; counters get the
  /// conventional "_total" suffix, histograms the _bucket/_sum/_count
  /// series with cumulative le buckets.
  std::string to_prometheus(std::string_view prefix = "csdac") const;
};

/// Sanitized Prometheus metric name (exposed for tests): every character
/// outside [a-zA-Z0-9_] becomes '_', and a leading digit gets a '_' prefix.
std::string prometheus_name(std::string_view prefix, std::string_view name);

/// Named-instrument registry. `global()` is the process-wide instance the
/// engine, cache, and tools all write to; separate instances exist for
/// tests. Re-registering a (name, labels) pair returns the same
/// instrument; registering one NAME as two different types (labeled or
/// not) throws std::logic_error. Labeled lookups take the registry mutex —
/// cache the returned reference at the call site, exactly like the
/// unlabeled instruments.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  static Registry& global();

  Counter& counter(std::string_view name, std::string_view help = {});
  Gauge& gauge(std::string_view name, std::string_view help = {});
  Histogram& histogram(std::string_view name, std::string_view help = {});

  /// Labeled series of the same metric name. The label set is normalized
  /// (sorted by key) so {a,b} and {b,a} name one series.
  Counter& counter(std::string_view name, LabelSet labels,
                   std::string_view help = {});
  Gauge& gauge(std::string_view name, LabelSet labels,
               std::string_view help = {});
  Histogram& histogram(std::string_view name, LabelSet labels,
                       std::string_view help = {});

  MetricsSnapshot snapshot() const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Entry {
    std::string name, help;
    LabelSet labels;  ///< sorted by key; empty = unlabeled
    Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  Entry& find_or_create(std::string_view name, LabelSet labels,
                        std::string_view help, Kind kind);

  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<Entry>> entries_;
};

}  // namespace csdac::obs
