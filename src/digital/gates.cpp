#include "digital/gates.hpp"

#include <algorithm>
#include <stdexcept>

namespace csdac::digital {

int GateNetlist::add_input(std::string name) {
  (void)name;  // names kept for future debug printing; id is the handle
  gates_.push_back({GateKind::kInput, -1, -1, 0.0});
  const int id = static_cast<int>(gates_.size()) - 1;
  inputs_.push_back(id);
  return id;
}

int GateNetlist::add_gate(GateKind kind, int a, int b, double delay) {
  if (kind == GateKind::kInput) {
    throw std::invalid_argument("add_gate: use add_input for inputs");
  }
  const int id = static_cast<int>(gates_.size());
  const bool needs_a = kind != GateKind::kConst0 && kind != GateKind::kConst1;
  const bool needs_b = kind == GateKind::kAnd2 || kind == GateKind::kOr2 ||
                       kind == GateKind::kNand2 || kind == GateKind::kNor2 ||
                       kind == GateKind::kXor2;
  if (needs_a && (a < 0 || a >= id)) {
    throw std::invalid_argument("add_gate: fan-in a out of order");
  }
  if (needs_b && (b < 0 || b >= id)) {
    throw std::invalid_argument("add_gate: fan-in b out of order");
  }
  if (!(delay >= 0.0)) throw std::invalid_argument("add_gate: delay < 0");
  gates_.push_back({kind, a, b, delay});
  return id;
}

int GateNetlist::gate_count() const {
  int n = 0;
  for (const auto& g : gates_) {
    if (g.kind != GateKind::kInput && g.kind != GateKind::kConst0 &&
        g.kind != GateKind::kConst1) {
      ++n;
    }
  }
  return n;
}

GateNetlist::Evaluation GateNetlist::evaluate(
    const std::vector<bool>& input_values) const {
  if (input_values.size() != inputs_.size()) {
    throw std::invalid_argument("evaluate: input count mismatch");
  }
  Evaluation ev;
  ev.value.assign(gates_.size(), false);
  ev.arrival.assign(gates_.size(), 0.0);
  std::size_t next_input = 0;
  for (std::size_t i = 0; i < gates_.size(); ++i) {
    const Gate& g = gates_[i];
    switch (g.kind) {
      case GateKind::kInput:
        ev.value[i] = input_values[next_input++];
        ev.arrival[i] = 0.0;
        break;
      case GateKind::kConst0:
        ev.value[i] = false;
        break;
      case GateKind::kConst1:
        ev.value[i] = true;
        break;
      default: {
        const bool va = ev.value[static_cast<std::size_t>(g.a)];
        const double ta = ev.arrival[static_cast<std::size_t>(g.a)];
        bool vb = false;
        double tb = 0.0;
        if (g.b >= 0) {
          vb = ev.value[static_cast<std::size_t>(g.b)];
          tb = ev.arrival[static_cast<std::size_t>(g.b)];
        }
        bool out = false;
        switch (g.kind) {
          case GateKind::kBuf: out = va; break;
          case GateKind::kNot: out = !va; break;
          case GateKind::kAnd2: out = va && vb; break;
          case GateKind::kOr2: out = va || vb; break;
          case GateKind::kNand2: out = !(va && vb); break;
          case GateKind::kNor2: out = !(va || vb); break;
          case GateKind::kXor2: out = va != vb; break;
          default: break;
        }
        ev.value[i] = out;
        ev.arrival[i] = std::max(ta, tb) + g.delay;
        break;
      }
    }
  }
  return ev;
}

double GateNetlist::arrival_bound(int node) const {
  if (node < 0 || node >= num_nodes()) {
    throw std::out_of_range("arrival_bound: bad node");
  }
  std::vector<double> t(gates_.size(), 0.0);
  for (std::size_t i = 0; i < gates_.size(); ++i) {
    const Gate& g = gates_[i];
    if (g.kind == GateKind::kInput || g.kind == GateKind::kConst0 ||
        g.kind == GateKind::kConst1) {
      continue;
    }
    double ta = g.a >= 0 ? t[static_cast<std::size_t>(g.a)] : 0.0;
    double tb = g.b >= 0 ? t[static_cast<std::size_t>(g.b)] : 0.0;
    t[i] = std::max(ta, tb) + g.delay;
  }
  return t[static_cast<std::size_t>(node)];
}

}  // namespace csdac::digital
