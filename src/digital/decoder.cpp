#include "digital/decoder.hpp"

#include <cmath>
#include <stdexcept>

namespace csdac::digital {
namespace {

/// Builds all 2^bits minterms over the given input nodes (LSB first),
/// sharing the per-bit inverters. Returns the minterm node ids.
std::vector<int> build_minterms(GateNetlist& net,
                                const std::vector<int>& bits,
                                double delay) {
  const int n = static_cast<int>(bits.size());
  std::vector<int> inv(bits.size());
  for (std::size_t i = 0; i < bits.size(); ++i) {
    inv[i] = net.add_gate(GateKind::kNot, bits[i], -1, delay);
  }
  const int count = 1 << n;
  std::vector<int> minterms(static_cast<std::size_t>(count));
  for (int v = 0; v < count; ++v) {
    int node = ((v >> 0) & 1) ? bits[0] : inv[0];
    for (int bit = 1; bit < n; ++bit) {
      const int lit = ((v >> bit) & 1) ? bits[static_cast<std::size_t>(bit)]
                                       : inv[static_cast<std::size_t>(bit)];
      node = net.add_gate(GateKind::kAnd2, node, lit, delay);
    }
    minterms[static_cast<std::size_t>(v)] = node;
  }
  return minterms;
}

/// Thermometer "greater-than" functions from minterms:
/// gt[i] = OR of minterms v > i, for i = 0 .. count-2.
/// Built as a suffix-OR chain so each gt costs one OR2.
std::vector<int> build_greater_than(GateNetlist& net,
                                    const std::vector<int>& minterms,
                                    double delay) {
  const int count = static_cast<int>(minterms.size());
  // suffix[i] = OR of minterms i..count-1.
  std::vector<int> suffix(static_cast<std::size_t>(count));
  suffix[static_cast<std::size_t>(count - 1)] =
      minterms[static_cast<std::size_t>(count - 1)];
  for (int i = count - 2; i >= 0; --i) {
    suffix[static_cast<std::size_t>(i)] =
        net.add_gate(GateKind::kOr2, minterms[static_cast<std::size_t>(i)],
                     suffix[static_cast<std::size_t>(i + 1)], delay);
  }
  // gt[i] = suffix[i+1].
  std::vector<int> gt(static_cast<std::size_t>(count - 1));
  for (int i = 0; i + 1 < count; ++i) {
    gt[static_cast<std::size_t>(i)] = suffix[static_cast<std::size_t>(i + 1)];
  }
  return gt;
}

}  // namespace

ThermometerDecoder::ThermometerDecoder(int row_bits, int col_bits,
                                       double gate_delay)
    : row_bits_(row_bits), col_bits_(col_bits) {
  if (row_bits < 1 || col_bits < 1 || row_bits + col_bits > 12 ||
      !(gate_delay > 0.0)) {
    throw std::invalid_argument("ThermometerDecoder: bad configuration");
  }
  // Inputs LSB-first: column field first, then row field.
  std::vector<int> col_in, row_in;
  for (int i = 0; i < col_bits; ++i) {
    col_in.push_back(net_.add_input("c" + std::to_string(i)));
  }
  for (int i = 0; i < row_bits; ++i) {
    row_in.push_back(net_.add_input("r" + std::to_string(i)));
  }
  const auto col_min = build_minterms(net_, col_in, gate_delay);
  const auto row_min = build_minterms(net_, row_in, gate_delay);
  const auto col_gt = build_greater_than(net_, col_min, gate_delay);
  const auto row_gt = build_greater_than(net_, row_min, gate_delay);

  const int rows = 1 << row_bits;
  const int cols = 1 << col_bits;
  out_nodes_.reserve(static_cast<std::size_t>(outputs()));
  for (int j = 0; j < rows; ++j) {
    for (int i = 0; i < cols; ++i) {
      const int k = j * cols + i;
      if (k >= outputs()) break;
      // (r > j) OR (r == j AND c > i); r == j is the row minterm.
      int local;
      if (i + 1 < cols) {
        local = net_.add_gate(GateKind::kAnd2,
                              row_min[static_cast<std::size_t>(j)],
                              col_gt[static_cast<std::size_t>(i)],
                              gate_delay);
      } else {
        // i = cols-1: c > i is impossible; the local term is constant 0.
        local = net_.add_gate(GateKind::kConst0);
      }
      int node;
      if (j + 1 < rows) {
        node = net_.add_gate(GateKind::kOr2,
                             row_gt[static_cast<std::size_t>(j)], local,
                             gate_delay);
      } else {
        // Top row: r > j impossible; output is the local term alone.
        node = net_.add_gate(GateKind::kBuf, local, -1, gate_delay);
      }
      out_nodes_.push_back(node);
    }
  }
}

std::vector<bool> ThermometerDecoder::decode(int value) const {
  if (value < 0 || value >= (1 << input_bits())) {
    throw std::out_of_range("ThermometerDecoder::decode: value");
  }
  std::vector<bool> in(static_cast<std::size_t>(input_bits()));
  for (int i = 0; i < input_bits(); ++i) {
    in[static_cast<std::size_t>(i)] = ((value >> i) & 1) != 0;
  }
  const auto ev = net_.evaluate(in);
  std::vector<bool> out(out_nodes_.size());
  for (std::size_t k = 0; k < out_nodes_.size(); ++k) {
    out[k] = ev.value[static_cast<std::size_t>(out_nodes_[k])];
  }
  return out;
}

double ThermometerDecoder::output_arrival(int value, int k) const {
  if (k < 0 || k >= outputs()) {
    throw std::out_of_range("output_arrival: k");
  }
  std::vector<bool> in(static_cast<std::size_t>(input_bits()));
  for (int i = 0; i < input_bits(); ++i) {
    in[static_cast<std::size_t>(i)] = ((value >> i) & 1) != 0;
  }
  const auto ev = net_.evaluate(in);
  return ev.arrival[static_cast<std::size_t>(
      out_nodes_[static_cast<std::size_t>(k)])];
}

double ThermometerDecoder::worst_arrival() const {
  double worst = 0.0;
  for (int node : out_nodes_) {
    worst = std::max(worst, net_.arrival_bound(node));
  }
  return worst;
}

int ThermometerDecoder::gate_count() const { return net_.gate_count(); }

DummyDecoder::DummyDecoder(int bits, int depth, double gate_delay)
    : bits_(bits) {
  if (bits < 1 || depth < 1 || !(gate_delay > 0.0)) {
    throw std::invalid_argument("DummyDecoder: bad configuration");
  }
  for (int b = 0; b < bits; ++b) {
    int node = net_.add_input("b" + std::to_string(b));
    for (int d = 0; d < depth; ++d) {
      node = net_.add_gate(GateKind::kBuf, node, -1, gate_delay);
    }
    out_nodes_.push_back(node);
  }
}

DummyDecoder DummyDecoder::matched(const ThermometerDecoder& dec, int bits,
                                   double gate_delay) {
  const int depth = std::max(
      1, static_cast<int>(std::lround(dec.worst_arrival() / gate_delay)));
  return DummyDecoder(bits, depth, gate_delay);
}

double DummyDecoder::delay() const {
  return net_.arrival_bound(out_nodes_.front());
}

std::vector<bool> DummyDecoder::pass(int value) const {
  std::vector<bool> in(static_cast<std::size_t>(bits_));
  for (int i = 0; i < bits_; ++i) {
    in[static_cast<std::size_t>(i)] = ((value >> i) & 1) != 0;
  }
  const auto ev = net_.evaluate(in);
  std::vector<bool> out(out_nodes_.size());
  for (std::size_t k = 0; k < out_nodes_.size(); ++k) {
    out[k] = ev.value[static_cast<std::size_t>(out_nodes_[k])];
  }
  return out;
}

}  // namespace csdac::digital
