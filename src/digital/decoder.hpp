// Gate-level thermometer decoder (Fig. 1): the m thermometer-decoded MSBs
// drive 2^m - 1 unary sources through a row/column decoder (after [5]):
// splitting m into row and column fields, source k = j*2^cb + i turns on iff
//   (r > j) OR (r == j AND c > i)
// which is exactly k < input. The build reports gate count (the area model
// of the architecture explorer) and worst-case arrival time; the companion
// dummy decoder is the matched buffer chain the paper places in the binary
// path to equalize delays.
#pragma once

#include <vector>

#include "digital/gates.hpp"

namespace csdac::digital {

class ThermometerDecoder {
 public:
  /// Builds the decoder for m = row_bits + col_bits input bits; every gate
  /// carries `gate_delay` (arbitrary time units).
  ThermometerDecoder(int row_bits, int col_bits, double gate_delay = 1.0);

  int input_bits() const { return row_bits_ + col_bits_; }
  int outputs() const { return (1 << input_bits()) - 1; }

  /// Decodes an input value in [0, 2^m - 1]: out[k] == (k < value).
  std::vector<bool> decode(int value) const;

  /// Arrival time of output k for the given input value.
  double output_arrival(int value, int k) const;

  /// Worst-case arrival over all outputs (static bound).
  double worst_arrival() const;
  /// Gate count (area proxy; excludes primary inputs).
  int gate_count() const;

  const GateNetlist& netlist() const { return net_; }

 private:
  int row_bits_;
  int col_bits_;
  GateNetlist net_;
  std::vector<int> out_nodes_;  ///< netlist node of each unary output
};

/// The delay-equalizing dummy decoder: a buffer chain in each binary-bit
/// path whose depth matches the thermometer decoder's worst arrival.
class DummyDecoder {
 public:
  /// Builds chains of `depth` buffers for `bits` binary bits.
  DummyDecoder(int bits, int depth, double gate_delay = 1.0);

  /// Depth chosen to match a decoder: round(worst_arrival / gate_delay).
  static DummyDecoder matched(const ThermometerDecoder& dec, int bits,
                              double gate_delay = 1.0);

  int bits() const { return bits_; }
  double delay() const;
  int gate_count() const { return net_.gate_count(); }

  /// Passes the binary field through (identity function, delayed).
  std::vector<bool> pass(int value) const;

 private:
  int bits_;
  GateNetlist net_;
  std::vector<int> out_nodes_;
};

}  // namespace csdac::digital
