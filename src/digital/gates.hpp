// Minimal gate-level digital substrate for the converter's decoder logic
// (Fig. 1): a combinational netlist with per-gate delays, evaluated
// topologically, reporting both logic values and worst-case arrival times.
// Used to build the thermometer decoder, the delay-equalizing dummy
// decoder, and to derive the binary/thermometer path skew that feeds the
// dynamic glitch model.
#pragma once

#include <string>
#include <vector>

namespace csdac::digital {

enum class GateKind {
  kInput,
  kConst0,
  kConst1,
  kBuf,
  kNot,
  kAnd2,
  kOr2,
  kNand2,
  kNor2,
  kXor2
};

/// A combinational netlist. Gates must be added after their fan-ins
/// (indices are the topological order); evaluation is a single pass.
class GateNetlist {
 public:
  /// Adds a primary input; returns its node id.
  int add_input(std::string name);
  /// Adds a gate over one or two fan-ins (b ignored for unary kinds).
  int add_gate(GateKind kind, int a = -1, int b = -1, double delay = 1.0);

  int num_nodes() const { return static_cast<int>(gates_.size()); }
  int num_inputs() const { return static_cast<int>(inputs_.size()); }
  /// Number of non-input gates (the area proxy).
  int gate_count() const;

  struct Evaluation {
    std::vector<bool> value;     ///< logic value per node
    std::vector<double> arrival; ///< worst-case arrival time per node
  };

  /// Evaluates the netlist for the given input values (by input order).
  /// Inputs arrive at t = 0.
  Evaluation evaluate(const std::vector<bool>& input_values) const;

  /// Longest combinational path to `node` in delay units (static timing,
  /// value-independent).
  double arrival_bound(int node) const;

 private:
  struct Gate {
    GateKind kind;
    int a;
    int b;
    double delay;
  };
  std::vector<Gate> gates_;
  std::vector<int> inputs_;  ///< node ids of primary inputs
};

}  // namespace csdac::digital
